"""Sequential-consistency checking over key-value histories.

Two modes:

* :func:`validate_total_order` — given a *proposed* total order (e.g. the
  effective order a protocol derives), check that it is legal: it must
  respect each process's program order (unless the caller relaxes that,
  as Halfmoon-write does for consecutive log-free writes) and every read
  must observe the latest preceding write to its key (or the initial
  value).

* :func:`find_sequential_witness` — brute-force search over permutations
  for small histories; used by property tests to decide whether *any*
  sequentially consistent explanation exists.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConsistencyViolation
from .events import READ, WRITE, Event, History

#: Pairs of same-process events exempt from program-order checking.
ExemptPair = Callable[[Event, Event], bool]

#: Sentinel distinguishing "key absent" from "key mapped to None".
_MISSING = object()


def validate_total_order(
    history: History,
    order: Sequence[Event],
    allow_reorder: Optional[ExemptPair] = None,
) -> None:
    """Raise :class:`ConsistencyViolation` unless ``order`` is a legal
    sequentially consistent serialization of ``history``.

    ``allow_reorder(a, b)`` may return True to permit same-process events
    ``a`` (earlier in program order) and ``b`` to appear reversed —
    Halfmoon-write's commuting of consecutive log-free writes to
    different objects (Proposition 4.8).
    """
    if len(order) != len(history.events) or set(
        id(e) for e in order
    ) != set(id(e) for e in history.events):
        raise ConsistencyViolation(
            "order must be a permutation of the history's events"
        )

    # Program order per process.
    position = {id(e): i for i, e in enumerate(order)}
    for process in history.processes():
        program = history.program_order(process)
        for i, a in enumerate(program):
            for b in program[i + 1:]:
                if position[id(a)] > position[id(b)]:
                    if allow_reorder is not None and allow_reorder(a, b):
                        continue
                    raise ConsistencyViolation(
                        f"program order violated for {process}: "
                        f"{a.brief()} after {b.brief()}"
                    )

    # Read legality.
    last_write = dict(history.initial_values)
    for event in order:
        if event.kind == WRITE and event.applied:
            last_write[event.key] = event.value
        elif event.kind == READ:
            expected = last_write.get(event.key)
            if event.value != expected:
                raise ConsistencyViolation(
                    f"read {event.brief()} observed {event.value!r} but "
                    f"the latest preceding write left {expected!r}"
                )


def is_legal_order(
    history: History,
    order: Sequence[Event],
    allow_reorder: Optional[ExemptPair] = None,
) -> bool:
    """Boolean form of :func:`validate_total_order`."""
    try:
        validate_total_order(history, order, allow_reorder)
        return True
    except ConsistencyViolation:
        return False


def validate_linearizable(history: History) -> None:
    """Raise unless the history is linearizable.

    Events here are instantaneous (each operation takes effect at its
    substrate real-time point), so linearizability degenerates to: the
    real-time order itself must be a legal serialization — every read
    observes the latest real-time-preceding applied write.  Halfmoon
    deliberately relaxes this (Section 4.4): stale log-free reads under
    Halfmoon-read are sequentially consistent but *not* linearizable,
    unless the SSF syncs its cursor first.
    """
    validate_total_order(history, history.by_real_time())


def is_linearizable(history: History) -> bool:
    """Boolean form of :func:`validate_linearizable`."""
    try:
        validate_linearizable(history)
        return True
    except ConsistencyViolation:
        return False


def find_sequential_witness(
    history: History,
    max_events: int = 9,
) -> Optional[List[Event]]:
    """Search for *any* sequentially consistent serialization.

    Exponential — intended for property tests over small histories.  The
    search interleaves the per-process program-order queues (it never
    permutes within a process), which is exactly the definition of SC.
    """
    if len(history.events) > max_events:
        raise ConsistencyViolation(
            f"witness search capped at {max_events} events "
            f"(got {len(history.events)})"
        )
    queues = [history.program_order(p) for p in history.processes()]
    order: List[Event] = []
    last_write = dict(history.initial_values)

    def backtrack(indices: List[int], state: dict) -> bool:
        if len(order) == len(history.events):
            return True
        for qi, queue in enumerate(queues):
            i = indices[qi]
            if i >= len(queue):
                continue
            event = queue[i]
            if event.kind == READ:
                expected = state.get(event.key)
                if event.value != expected:
                    continue
                order.append(event)
                indices[qi] += 1
                if backtrack(indices, state):
                    return True
                indices[qi] -= 1
                order.pop()
            else:
                previous = state.get(event.key, _MISSING)
                if event.applied:
                    state[event.key] = event.value
                order.append(event)
                indices[qi] += 1
                if backtrack(indices, state):
                    return True
                indices[qi] -= 1
                order.pop()
                if event.applied:
                    if previous is _MISSING:
                        state.pop(event.key, None)
                    else:
                        state[event.key] = previous
        return False

    if backtrack([0] * len(queues), last_write):
        return order
    return None
