"""Record live protocol executions into checkable histories.

:class:`TracedSession` wraps a manually driven :class:`~repro.runtime.
local.Session` and records each read/write into a shared
:class:`~repro.consistency.events.History`, annotated with the metadata
the effective-order derivations need:

* under Halfmoon-read, an operation's logical timestamp (the cursorTS a
  read seeked from, or the seqnum of a write's commit record);
* under Halfmoon-write, a write's version tuple and its conditional-update
  outcome (observed from the store's rejection counter).

Tests run interleaved sessions, then derive the protocol's effective order
and validate it with the sequential-consistency checker — turning
Propositions 4.7 and 4.8 into executable assertions.
"""

from __future__ import annotations

from typing import Any

from ..runtime.local import Session
from .events import History


class TracedSession:
    """History-recording wrapper around a manual session."""

    def __init__(self, session: Session, history: History,
                 process: str = ""):
        self.session = session
        self.history = history
        self.process = process or session.env.instance_id

    @property
    def env(self):
        return self.session.env

    def init(self) -> "TracedSession":
        self.session.init()
        return self

    def read(self, key: str) -> Any:
        env = self.session.env
        cursor_before = env.cursor_ts
        value = self.session.read(key)
        self.history.read(
            self.process, key, value,
            logical_ts=cursor_before,
        )
        return value

    def write(self, key: str, value: Any) -> None:
        kv = self.session.svc.backend.kv
        rejections_before = kv.conditional_rejections
        self.session.write(key, value)
        env = self.session.env
        protocol = self.session._runtime.router.protocol_for(
            self.session.svc, env, key
        )
        if protocol.logs_writes:
            # Halfmoon-read / Boki: the commit record's seqnum is the
            # write's logical timestamp.
            self.history.write(
                self.process, key, value,
                logical_ts=env.cursor_ts,
                applied=True,
            )
        else:
            # Halfmoon-write: version tuple + conditional outcome.
            applied = kv.conditional_rejections == rejections_before
            self.history.write(
                self.process, key, value,
                logical_ts=(env.cursor_ts, env.consecutive_writes),
                applied=applied,
            )

    def sync(self) -> None:
        self.session.sync()

    def finish(self) -> None:
        self.session.finish()
