"""Effective-order derivations (Propositions 4.7 and 4.8).

Given a history annotated with protocol timestamps, reconstruct the total
order each protocol induces:

* **Halfmoon-read** (Prop. 4.7): events are ordered by their logical
  timestamps — a write sits at its commit record's seqnum, a log-free read
  at the cursorTS it seeked backward from.  Ties (a read whose cursorTS
  equals a write's commit seqnum — i.e. its own preceding write) resolve
  in favour of the write, then by real time.  The result is sequentially
  consistent.

* **Halfmoon-write** (Prop. 4.8): start from real-time order, then reorder
  write events by their version tuples: a write that *succeeded* in its
  conditional update stays at its real-time position; a write that was
  *rejected* is placed immediately before the next successful write to the
  same object with a higher version.  The result is a sequential history
  per SSF except that consecutive log-free writes to different objects may
  commute.
"""

from __future__ import annotations

from typing import List

from ..errors import ConsistencyViolation
from .events import READ, WRITE, Event, History


def halfmoon_read_order(history: History) -> List[Event]:
    """Order events by logical timestamp (Proposition 4.7).

    Every event must carry an integer ``logical_ts`` (commit seqnum for
    writes, cursorTS for reads).
    """
    for event in history.events:
        if not isinstance(event.logical_ts, int):
            raise ConsistencyViolation(
                f"event {event.brief()} lacks an integer logical_ts"
            )
    # Writes before reads at the same timestamp: a read with cursorTS == t
    # sees the write committed at t.
    kind_rank = {WRITE: 0, READ: 1}
    return sorted(
        history.events,
        key=lambda e: (e.logical_ts, kind_rank[e.kind], e.real_time),
    )


def halfmoon_write_order(history: History) -> List[Event]:
    """Real-time order with rejected writes pulled back (Prop. 4.8).

    Write events must carry their version tuple in ``logical_ts`` and the
    conditional-update outcome in ``applied``.
    """
    ordered = history.by_real_time()
    # Pass 1: reads and successful writes keep their real-time positions.
    result: List[Event] = [
        e for e in ordered if e.kind == READ or e.applied
    ]
    # Pass 2: each rejected write is placed immediately before the first
    # successful write to the same object whose version exceeds its own.
    # Conditional updates keep applied versions monotone per object, so
    # "first with a higher version" is well defined — and is typically a
    # write that happened *earlier* in real time (the one that caused the
    # rejection, as in Figure 6).
    rejected = [
        e for e in ordered if e.kind == WRITE and not e.applied
    ]
    for w in sorted(rejected, key=lambda e: (e.logical_ts, e.real_time)):
        slot = None
        for i, s in enumerate(result):
            if (s.kind == WRITE and s.applied and s.key == w.key
                    and s.logical_ts > w.logical_ts):
                slot = i
                break
            if (s.kind == WRITE and s.applied and s.key == w.key
                    and s.logical_ts == w.logical_ts):
                # A replay of an already-applied write: the two are the
                # same logical event, so the duplicate is dropped.
                slot = -1
                break
        if slot == -1:
            continue
        if slot is None:
            raise ConsistencyViolation(
                f"rejected write {w.brief()} (version {w.logical_ts}) "
                "has no successful write with a higher version to hide "
                "behind — the conditional update could not have failed"
            )
        result.insert(slot, w)
    return result


def commutable_log_free_writes(a: Event, b: Event) -> bool:
    """Program-order exemption for Proposition 4.8's validation: two
    same-process *writes* to *different* objects may commute."""
    return a.kind == WRITE and b.kind == WRITE and a.key != b.key
