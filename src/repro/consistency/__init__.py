"""Consistency tooling: histories, effective orders, and an SC checker.

Turns the paper's consistency claims (Propositions 4.7 and 4.8) into
executable checks over recorded protocol executions.
"""

from .checker import (
    find_sequential_witness,
    is_legal_order,
    is_linearizable,
    validate_linearizable,
    validate_total_order,
)
from .effective_order import (
    commutable_log_free_writes,
    halfmoon_read_order,
    halfmoon_write_order,
)
from .events import READ, WRITE, Event, History
from .explorer import (
    ExplorationResult,
    ProtocolExplorer,
    Violation,
    all_interleavings,
)
from .trace import TracedSession

__all__ = [
    "Event",
    "ExplorationResult",
    "ProtocolExplorer",
    "Violation",
    "all_interleavings",
    "History",
    "READ",
    "TracedSession",
    "WRITE",
    "commutable_log_free_writes",
    "find_sequential_witness",
    "halfmoon_read_order",
    "halfmoon_write_order",
    "is_legal_order",
    "is_linearizable",
    "validate_linearizable",
    "validate_total_order",
]
