"""Event and history representations for consistency checking.

A *history* is, per process (SSF invocation), the program-ordered sequence
of read/write events it issued, annotated with the metadata the protocols
expose: the value read or written, the logical timestamp (cursorTS at the
operation, commit seqnum, or version tuple), and the real-time order in
which operations hit the substrate.

Histories feed two consumers:

* the effective-order derivations of Propositions 4.7 and 4.8, which
  reconstruct the total order each protocol induces, and
* the sequential-consistency checker, which validates a proposed total
  order or searches for a witness on small histories.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Event:
    kind: str                      # READ or WRITE
    process: str                   # SSF invocation id
    key: str
    value: Any                     # value read / value written
    real_time: int                 # global issue order (substrate order)
    logical_ts: Any = None         # protocol-specific timestamp
    applied: bool = True           # for HM-W writes: conditional outcome
    label: str = ""                # free-form, for debugging

    def brief(self) -> str:
        mark = "" if self.applied else "!"
        return (
            f"{self.process}:{self.kind[0].upper()}({self.key})"
            f"={self.value!r}{mark}"
        )


@dataclass
class History:
    """Program-ordered events per process plus initial values."""

    initial_values: Dict[str, Any] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)
    _counter: int = 0

    def add(
        self,
        kind: str,
        process: str,
        key: str,
        value: Any,
        logical_ts: Any = None,
        applied: bool = True,
        label: str = "",
    ) -> Event:
        event = Event(
            kind=kind,
            process=process,
            key=key,
            value=value,
            real_time=self._counter,
            logical_ts=logical_ts,
            applied=applied,
            label=label,
        )
        self._counter += 1
        self.events.append(event)
        return event

    def read(self, process: str, key: str, value: Any,
             logical_ts: Any = None, label: str = "") -> Event:
        return self.add(READ, process, key, value, logical_ts, True, label)

    def write(self, process: str, key: str, value: Any,
              logical_ts: Any = None, applied: bool = True,
              label: str = "") -> Event:
        return self.add(WRITE, process, key, value, logical_ts, applied,
                        label)

    # -- views ---------------------------------------------------------

    def processes(self) -> List[str]:
        seen: List[str] = []
        for event in self.events:
            if event.process not in seen:
                seen.append(event.process)
        return seen

    def program_order(self, process: str) -> List[Event]:
        return [e for e in self.events if e.process == process]

    def by_real_time(self) -> List[Event]:
        return sorted(self.events, key=lambda e: e.real_time)

    def keys(self) -> List[str]:
        seen: List[str] = []
        for event in self.events:
            if event.key not in seen:
                seen.append(event.key)
        return seen

    def __len__(self) -> int:
        return len(self.events)
