"""Bounded exhaustive exploration of protocol interleavings.

The paper's technical report backs Propositions 4.7 and 4.8 with formal
proofs and TLA+ model checking.  This module is the executable analogue
over the *actual implementation*: given small per-SSF programs, it
enumerates **every** interleaving of their operations (and, optionally,
every single-crash/replay variant), runs each schedule against a fresh
substrate, and checks the protocol's guarantees on each outcome:

* the recorded history validates against the protocol's derived effective
  order (sequential consistency for Halfmoon-read; the relaxed order of
  Proposition 4.8 for Halfmoon-write);
* a session that crashes after any prefix and replays at the end of the
  schedule converges to a state consistent with exactly-once semantics
  (its re-executed reads return their original values, and the final
  store state validates under the same ordering rules).

Exploration is exhaustive but bounded: the number of interleavings of
programs with lengths ``n1..nk`` is the multinomial coefficient, so keep
programs to a handful of operations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConsistencyViolation
from .checker import validate_total_order
from .effective_order import (
    commutable_log_free_writes,
    halfmoon_read_order,
    halfmoon_write_order,
)
from .events import History
from .trace import TracedSession

#: A program is a sequence of ("r"|"w", key) operations; written values
#: are generated uniquely per (session, op index).
Program = Sequence[Tuple[str, str]]


@dataclass
class Violation:
    schedule: Tuple[int, ...]
    crash: Optional[Tuple[int, int]]  # (session index, after-op count)
    message: str


@dataclass
class ExplorationResult:
    schedules_explored: int = 0
    crash_variants_explored: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        return (
            f"{self.schedules_explored} schedules, "
            f"{self.crash_variants_explored} crash variants, "
            f"{len(self.violations)} violations"
        )


def all_interleavings(lengths: Sequence[int]):
    """Yield every schedule (tuple of session indices) interleaving
    programs of the given lengths, preserving each program's order."""
    slots = []
    for index, length in enumerate(lengths):
        slots.extend([index] * length)
    seen = set()
    for permutation in itertools.permutations(slots):
        if permutation not in seen:
            seen.add(permutation)
            yield permutation


class ProtocolExplorer:
    """Explores a protocol over fixed programs and initial values."""

    def __init__(
        self,
        protocol: str,
        programs: Sequence[Program],
        initial_values: Dict[str, Any],
        seed: int = 0,
    ):
        self.protocol = protocol
        self.programs = [list(p) for p in programs]
        self.initial_values = dict(initial_values)
        self.seed = seed

    # ------------------------------------------------------------------
    # Single-schedule execution
    # ------------------------------------------------------------------

    def _fresh_runtime(self):
        from ..config import SystemConfig
        from ..runtime.local import LocalRuntime

        runtime = LocalRuntime(
            SystemConfig(seed=self.seed), protocol=self.protocol
        )
        for key, value in self.initial_values.items():
            runtime.populate(key, value)
        return runtime

    def _run_schedule(
        self,
        schedule: Sequence[int],
        crash: Optional[Tuple[int, int]] = None,
    ) -> Tuple[History, Dict[int, List[Any]], Dict[int, List[Any]]]:
        """Execute one schedule; returns (history, reads before crash,
        reads from the replay)."""
        runtime = self._fresh_runtime()
        history = History(initial_values=dict(self.initial_values))
        sessions = [
            TracedSession(runtime.open_session(), history, f"P{i}").init()
            for i in range(len(self.programs))
        ]
        positions = [0] * len(self.programs)
        reads: Dict[int, List[Any]] = {
            i: [] for i in range(len(self.programs))
        }

        crashed_session = crash[0] if crash is not None else None
        crash_after = crash[1] if crash is not None else None

        for session_index in schedule:
            if (session_index == crashed_session
                    and positions[session_index] >= crash_after):
                continue  # this session is "down" for the rest
            op_kind, key = self.programs[session_index][
                positions[session_index]
            ]
            session = sessions[session_index]
            if op_kind == "r":
                reads[session_index].append(session.read(key))
            else:
                session.write(
                    key,
                    f"s{session_index}.o{positions[session_index]}",
                )
            positions[session_index] += 1

        replay_reads: Dict[int, List[Any]] = {}
        if crashed_session is not None:
            # The crashed session re-executes its whole program at the
            # end of the schedule (detection delay elapsed).
            replay = TracedSession(
                sessions[crashed_session].session.replay(),
                History(initial_values=dict(self.initial_values)),
                f"P{crashed_session}r",
            ).init()
            collected: List[Any] = []
            for op_index, (op_kind, key) in enumerate(
                self.programs[crashed_session]
            ):
                if op_kind == "r":
                    collected.append(replay.read(key))
                else:
                    replay.write(key, f"s{crashed_session}.o{op_index}")
            replay_reads[crashed_session] = collected
        return history, reads, replay_reads

    # ------------------------------------------------------------------
    # Invariant checks
    # ------------------------------------------------------------------

    def _validate_history(self, history: History) -> None:
        if self.protocol == "halfmoon-read":
            validate_total_order(history, halfmoon_read_order(history))
        elif self.protocol == "halfmoon-write":
            validate_total_order(
                history,
                halfmoon_write_order(history),
                allow_reorder=commutable_log_free_writes,
            )
        # Boki/unsafe: no derived order to validate.

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------

    def explore(self, with_crashes: bool = True) -> ExplorationResult:
        result = ExplorationResult()
        lengths = [len(p) for p in self.programs]
        for schedule in all_interleavings(lengths):
            result.schedules_explored += 1
            try:
                history, _, _ = self._run_schedule(schedule)
                self._validate_history(history)
            except ConsistencyViolation as violation:
                result.violations.append(
                    Violation(tuple(schedule), None, str(violation))
                )
                continue

            if not with_crashes:
                continue
            # Crash each session after each prefix of its program; the
            # replayed reads must match the pre-crash reads prefix.
            for session_index, program in enumerate(self.programs):
                for crash_after in range(0, len(program)):
                    result.crash_variants_explored += 1
                    try:
                        _, reads, replay_reads = self._run_schedule(
                            schedule, crash=(session_index, crash_after)
                        )
                        before = reads[session_index]
                        after = replay_reads[session_index]
                        if after[: len(before)] != before:
                            raise ConsistencyViolation(
                                f"replayed reads {after} diverge from "
                                f"pre-crash reads {before}"
                            )
                    except ConsistencyViolation as violation:
                        result.violations.append(
                            Violation(
                                tuple(schedule),
                                (session_index, crash_after),
                                str(violation),
                            )
                        )
        return result
