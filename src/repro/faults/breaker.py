"""Circuit breaker over a substrate service.

Classic three-state breaker (closed / open / half-open), with one twist:
direct mode has no wall clock, so the open-state cooldown is measured in
*consulted operations* rather than milliseconds — after
``cooldown_ops`` further calls the breaker half-opens and lets one trial
through.

A second twist: because every substrate call is required for
correctness (an SSF cannot simply skip its commit record), the breaker
never fails fast.  Opening instead *enables degraded modes* in the
services layer — cache-resident log reads are served from the
node-local :class:`~repro.sharedlog.cache.RecordCache`, and
opportunistic background appends are dropped — while required calls
keep going through the (retried) primary path.
"""

from __future__ import annotations


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with operation-count cooldown."""

    def __init__(self, name: str = "service", failure_threshold: int = 5,
                 cooldown_ops: int = 50):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ops < 1:
            raise ValueError("cooldown_ops must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_ops = cooldown_ops
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._cooldown_remaining = 0
        #: Number of closed -> open transitions (for chaos reports).
        self.trips = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def is_open(self) -> bool:
        return self._state == BreakerState.OPEN

    def consult(self) -> bool:
        """Report whether degraded mode is active for the next call.

        Each consultation while open burns one cooldown tick; when the
        cooldown elapses the breaker half-opens, and the next recorded
        outcome decides whether it closes or re-opens.
        """
        if self._state == BreakerState.OPEN:
            self._cooldown_remaining -= 1
            if self._cooldown_remaining <= 0:
                self._state = BreakerState.HALF_OPEN
                return False
            return True
        return False

    def record_success(self) -> None:
        # Outcomes while open are ignored: required calls keep flowing
        # through the primary path during a brown-out, and the ~65%
        # that still succeed must not mask it — only the half-open
        # trial (the first outcome after the cooldown) decides.
        if self._state == BreakerState.OPEN:
            return
        self._consecutive_failures = 0
        self._state = BreakerState.CLOSED

    def record_failure(self) -> None:
        if self._state == BreakerState.OPEN:
            return
        if self._state == BreakerState.HALF_OPEN:
            # The trial failed: straight back to open.
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._cooldown_remaining = self.cooldown_ops
        self._consecutive_failures = 0
        self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker({self.name!r}, state={self._state!r}, "
            f"trips={self.trips})"
        )
