"""Infrastructure fault injection and resilience policies.

The crash machinery in :mod:`repro.runtime.failures` models the *first*
fault dimension: function instances dying at operation boundaries.  This
package models the *second*: the substrates themselves misbehaving —
transient log/store errors, per-operation timeouts, and gray-failure
latency inflation — plus the policy layer that keeps the system usable
while they do:

* :class:`FaultInjector` — seeded, per-operation fault plans drawn from
  the platform's :class:`~repro.simulation.rng.RngRegistry`, so chaos
  runs are exactly reproducible;
* :class:`RetryPolicy` — bounded retries with exponential backoff,
  deterministic jitter, per-attempt timeouts, and a per-operation
  deadline;
* :class:`CircuitBreaker` — trips after consecutive substrate failures
  and enables graceful degradation (cache-served log reads, droppable
  background appends) until the service recovers.

The wiring lives in :class:`repro.runtime.services.InstanceServices`,
so every protocol inherits resilience without changes.
"""

from .breaker import BreakerState, CircuitBreaker
from .injector import (
    FAULT_ERROR,
    FAULT_GRAY,
    FAULT_TIMEOUT,
    FaultDecision,
    FaultInjector,
)
from .retry import RetryPolicy
from .storage import (
    LinkPartitionSchedule,
    LinkWindow,
    StorageFaultInjector,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FAULT_ERROR",
    "FAULT_GRAY",
    "FAULT_TIMEOUT",
    "FaultDecision",
    "FaultInjector",
    "LinkPartitionSchedule",
    "LinkWindow",
    "RetryPolicy",
    "StorageFaultInjector",
]
