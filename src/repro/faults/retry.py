"""Retry policy: bounded attempts, exponential backoff, deadlines.

The schedule is the classic AWS-style "full jitter" variant, made
deterministic by drawing the jitter from a seeded stream: backoff for
attempt ``n`` (1-based; the first retry follows attempt 1) is

    min(max_backoff, base * multiplier**(n-1)) * (1 + U[0, jitter])

Backoff is *simulated* waiting — it is charged to the invocation's cost
trace (``retry_backoff``), which is how fault amplification becomes
visible in DES-mode latency plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ResilienceConfig


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable view of the retry/deadline knobs of one platform."""

    max_attempts: int = 4
    base_backoff_ms: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 8.0
    jitter_fraction: float = 0.2
    attempt_timeout_ms: float = 10.0
    error_latency_ms: float = 1.0
    op_deadline_ms: float = 100.0
    #: Fenced-epoch handling: a fence names its own fix (refresh the
    #: cached leader epoch), so the retry pays one flat rediscovery
    #: round-trip instead of walking the backoff schedule; bounded by
    #: ``max_rediscoveries`` against a flapping leader.
    rediscovery_ms: float = 2.0
    max_rediscoveries: int = 4

    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "RetryPolicy":
        config.validate()
        return cls(
            max_attempts=config.max_attempts,
            base_backoff_ms=config.base_backoff_ms,
            backoff_multiplier=config.backoff_multiplier,
            max_backoff_ms=config.max_backoff_ms,
            jitter_fraction=config.jitter_fraction,
            attempt_timeout_ms=config.attempt_timeout_ms,
            error_latency_ms=config.error_latency_ms,
            op_deadline_ms=config.op_deadline_ms,
            rediscovery_ms=config.rediscovery_ms,
            max_rediscoveries=config.max_rediscoveries,
        )

    def backoff_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff to charge after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.max_backoff_ms,
            self.base_backoff_ms * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter_fraction == 0.0:
            return base
        return base * (1.0 + self.jitter_fraction * float(rng.random()))

    def fault_cost_ms(self, fault_kind: str) -> float:
        """Simulated time burned by one failed attempt of ``fault_kind``."""
        from .injector import FAULT_TIMEOUT

        if fault_kind == FAULT_TIMEOUT:
            return self.attempt_timeout_ms
        return self.error_latency_ms
