"""Storage-side fault injection: per-component rates and link partitions.

The worker-side :class:`~repro.faults.injector.FaultInjector` models
"my request misbehaved somewhere"; this module models *which storage
component* misbehaved.  Two mechanisms, both armed by
:class:`~repro.config.StorageChaosConfig`:

* **Per-component rates** — every log shard and KV partition owns a
  dedicated RNG stream, derived through
  :func:`repro.harness.parallel.seed_for` from the run seed and the
  component's identity.  Faults are therefore attributable (injected
  counters are labelled like the ``op_latency{shard=}`` metrics, e.g.
  ``log:error:shard=2``), independent of the worker-side
  ``infra-faults`` stream, and — because the derivation never depends
  on scheduling — bit-identical whether a sweep runs serial or under
  ``--jobs N``.

* **A seeded link-partition schedule** — windows during which a
  *directional link* is severed: ``worker↔shard`` (every operation to
  the shard fails from the caller's side) or ``metalog↔shard`` (the
  sequencer cannot reach the shard, so only *appends* touching it fail
  while reads pass) — the asymmetry that drives the PR-1 retry/breaker
  paths differently per protocol.  Both present as timeouts: the
  request vanishes, nothing applies, so injection alone can never
  duplicate an effect (same omission-only argument as the worker-side
  injector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import StorageChaosConfig
from .injector import FAULT_ERROR, FAULT_TIMEOUT, FaultDecision, HEALTHY

#: Component kinds, matching the services layer's placement labels.
COMPONENT_SHARD = "shard"
COMPONENT_PARTITION = "partition"


def _component_seed(base_seed: int, kind: str, index: int) -> int:
    # Local import: harness.parallel imports nothing from faults, but
    # keep the package layering acyclic at import time anyway.
    from ..harness.parallel import seed_for

    return seed_for(base_seed, ("storage-faults", kind, index))


@dataclass(frozen=True)
class LinkWindow:
    """One severed-link window: ``[start_ms, end_ms)`` on a component."""

    start_ms: float
    end_ms: float
    side: str          # "worker" or "metalog"
    kind: str          # COMPONENT_SHARD or COMPONENT_PARTITION
    component: int

    def covers(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.end_ms


class LinkPartitionSchedule:
    """Seeded schedule of asymmetric link partitions.

    Windows are drawn once, up front, from a dedicated stream — the
    schedule is a pure function of ``(base_seed, topology, config)`` and
    never consumes draws during the run.
    """

    def __init__(
        self,
        config: StorageChaosConfig,
        base_seed: int,
        num_shards: int,
        num_partitions: int,
    ):
        self.windows: List[LinkWindow] = []
        if config.partition_windows <= 0:
            return
        rng = np.random.default_rng(
            _component_seed(base_seed, "netsplit", 0)
        )
        horizon = max(config.partition_horizon_ms, config.partition_window_ms)
        span = max(horizon - config.partition_window_ms, 0.0)
        for _ in range(config.partition_windows):
            start = float(rng.random()) * span
            # Shards take most of the severing (they sit on both the
            # worker and the metalog side); partitions only see the
            # worker side — there is no metalog↔partition link.
            if num_shards > 0 and (num_partitions == 0
                                   or float(rng.random()) < 0.7):
                kind = COMPONENT_SHARD
                component = int(rng.integers(0, num_shards))
                side = ("worker" if float(rng.random()) < 0.5
                        else "metalog")
            else:
                kind = COMPONENT_PARTITION
                component = int(rng.integers(0, max(num_partitions, 1)))
                side = "worker"
            self.windows.append(LinkWindow(
                start_ms=start,
                end_ms=start + config.partition_window_ms,
                side=side,
                kind=kind,
                component=component,
            ))

    def severed(
        self, now_ms: float, kind: str, component: int, is_write: bool
    ) -> bool:
        """Is the link to ``(kind, component)`` severed at ``now_ms``?

        A ``metalog``-side window only severs *writes* (the sequencer
        cannot replicate the assignment to the shard); a ``worker``-side
        window severs everything.
        """
        for w in self.windows:
            if (w.kind == kind and w.component == component
                    and w.covers(now_ms)
                    and (w.side == "worker" or is_write)):
                return True
        return False

    def __len__(self) -> int:
        return len(self.windows)


class StorageFaultInjector:
    """Per-shard / per-partition fault plans plus the link schedule."""

    def __init__(
        self,
        config: StorageChaosConfig,
        base_seed: int,
        num_shards: int,
        num_partitions: int,
    ):
        config.validate()
        self.config = config
        self._shard_rngs = [
            np.random.default_rng(
                _component_seed(base_seed, COMPONENT_SHARD, i)
            )
            for i in range(num_shards)
        ]
        self._partition_rngs = [
            np.random.default_rng(
                _component_seed(base_seed, COMPONENT_PARTITION, i)
            )
            for i in range(num_partitions)
        ]
        self.schedule = LinkPartitionSchedule(
            config, base_seed, num_shards, num_partitions
        )
        #: Injected counts labelled ``"<service>:<kind>:<component>=<i>"``.
        self.injected: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        cfg = self.config
        return cfg.enabled and (
            cfg.shard_error_rate > 0.0 or cfg.shard_timeout_rate > 0.0
            or cfg.partition_error_rate > 0.0
            or cfg.partition_timeout_rate > 0.0
            or len(self.schedule) > 0
        )

    def _note(self, service: str, kind: str, component_kind: str,
              component: int) -> None:
        key = f"{service}:{kind}:{component_kind}={component}"
        self.injected[key] = self.injected.get(key, 0) + 1

    def draw(
        self,
        kind: str,
        component: int,
        now_ms: float,
        is_write: bool,
    ) -> FaultDecision:
        """Decide the fate of one call to ``(kind, component)``.

        The link schedule is consulted first (severed ⇒ timeout, no RNG
        draw — the schedule must not perturb the per-component
        streams); then the component's own error/timeout rates.
        """
        cfg = self.config
        service = "log" if kind == COMPONENT_SHARD else "store"
        if self.schedule.severed(now_ms, kind, component, is_write):
            self._note(service, "netsplit", kind, component)
            return FaultDecision(FAULT_TIMEOUT)
        if kind == COMPONENT_SHARD:
            error_rate = cfg.shard_error_rate
            timeout_rate = cfg.shard_timeout_rate
            rngs: List[np.random.Generator] = self._shard_rngs
        else:
            error_rate = cfg.partition_error_rate
            timeout_rate = cfg.partition_timeout_rate
            rngs = self._partition_rngs
        if (error_rate <= 0.0 and timeout_rate <= 0.0) or not rngs:
            return HEALTHY
        roll = float(rngs[component].random())
        if roll < error_rate:
            self._note(service, FAULT_ERROR, kind, component)
            return FaultDecision(FAULT_ERROR)
        if roll < error_rate + timeout_rate:
            self._note(service, FAULT_TIMEOUT, kind, component)
            return FaultDecision(FAULT_TIMEOUT)
        return HEALTHY

    def draw_placement(
        self,
        placement: Optional[tuple],
        now_ms: float,
        is_write: bool,
    ) -> FaultDecision:
        """Draw for a services-layer placement label (or pass healthy)."""
        if placement is None:
            return HEALTHY
        kind, component = placement
        if kind not in (COMPONENT_SHARD, COMPONENT_PARTITION):
            return HEALTHY
        return self.draw(kind, int(component), now_ms, is_write)

    def injected_total(self) -> int:
        return sum(self.injected.values())
