"""Seeded per-operation fault plans.

Every externally visible operation (log append/read, DB read/write) asks
the injector for a :class:`FaultDecision` before it runs.  Decisions are
drawn from a single named RNG stream, so a run is a deterministic
function of the root seed: same seed, same fault plan, same results.

Injected faults are *request omissions*: an ``error`` or ``timeout``
strikes before the substrate call takes effect, so injection alone can
never duplicate an effect.  The interesting exactly-once windows — an
effect applied but unacknowledged — are covered by composing crash
injection (:mod:`repro.runtime.failures`) on top, which kills the
instance between an effect and its commit record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..config import FaultConfig

#: The substrate returned an error reply (request dropped, no effect).
FAULT_ERROR = "error"
#: The request hung; the caller pays its per-attempt timeout (no effect).
FAULT_TIMEOUT = "timeout"
#: Gray failure: the call succeeds but on a slow node (inflated latency).
FAULT_GRAY = "gray"

#: Which fault kinds leave the substrate call unexecuted.
OMISSION_KINDS = frozenset({FAULT_ERROR, FAULT_TIMEOUT})


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of one injection draw.

    ``kind`` is ``None`` for a healthy call; ``latency_factor`` scales
    the operation's sampled service time (> 1 only for gray failures).
    """

    kind: str = None  # type: ignore[assignment]
    latency_factor: float = 1.0

    @property
    def healthy(self) -> bool:
        return self.kind is None

    @property
    def omitted(self) -> bool:
        """True when the substrate call must not run for this attempt."""
        return self.kind in OMISSION_KINDS


HEALTHY = FaultDecision()


class FaultInjector:
    """Draws per-operation fault decisions from a dedicated RNG stream."""

    def __init__(self, config: FaultConfig, rng: np.random.Generator):
        config.validate()
        self.config = config
        self.rng = rng
        #: Injected-fault counts by ``"<service>:<kind>"``, for reports.
        self.injected: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled and self.config.total_rate > 0.0

    def applies_to(self, service: str) -> bool:
        return self.config.scope in ("all", service)

    def draw(self, service: str, op: str) -> FaultDecision:
        """Decide the fate of one substrate call.

        ``service`` is ``"log"`` or ``"store"``; ``op`` is the cost-kind
        label, recorded for diagnostics only.
        """
        cfg = self.config
        if not self.enabled or not self.applies_to(service):
            return HEALTHY
        roll = float(self.rng.random())
        if roll < cfg.error_rate:
            decision = FaultDecision(FAULT_ERROR)
        elif roll < cfg.error_rate + cfg.timeout_rate:
            decision = FaultDecision(FAULT_TIMEOUT)
        elif roll < cfg.total_rate:
            # Inflation is itself sampled so gray latencies vary, but
            # deterministically: the factor comes from the same stream.
            factor = 1.0 + float(self.rng.random()) * (cfg.gray_factor - 1.0)
            decision = FaultDecision(FAULT_GRAY, latency_factor=factor)
        else:
            return HEALTHY
        key = f"{service}:{decision.kind}"
        self.injected[key] = self.injected.get(key, 0) + 1
        return decision

    def injected_total(self) -> int:
        return sum(self.injected.values())
