"""Analytical models from the paper: overhead (Section 4.6), protocol
choice, and recovery cost (Section 7).
"""

from .advisor import (
    HALFMOON_READ,
    HALFMOON_WRITE,
    ProtocolAdvisor,
    Recommendation,
    WorkloadObserver,
)
from .overhead_model import (
    WorkloadProfile,
    read_log_population,
    runtime_boundary_read_ratio,
    runtime_extra_cost_halfmoon_read,
    runtime_extra_cost_halfmoon_write,
    storage_boundary_read_ratio,
    storage_halfmoon_read,
    storage_halfmoon_write,
    write_log_population,
)
from .recovery import (
    break_even_failure_rate,
    expected_cost_halfmoon,
    expected_cost_symmetric,
    expected_rounds,
    halfmoon_wins,
)

__all__ = [
    "HALFMOON_READ",
    "HALFMOON_WRITE",
    "ProtocolAdvisor",
    "Recommendation",
    "WorkloadObserver",
    "WorkloadProfile",
    "break_even_failure_rate",
    "expected_cost_halfmoon",
    "expected_cost_symmetric",
    "expected_rounds",
    "halfmoon_wins",
    "read_log_population",
    "runtime_boundary_read_ratio",
    "runtime_extra_cost_halfmoon_read",
    "runtime_extra_cost_halfmoon_write",
    "storage_boundary_read_ratio",
    "storage_halfmoon_read",
    "storage_halfmoon_write",
    "write_log_population",
]
