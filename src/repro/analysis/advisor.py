"""Protocol advisor: "choosing the right protocol" (Section 4.6).

Combines the storage and runtime overhead models into a recommendation,
optionally weighting the two by monetary cost as the paper's remark
suggests.  The advisor can also be fed *measured* workload statistics
collected by :class:`WorkloadObserver`, which tracks per-object read and
write counts over a window — this is the piece a deployment would use to
drive the switching mechanism of Section 4.7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from .overhead_model import (
    WorkloadProfile,
    runtime_boundary_read_ratio,
    runtime_extra_cost_halfmoon_read,
    runtime_extra_cost_halfmoon_write,
    storage_halfmoon_read,
    storage_halfmoon_write,
)

HALFMOON_READ = "halfmoon-read"
HALFMOON_WRITE = "halfmoon-write"


@dataclass(frozen=True)
class Recommendation:
    protocol: str
    read_ratio: float
    runtime_boundary: float
    storage_boundary: float
    predicted_storage_read: float
    predicted_storage_write: float
    runtime_score_read: float      # expected extra cost of HM-read
    runtime_score_write: float     # expected extra cost of HM-write

    def explain(self) -> str:
        return (
            f"read ratio {self.read_ratio:.2f} vs runtime boundary "
            f"{self.runtime_boundary:.2f} / storage boundary "
            f"{self.storage_boundary:.2f} -> {self.protocol}"
        )


class ProtocolAdvisor:
    """Recommends a protocol for a workload profile.

    ``cost_ratio_w_over_r`` is ``C_w / C_r`` — the prototype's extra write
    cost under Halfmoon-read relative to the extra read cost under
    Halfmoon-write (~2, Section 4.6).  ``runtime_weight`` in [0, 1] blends
    the runtime criterion with the storage criterion (1.0 = runtime only).
    """

    def __init__(
        self,
        cost_ratio_w_over_r: float = 2.0,
        c_read_ms: float = 1.0,
        runtime_weight: float = 1.0,
        meta_bytes: int = 48,
        value_bytes: int = 256,
        logs_per_write: int = 2,
    ):
        if not 0.0 <= runtime_weight <= 1.0:
            raise ConfigError("runtime_weight must be in [0, 1]")
        self.cost_ratio = cost_ratio_w_over_r
        self.c_read_ms = c_read_ms
        self.c_write_ms = c_read_ms * cost_ratio_w_over_r
        self.runtime_weight = runtime_weight
        self.meta_bytes = meta_bytes
        self.value_bytes = value_bytes
        self.logs_per_write = logs_per_write

    def recommend(self, profile: WorkloadProfile) -> Recommendation:
        profile.validate()
        total = profile.p_read + profile.p_write
        read_ratio = profile.p_read / total if total > 0 else 0.5

        runtime_read = runtime_extra_cost_halfmoon_read(
            profile, self.c_write_ms
        )
        runtime_write = runtime_extra_cost_halfmoon_write(
            profile, self.c_read_ms
        )
        storage_read = storage_halfmoon_read(
            profile, self.meta_bytes, self.value_bytes, self.logs_per_write
        )
        storage_write = storage_halfmoon_write(
            profile, self.meta_bytes, self.value_bytes
        )

        # Normalised scores (lower is better for the protocol named).
        w = self.runtime_weight
        denom_rt = runtime_read + runtime_write
        denom_st = storage_read + storage_write
        score_read = (
            w * (runtime_read / denom_rt if denom_rt else 0.5)
            + (1 - w) * (storage_read / denom_st if denom_st else 0.5)
        )
        score_write = (
            w * (runtime_write / denom_rt if denom_rt else 0.5)
            + (1 - w) * (storage_write / denom_st if denom_st else 0.5)
        )
        protocol = (
            HALFMOON_READ if score_read <= score_write else HALFMOON_WRITE
        )
        return Recommendation(
            protocol=protocol,
            read_ratio=read_ratio,
            runtime_boundary=runtime_boundary_read_ratio(self.cost_ratio),
            storage_boundary=0.5,
            predicted_storage_read=storage_read,
            predicted_storage_write=storage_write,
            runtime_score_read=runtime_read,
            runtime_score_write=runtime_write,
        )


class WorkloadObserver:
    """Collects per-object read/write counts to build measured profiles."""

    def __init__(self):
        self._reads: Dict[str, int] = {}
        self._writes: Dict[str, int] = {}
        self._invocations = 0

    def note_invocation(self) -> None:
        self._invocations += 1

    def note_read(self, key: str) -> None:
        self._reads[key] = self._reads.get(key, 0) + 1

    def note_write(self, key: str) -> None:
        self._writes[key] = self._writes.get(key, 0) + 1

    def profile_for(
        self,
        key: str,
        arrival_rate_per_s: float,
        lifetime_s: float = 0.05,
        gc_delay_s: float = 5.0,
    ) -> WorkloadProfile:
        if self._invocations == 0:
            raise ConfigError("no invocations observed yet")
        return WorkloadProfile(
            p_read=min(1.0, self._reads.get(key, 0) / self._invocations),
            p_write=min(1.0, self._writes.get(key, 0) / self._invocations),
            arrival_rate_per_s=arrival_rate_per_s,
            lifetime_s=lifetime_s,
            gc_delay_s=gc_delay_s,
        )

    def aggregate_read_ratio(self) -> float:
        reads = sum(self._reads.values())
        writes = sum(self._writes.values())
        total = reads + writes
        return reads / total if total else 0.5

    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._reads) | set(self._writes)))
