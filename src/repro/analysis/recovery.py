"""Recovery-cost model (Section 7, "Recovery cost").

Halfmoon's asymmetric protocols optimise the failure-free path: during
re-execution they must *replay* log-free operations, whereas symmetric
protocols skip every logged operation.  Modelling SSF execution as a
Bernoulli process — each round succeeds with probability ``1 - f`` — the
expected number of rounds is ``1 / (1 - f)``, and Halfmoon stays ahead of
a symmetric protocol as long as ``f`` is below the failure-free overhead
advantage ``x``.

The derivation: let the symmetric protocol's failure-free cost be ``1``
and Halfmoon's be ``1 - x``.  A crashed round costs (on average) some
fraction of a full run for both, but Halfmoon re-pays its log-free
operations while the symmetric protocol replays from the log at roughly
zero marginal state-access cost.  Charging Halfmoon a full re-run and the
symmetric protocol only its logging-free replay, expected costs are::

    E[halfmoon]  = (1 - x) / (1 - f)
    E[symmetric] = 1 + f/(1-f) * replay_discount

With the paper's simplification (replay is free for symmetric protocols,
``replay_discount = 0``), Halfmoon wins iff ``(1-x)/(1-f) < 1``, i.e.
``f < x``.  Figure 10's ~30% failure-free advantage therefore puts the
break-even failure rate near 30%, far above real failure rates.
"""

from __future__ import annotations

from ..errors import ConfigError


def expected_rounds(f: float) -> float:
    """Expected executions of a Bernoulli-crashing SSF before success."""
    if not 0.0 <= f < 1.0:
        raise ConfigError("f must be in [0, 1)")
    return 1.0 / (1.0 - f)


def expected_cost_halfmoon(f: float, advantage_x: float) -> float:
    """Expected cost of Halfmoon (failure-free cost ``1 - x``) when every
    round re-pays the log-free operations."""
    if not 0.0 <= advantage_x < 1.0:
        raise ConfigError("advantage_x must be in [0, 1)")
    return (1.0 - advantage_x) * expected_rounds(f)


def expected_cost_symmetric(f: float, replay_discount: float = 0.0) -> float:
    """Expected cost of a symmetric protocol (failure-free cost 1) whose
    crashed rounds cost only ``replay_discount`` of a full run (log replay
    skips completed operations)."""
    if not 0.0 <= replay_discount <= 1.0:
        raise ConfigError("replay_discount must be in [0, 1]")
    extra_rounds = expected_rounds(f) - 1.0
    return 1.0 + extra_rounds * replay_discount


def break_even_failure_rate(advantage_x: float,
                            replay_discount: float = 0.0) -> float:
    """The failure rate ``f`` at which Halfmoon and the symmetric protocol
    cost the same.  With free symmetric replay this is exactly
    ``advantage_x``; a non-zero replay cost pushes it higher."""
    if not 0.0 <= advantage_x < 1.0:
        raise ConfigError("advantage_x must be in [0, 1)")
    if replay_discount == 0.0:
        return advantage_x
    # Solve (1-x)/(1-f) = 1 + (f/(1-f)) * d  ->  1-x = 1-f + f*d
    return advantage_x / (1.0 - replay_discount)


def halfmoon_wins(f: float, advantage_x: float,
                  replay_discount: float = 0.0) -> bool:
    """True when Halfmoon's expected cost undercuts the symmetric
    protocol's at failure rate ``f``."""
    return expected_cost_halfmoon(f, advantage_x) < expected_cost_symmetric(
        f, replay_discount
    )
