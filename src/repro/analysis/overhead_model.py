"""The Section 4.6 analytical overhead model (Equations 1-4).

Quantifies, per object, the storage and runtime overheads of the two
protocols as functions of

* ``p_read`` / ``p_write`` — probability an SSF reads/writes the object,
* ``arrival_rate`` — SSF arrival rate (per second; Poisson assumed),
* ``lifetime_s`` — mean SSF lifetime including re-execution,
* ``gc_delay_s`` — mean delay between SSF completion and the next GC scan,
* ``meta_bytes`` / ``value_bytes`` — record metadata and object sizes.

Little's Law turns the effective arrival rate of log records times their
mean lifetime into the time-averaged record population:

* Halfmoon-write keeps one object version plus ``N_r`` read-log records,
  ``N_r = p_read * rate * (lifetime + gc_delay)`` (Eq. 1-2);
* Halfmoon-read keeps ``N_w`` write-log records and object versions,
  ``N_w = p_write * rate * (T_w + lifetime + gc_delay)`` with the
  inter-write gap ``T_w = 1 / (p_write * rate)`` under Poisson arrivals
  (Eq. 3-4).  The factor of two on metadata reflects the prototype's two
  log records per write (aligned with Boki, Section 4.1).

The boundary conditions fall out by dividing through by the object size
and dropping metadata: storage parity at ``p_read = p_write``; runtime
parity at ``p_read * C_r = p_write * C_w`` with ``C_w ~= 2 C_r`` in the
prototype, i.e. ``p_read = 2 p_write``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-object workload description used by the analytical model."""

    p_read: float
    p_write: float
    arrival_rate_per_s: float
    lifetime_s: float = 0.05
    gc_delay_s: float = 5.0

    def validate(self) -> "WorkloadProfile":
        if not 0.0 <= self.p_read <= 1.0:
            raise ConfigError("p_read must be in [0, 1]")
        if not 0.0 <= self.p_write <= 1.0:
            raise ConfigError("p_write must be in [0, 1]")
        if self.arrival_rate_per_s <= 0:
            raise ConfigError("arrival_rate_per_s must be positive")
        if self.lifetime_s < 0 or self.gc_delay_s < 0:
            raise ConfigError("lifetime and gc delay must be >= 0")
        return self


def read_log_population(profile: WorkloadProfile) -> float:
    """``N_r`` — mean number of live read-log records (Little's Law)."""
    profile.validate()
    return (
        profile.p_read
        * profile.arrival_rate_per_s
        * (profile.lifetime_s + profile.gc_delay_s)
    )


def write_log_population(profile: WorkloadProfile) -> float:
    """``N_w`` — mean number of live write-log records / object versions.

    Includes the ``T_w`` term enforcing GC condition (a): a version lives
    at least until the next write supersedes it.
    """
    profile.validate()
    effective_write_rate = profile.p_write * profile.arrival_rate_per_s
    if effective_write_rate == 0:
        return 0.0
    inter_write_gap_s = 1.0 / effective_write_rate
    return effective_write_rate * (
        inter_write_gap_s + profile.lifetime_s + profile.gc_delay_s
    )


def storage_halfmoon_write(
    profile: WorkloadProfile,
    meta_bytes: int = 48,
    value_bytes: int = 256,
) -> float:
    """Equation 2: one object version plus the read log."""
    n_r = read_log_population(profile)
    return value_bytes + n_r * (meta_bytes + value_bytes)


def storage_halfmoon_read(
    profile: WorkloadProfile,
    meta_bytes: int = 48,
    value_bytes: int = 256,
    logs_per_write: int = 2,
) -> float:
    """Equation 4: ``N_w`` (write-log records + versions).

    ``logs_per_write`` is 2 in the Boki-aligned prototype and 1 in the
    deterministic-version variant.
    """
    n_w = write_log_population(profile)
    if profile.p_write == 0:
        # No writes ever: only the (populated) base version remains.
        return float(value_bytes)
    return n_w * (logs_per_write * meta_bytes + value_bytes)


def storage_boundary_read_ratio() -> float:
    """Asymptotic read-ratio boundary where the two protocols' storage is
    equal (metadata negligible): ``p_read = p_write`` -> ratio 0.5."""
    return 0.5


def runtime_extra_cost_halfmoon_read(
    profile: WorkloadProfile, c_write: float, duration_s: float = 1.0
) -> float:
    """Expected extra runtime cost of Halfmoon-read over ``duration_s``:
    every write pays ``C_w`` more than it would under Halfmoon-write."""
    return profile.p_write * profile.arrival_rate_per_s * duration_s * c_write


def runtime_extra_cost_halfmoon_write(
    profile: WorkloadProfile, c_read: float, duration_s: float = 1.0
) -> float:
    """Expected extra runtime cost of Halfmoon-write: every read pays
    ``C_r`` more than it would under Halfmoon-read."""
    return profile.p_read * profile.arrival_rate_per_s * duration_s * c_read


def runtime_boundary_read_ratio(cost_ratio_w_over_r: float = 2.0) -> float:
    """Read-ratio boundary of runtime overhead parity.

    Parity at ``p_read * C_r = p_write * C_w``.  With reads and writes
    exhausting the mix (``p_read + p_write = 1``) and
    ``C_w = cost_ratio * C_r``::

        p_read = cost_ratio / (1 + cost_ratio)

    The prototype's ``C_w ~= 2 C_r`` gives the paper's 2/3 boundary.
    """
    if cost_ratio_w_over_r <= 0:
        raise ConfigError("cost ratio must be positive")
    return cost_ratio_w_over_r / (1.0 + cost_ratio_w_over_r)
