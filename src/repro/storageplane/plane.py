"""Concrete storage planes and the config-driven backend registry.

Two built-in backends:

* ``single`` — the seed substrates verbatim (:class:`SharedLog` +
  :class:`KVStore`).  Zero indirection, bit-identical to the
  pre-refactor code, and the paper-faithful configuration.
* ``sharded`` — :class:`~repro.storageplane.sharded_log.ShardedLog`
  (metalog + N log shards) and :class:`~repro.storageplane.
  partitioned_kv.PartitionedKV` (M KV partitions), both routed
  deterministically.  At N=M=1 it is bit-identical to ``single`` (the
  golden-run CI diff enforces this); at N>1 it feeds the per-shard
  queueing model and per-shard metrics.

``backend="auto"`` (the default) picks ``single`` when the topology is
1×1 and ``sharded`` otherwise, so existing configs never change
behaviour and setting ``log_shards=4`` alone is enough to shard.

Future backends (e.g. a process-external store) plug in through
:func:`register_backend` without touching the runtime: the service
layer binds only to :class:`~repro.storageplane.base.StoragePlane`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

from ..errors import ConfigError
from ..sharedlog import SharedLog
from ..store import KVStore, MultiVersionStore
from .base import StoragePlane
from .partitioned_kv import PartitionedKV
from .sharded_log import ShardedLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig


class SingleNodePlane(StoragePlane):
    """The seed topology: one log, one store, no placement labels."""

    name = "single"

    def __init__(self, config: "SystemConfig"):
        self._log = SharedLog(meta_bytes=config.storage.meta_bytes)
        self._kv = KVStore()
        self._mv = MultiVersionStore(self._kv)

    @property
    def log(self) -> SharedLog:
        return self._log

    @property
    def kv(self) -> KVStore:
        return self._kv

    @property
    def mv(self) -> MultiVersionStore:
        return self._mv


class ShardedPlane(StoragePlane):
    """Metalog + N log shards + M KV partitions, hash-routed."""

    name = "sharded"

    def __init__(self, config: "SystemConfig"):
        storage = config.storage
        chaos = getattr(config, "storage_chaos", None)
        chaos_on = bool(chaos is not None and chaos.enabled)
        self._log = ShardedLog(
            meta_bytes=storage.meta_bytes,
            shards=storage.log_shards,
            placement=storage.placement,
            replication=storage.replication,
            sequencer=storage.sequencer,
            # The storage config carries the strategy knobs
            # (sequencer_batch / _hold_ms / _block).
            sequencer_options=storage,
        )
        self._kv = PartitionedKV(
            partitions=storage.kv_partitions,
            placement=storage.placement,
            # Partition-loss recovery needs the redo journal; only pay
            # for it when storage chaos can actually lose a partition.
            durability=chaos_on,
        )
        self._mv = MultiVersionStore(self._kv)

    @property
    def log(self) -> ShardedLog:
        return self._log

    @property
    def kv(self) -> PartitionedKV:
        return self._kv

    @property
    def mv(self) -> MultiVersionStore:
        return self._mv

    @property
    def num_log_shards(self) -> int:
        return self._log.num_shards

    @property
    def num_kv_partitions(self) -> int:
        return self._kv.num_partitions

    def log_shard_of(self, tag: str) -> int:
        return self._log.shard_of(tag)

    def kv_partition_of(self, key: str) -> int:
        return self._kv.partition_of(key)

    @property
    def labelled(self) -> bool:
        return True

    def describe(self) -> Dict:
        info = super().describe()
        info["placement"] = self._log.router.placement
        info["shard_bytes"] = [
            self._log.shard_bytes(i) for i in range(self._log.num_shards)
        ]
        info["partition_bytes"] = [
            self._kv.partition_bytes(i)
            for i in range(self._kv.num_partitions)
        ]
        info["trim_frontiers"] = self._log.shard_trim_frontiers()
        if self._log.sequencer.name != "monolith":
            info["sequencer"] = self._log.sequencer.stats()
        if self._log.replication > 1 or self._kv.durability:
            info["replication"] = self._log.replication
            info["epoch"] = self._log.epoch
            info["failovers"] = self._log.metalog.failovers
            info["down_shards"] = sorted(self._log.down_shards())
            info["down_partitions"] = sorted(self._kv.down_partitions())
        return info


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

PlaneFactory = Callable[["SystemConfig"], StoragePlane]

_BACKENDS: Dict[str, PlaneFactory] = {
    "single": SingleNodePlane,
    "sharded": ShardedPlane,
}


def register_backend(name: str, factory: PlaneFactory) -> None:
    """Plug in a storage-plane backend selectable via config."""
    if name in ("auto",):
        raise ConfigError("'auto' is reserved for backend selection")
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    return sorted(_BACKENDS)


def build_storage_plane(config: "SystemConfig") -> StoragePlane:
    """Build the plane the config selects (``storage.backend``)."""
    storage = config.storage
    name = storage.backend
    if name == "auto":
        chaos = getattr(config, "storage_chaos", None)
        # Storage chaos needs the sharded plane's crash/rebuild surface
        # even at a 1×1 topology; without it, 1×1 stays on the seed
        # substrates bit-exactly.
        plain = (
            storage.log_shards == 1
            and storage.kv_partitions == 1
            and storage.replication == 1
            and storage.sequencer == "monolith"
            and not (chaos is not None and chaos.enabled)
        )
        name = "single" if plain else "sharded"
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown storage backend {name!r}; "
            f"available: {available_backends()}"
        )
    return factory(config)
