"""Leases and epoch fencing for the metalog sequencer.

The failure story of the sequencer follows Boki's metalog
reconfiguration: leadership is a **lease**, failover bumps an **epoch**,
and every mutating request carries the epoch its client last observed.
A request stamped with a stale epoch is rejected outright
(:class:`~repro.errors.FencedEpochError`) *before* it takes any effect,
so the client's retry — after refreshing its view — cannot duplicate
state.  This module holds the two client/controller-side pieces:

* :class:`Lease` — the timed lease the chaos controller uses to decide
  *when* a standby may take over (a real system would heartbeat; the
  simulation schedules the expiry explicitly);
* :class:`EpochView` — a worker's cached view of the current epoch, the
  thing a fence invalidates and "leader rediscovery" refreshes;
* :class:`LeasedBlock` — a contiguous seqnum range granted under one
  epoch by the ``leased-ranges`` sequencing strategy
  (:mod:`~repro.storageplane.sequencer`).  The epoch stamp is what a
  failover invalidates: a stale block's remainder is discarded and can
  never commit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageUnavailableError
from .metalog import Metalog


@dataclass
class Lease:
    """A leader lease: held from ``granted_at_ms`` for ``duration_ms``.

    The holder must renew before expiry; the chaos controller crashes
    the holder by simply not renewing, and promotes a standby once the
    lease has visibly expired (never before — fencing is only safe when
    the old leader can no longer act within its lease).
    """

    holder: str
    epoch: int
    granted_at_ms: float
    duration_ms: float

    @property
    def expires_at_ms(self) -> float:
        return self.granted_at_ms + self.duration_ms

    def expired(self, now_ms: float) -> bool:
        return now_ms >= self.expires_at_ms

    def renew(self, now_ms: float) -> "Lease":
        return Lease(self.holder, self.epoch, now_ms, self.duration_ms)


@dataclass(frozen=True)
class LeasedBlock:
    """A contiguous seqnum range leased under one sequencer epoch.

    Granted by :meth:`Metalog.assign_block` to the ``leased-ranges``
    sequencing strategy.  The epoch stamp is the fencing handle: a
    failover bumps the metalog's epoch, and any block carrying an older
    stamp is stale — its unconsumed remainder must be discarded, never
    committed.
    """

    start: int
    end: int
    epoch: int

    @property
    def size(self) -> int:
        return self.end - self.start + 1

    def contains(self, seqnum: int) -> bool:
        return self.start <= seqnum <= self.end


class EpochView:
    """Client-side cached epoch, refreshed on fence ("rediscovery").

    Workers stamp appends with ``view.epoch``; when a failover fences
    the stamp, the services layer charges a fixed rediscovery cost and
    calls :meth:`refresh` instead of walking the backoff schedule.
    """

    __slots__ = ("_metalog", "_epoch", "refresh_count")

    def __init__(self, metalog: Metalog):
        self._metalog = metalog
        self._epoch = metalog.epoch
        self.refresh_count = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def stale(self) -> bool:
        return self._epoch != self._metalog.epoch

    def refresh(self) -> int:
        """Re-read the current epoch from the (new) leader.

        Raises :class:`~repro.errors.StorageUnavailableError` while no
        leader holds the lease — rediscovery cannot succeed mid-window,
        and the caller falls back to the ordinary retry path.
        """
        if not self._metalog.leader_alive:
            raise StorageUnavailableError(
                "leader rediscovery failed: no metalog leader",
                service="log", op="rediscover",
            )
        self.refresh_count += 1
        self._epoch = self._metalog.epoch
        return self._epoch
