"""Hash-partitioned key-value store.

M independent :class:`~repro.store.kv.KVStore` partitions behind the
same API, with keys placed by a stable hash of the *base* object key
(version suffixes are stripped, so every version of an object — and its
single-version LATEST slot — lives with the object; see
:mod:`repro.storageplane.routing`).  This mirrors how DynamoDB actually
serves the paper's prototype: items are hash-partitioned, per-key
conditional updates are single-partition operations, and aggregate
throughput scales with partitions while per-key ordering is untouched.

At ``partitions=1`` every call lands on partition 0's plain ``KVStore``
and the behaviour (including key iteration order, which the
multi-version layer's ``list_versions`` scan observes) is bit-identical
to the unpartitioned store.  The :class:`~repro.store.versioned.
MultiVersionStore` and :class:`~repro.store.table.TableSnapshotReader`
layers work unchanged on top — they only use the duck-typed KV surface.

Fault tolerance (the storage-chaos PR): with ``durability=True`` each
partition keeps a redo **journal** (every mutation since the last
checkpoint) plus a **checkpoint** snapshot the GC refreshes.  Note the
protocol log records never carry values (log-optimality: Halfmoon logs
metadata, not data), so a lost partition cannot be rebuilt from the
shared log — the storage tier's own durability machinery is what a real
DynamoDB provides, and the journal models it.  ``crash_partition``
wipes a partition's state; operations routed there are rejected before
any effect (:class:`~repro.errors.PartitionUnavailableError`) until
``rebuild_partition`` replays checkpoint + journal.  Durability is off
by default and every default path stays bit-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import PartitionUnavailableError, StoreError
from ..store.kv import KVStore, StoredObject
from .routing import Router


class PartitionedKV:
    """``KVStore``-compatible facade over M hash-routed partitions."""

    def __init__(
        self,
        partitions: int = 1,
        placement: str = "hash",
        durability: bool = False,
    ):
        self.router = Router(partitions, placement)
        self._partitions = [KVStore() for _ in range(partitions)]
        self._storage_listeners: List[Callable[[int], None]] = []
        self._partition_listeners: List[Callable[[int, int], None]] = []
        for index, store in enumerate(self._partitions):
            store.add_storage_listener(
                lambda _bytes, i=index: self._on_partition_change(i)
            )
        self._durability = bool(durability)
        #: Redo journals + checkpoints, one per partition (durability).
        self._journals: Optional[List[List[Tuple]]] = (
            [[] for _ in range(partitions)] if durability else None
        )
        self._checkpoints: Optional[List[Dict[str, Tuple]]] = (
            [{} for _ in range(partitions)] if durability else None
        )
        self._down_partitions: Set[int] = set()
        self._degraded = False
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Placement / introspection
    # ------------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def partition_of(self, key: str) -> int:
        """Deterministic key → partition placement (by base object key)."""
        return self.router.route_store_key(key)

    def partition(self, index: int) -> KVStore:
        return self._partitions[index]

    def _store(self, key: str) -> KVStore:
        index = self.router.route_store_key(key)
        if self._degraded and index in self._down_partitions:
            raise PartitionUnavailableError(
                f"kv partition {index} is down (rebuild pending)",
                partition=index, service="store",
            )
        return self._partitions[index]

    def __contains__(self, key: str) -> bool:
        return key in self._store(key)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def keys(self) -> Iterator[str]:
        for store in self._partitions:
            yield from store.keys()

    def storage_bytes(self) -> int:
        return sum(p.storage_bytes() for p in self._partitions)

    def partition_bytes(self, index: int) -> int:
        return self._partitions[index].storage_bytes()

    @property
    def read_count(self) -> int:
        return sum(p.read_count for p in self._partitions)

    @property
    def write_count(self) -> int:
        return sum(p.write_count for p in self._partitions)

    @property
    def conditional_rejections(self) -> int:
        return sum(p.conditional_rejections for p in self._partitions)

    def partition_stats(self) -> List[dict]:
        return [
            {
                "partition": i,
                "keys": len(p),
                "bytes": p.storage_bytes(),
                "reads": p.read_count,
                "writes": p.write_count,
            }
            for i, p in enumerate(self._partitions)
        ]

    def add_storage_listener(self, listener: Callable[[int], None]) -> None:
        self._storage_listeners.append(listener)

    def add_partition_storage_listener(
        self, listener: Callable[[int, int], None]
    ) -> None:
        """Register ``listener(partition, partition_bytes)`` updates."""
        self._partition_listeners.append(listener)

    def _on_partition_change(self, index: int) -> None:
        if self._storage_listeners:
            total = self.storage_bytes()
            for listener in self._storage_listeners:
                listener(total)
        if self._partition_listeners:
            partition_bytes = self._partitions[index].storage_bytes()
            for listener in self._partition_listeners:
                listener(index, partition_bytes)

    # ------------------------------------------------------------------
    # Data plane (delegated per key)
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        return self._store(key).get(key)

    def get_optional(self, key: str, default: Any = None) -> Any:
        return self._store(key).get_optional(key, default)

    def get_with_version(self, key: str) -> Tuple[Any, Any]:
        return self._store(key).get_with_version(key)

    def put(self, key: str, value: Any, value_bytes: int = 0) -> None:
        self._store(key).put(key, value, value_bytes)
        if self._durability:
            self._journal(key, ("put", key, value, value_bytes))

    def conditional_put(
        self, key: str, value: Any, version: Any, value_bytes: int = 0
    ) -> bool:
        applied = self._store(key).conditional_put(
            key, value, version, value_bytes
        )
        if self._durability:
            # Journal the *attempt*: replay from the checkpoint evolves
            # the same state, so it re-decides identically.
            self._journal(key, ("cput", key, value, version, value_bytes))
        return applied

    def set_version(self, key: str, version: Any) -> None:
        self._store(key).set_version(key, version)
        if self._durability:
            self._journal(key, ("setv", key, version))

    def delete(self, key: str) -> bool:
        deleted = self._store(key).delete(key)
        if self._durability:
            self._journal(key, ("del", key))
        return deleted

    # ------------------------------------------------------------------
    # Durability: journal, checkpoint, crash, rebuild
    # ------------------------------------------------------------------

    @property
    def durability(self) -> bool:
        return self._durability

    @property
    def rebuilds(self) -> int:
        return self._rebuilds

    def down_partitions(self) -> Set[int]:
        return set(self._down_partitions)

    def _journal(self, key: str, entry: Tuple) -> None:
        self._journals[self.router.route_store_key(key)].append(entry)

    def journal_length(self, index: int) -> int:
        if self._journals is None:
            return 0
        return len(self._journals[index])

    def snapshot_partition(self, index: int) -> Dict[str, Tuple[Any, Any]]:
        """``{key: (value, version)}`` view for the consistency audit."""
        store = self._partitions[index]
        return {
            key: (obj.value, obj.version)
            for key, obj in store._data.items()
        }

    def checkpoint_partition(self, index: int) -> int:
        """Snapshot a partition's state and truncate its journal.

        The GC calls this on its cycle so journals stay bounded by the
        mutation rate between collections.  Returns the number of
        journal entries truncated.  Down partitions are skipped — their
        journal is exactly what the rebuild needs.
        """
        if not self._durability or index in self._down_partitions:
            return 0
        store = self._partitions[index]
        self._checkpoints[index] = {
            key: (obj.value, obj.version, obj.value_bytes)
            for key, obj in store._data.items()
        }
        truncated = len(self._journals[index])
        self._journals[index] = []
        return truncated

    def crash_partition(self, index: int) -> None:
        """Lose a partition: its in-memory state is wiped.

        Until ``rebuild_partition``, every operation routed here is
        rejected *before* taking effect, so protocol retries during the
        outage window cannot half-apply.
        """
        fresh = KVStore()
        fresh.add_storage_listener(
            lambda _bytes, i=index: self._on_partition_change(i)
        )
        self._partitions[index] = fresh
        self._down_partitions.add(index)
        self._degraded = True
        self._on_partition_change(index)

    def rebuild_partition(self, index: int) -> int:
        """Reconstruct a lost partition: checkpoint restore + redo replay.

        Returns the number of journal entries replayed.  Requires
        ``durability=True`` (armed by storage chaos); without it a lost
        partition's data would be unrecoverable, which is exactly why
        the real prototype delegates this tier to DynamoDB.
        """
        if not self._durability:
            raise StoreError(
                "rebuild_partition requires durability journaling"
            )
        store = self._partitions[index]
        for key, (value, version, value_bytes) in (
            self._checkpoints[index].items()
        ):
            store._data[key] = StoredObject(value, version, value_bytes)
            store._storage_bytes += value_bytes
        journal = self._journals[index]
        for entry in journal:
            op = entry[0]
            if op == "put":
                _, key, value, value_bytes = entry
                store.put(key, value, value_bytes)
            elif op == "cput":
                _, key, value, version, value_bytes = entry
                store.conditional_put(key, value, version, value_bytes)
            elif op == "setv":
                _, key, version = entry
                store.set_version(key, version)
            else:
                store.delete(entry[1])
        self._down_partitions.discard(index)
        self._degraded = bool(self._down_partitions)
        self._rebuilds += 1
        self._on_partition_change(index)
        return len(journal)
