"""Hash-partitioned key-value store.

M independent :class:`~repro.store.kv.KVStore` partitions behind the
same API, with keys placed by a stable hash of the *base* object key
(version suffixes are stripped, so every version of an object — and its
single-version LATEST slot — lives with the object; see
:mod:`repro.storageplane.routing`).  This mirrors how DynamoDB actually
serves the paper's prototype: items are hash-partitioned, per-key
conditional updates are single-partition operations, and aggregate
throughput scales with partitions while per-key ordering is untouched.

At ``partitions=1`` every call lands on partition 0's plain ``KVStore``
and the behaviour (including key iteration order, which the
multi-version layer's ``list_versions`` scan observes) is bit-identical
to the unpartitioned store.  The :class:`~repro.store.versioned.
MultiVersionStore` and :class:`~repro.store.table.TableSnapshotReader`
layers work unchanged on top — they only use the duck-typed KV surface.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Tuple

from ..store.kv import KVStore
from .routing import Router


class PartitionedKV:
    """``KVStore``-compatible facade over M hash-routed partitions."""

    def __init__(self, partitions: int = 1, placement: str = "hash"):
        self.router = Router(partitions, placement)
        self._partitions = [KVStore() for _ in range(partitions)]
        self._storage_listeners: List[Callable[[int], None]] = []
        self._partition_listeners: List[Callable[[int, int], None]] = []
        for index, store in enumerate(self._partitions):
            store.add_storage_listener(
                lambda _bytes, i=index: self._on_partition_change(i)
            )

    # ------------------------------------------------------------------
    # Placement / introspection
    # ------------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def partition_of(self, key: str) -> int:
        """Deterministic key → partition placement (by base object key)."""
        return self.router.route_store_key(key)

    def partition(self, index: int) -> KVStore:
        return self._partitions[index]

    def _store(self, key: str) -> KVStore:
        return self._partitions[self.partition_of(key)]

    def __contains__(self, key: str) -> bool:
        return key in self._store(key)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def keys(self) -> Iterator[str]:
        for store in self._partitions:
            yield from store.keys()

    def storage_bytes(self) -> int:
        return sum(p.storage_bytes() for p in self._partitions)

    def partition_bytes(self, index: int) -> int:
        return self._partitions[index].storage_bytes()

    @property
    def read_count(self) -> int:
        return sum(p.read_count for p in self._partitions)

    @property
    def write_count(self) -> int:
        return sum(p.write_count for p in self._partitions)

    @property
    def conditional_rejections(self) -> int:
        return sum(p.conditional_rejections for p in self._partitions)

    def partition_stats(self) -> List[dict]:
        return [
            {
                "partition": i,
                "keys": len(p),
                "bytes": p.storage_bytes(),
                "reads": p.read_count,
                "writes": p.write_count,
            }
            for i, p in enumerate(self._partitions)
        ]

    def add_storage_listener(self, listener: Callable[[int], None]) -> None:
        self._storage_listeners.append(listener)

    def add_partition_storage_listener(
        self, listener: Callable[[int, int], None]
    ) -> None:
        """Register ``listener(partition, partition_bytes)`` updates."""
        self._partition_listeners.append(listener)

    def _on_partition_change(self, index: int) -> None:
        if self._storage_listeners:
            total = self.storage_bytes()
            for listener in self._storage_listeners:
                listener(total)
        if self._partition_listeners:
            partition_bytes = self._partitions[index].storage_bytes()
            for listener in self._partition_listeners:
                listener(index, partition_bytes)

    # ------------------------------------------------------------------
    # Data plane (delegated per key)
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        return self._store(key).get(key)

    def get_optional(self, key: str, default: Any = None) -> Any:
        return self._store(key).get_optional(key, default)

    def get_with_version(self, key: str) -> Tuple[Any, Any]:
        return self._store(key).get_with_version(key)

    def put(self, key: str, value: Any, value_bytes: int = 0) -> None:
        self._store(key).put(key, value, value_bytes)

    def conditional_put(
        self, key: str, value: Any, version: Any, value_bytes: int = 0
    ) -> bool:
        return self._store(key).conditional_put(
            key, value, version, value_bytes
        )

    def set_version(self, key: str, version: Any) -> None:
        self._store(key).set_version(key, version)

    def delete(self, key: str) -> bool:
        return self._store(key).delete(key)
