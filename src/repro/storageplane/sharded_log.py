"""Sharded shared log: metalog sequencing over N per-tag index shards.

Splits the monolithic :class:`~repro.sharedlog.log.SharedLog` into the
two roles Boki's logging layer actually has:

* the :class:`~repro.storageplane.metalog.Metalog` assigns the global,
  monotone seqnums and owns record reference counts and per-shard trim
  frontiers;
* N :class:`LogShard` s hold the per-tag sub-stream indexes, routed
  deterministically by tag (:class:`~repro.storageplane.routing.Router`),
  and account the bytes of the record bodies homed on them.

Record bodies are stored once (keyed by seqnum) and homed on the shard
of the record's *first* tag; other tags of the same record may index it
from other shards, mirroring how Boki stores a record body once while
several tag indexes reference it.  A body is freed when the last shard
trims its last referencing stream — the metalog's refcount, not any
single shard, decides.

At ``shards=1`` every operation takes the same code path shape as
``SharedLog`` (same seqnums, same errors, same storage-byte
notifications in the same order), which the golden-run tests verify
bit-exactly; the split only becomes observable through per-shard
metrics, placement labels, and the DES per-shard queueing model.

Fault tolerance (the storage-chaos PR): every component is crashable.

* The sequencer leader can crash (``crash_sequencer``) and fail over at
  a new epoch (``failover_sequencer``); appends optionally carry the
  caller's cached epoch and are fenced when stale (see
  :mod:`~repro.storageplane.metalog` for the recovery semantics).
* At ``replication > 1`` each shard's indexes live on a
  :class:`~repro.storageplane.replication.ShardReplicaSet`; appends
  require a live write quorum (:class:`~repro.errors.QuorumLostError`
  otherwise), reads fail over via survivor promotion, and crashed
  replicas are re-replicated from survivors.
* At ``replication = 1`` a killed shard goes fully down
  (:class:`~repro.errors.StorageUnavailableError` window) until
  ``rebuild_shard`` reconstructs its sub-stream indexes from the global
  record directory plus the metalog's per-tag trim directory — the
  paper's rebuild-from-log recovery story, applied to storage.

All degraded-mode checks hang off one ``_degraded`` flag, so the
chaos-free hot paths pay a single attribute test.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..errors import (
    ConditionalAppendError,
    LogError,
    ProtocolError,
    QuorumLostError,
    StorageUnavailableError,
    TrimmedError,
)
from ..sharedlog.log import _Stream
from ..sharedlog.record import LogRecord
from .metalog import Metalog
from .routing import Router
from .sequencer import build_sequencer


class LogShard:
    """One storage shard: tag sub-stream indexes plus homed-body bytes."""

    __slots__ = ("shard_id", "streams", "storage_bytes", "append_count",
                 "trim_count", "homed_records")

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.streams: Dict[str, _Stream] = {}
        self.storage_bytes = 0
        self.append_count = 0
        self.trim_count = 0
        self.homed_records = 0

    def stream(self, tag: str) -> Optional[_Stream]:
        return self.streams.get(tag)

    def stream_or_create(self, tag: str) -> _Stream:
        stream = self.streams.get(tag)
        if stream is None:
            stream = self.streams[tag] = _Stream()
        return stream


class ShardedLog:
    """Drop-in ``SharedLog`` replacement routing tags across N shards."""

    def __init__(
        self,
        meta_bytes: int = 48,
        first_seqnum: int = 1,
        shards: int = 1,
        placement: str = "hash",
        replication: int = 1,
        sequencer: str = "monolith",
        sequencer_options: Optional[Any] = None,
    ):
        self._meta_bytes = int(meta_bytes)
        self.metalog = Metalog(first_seqnum, replication=replication)
        #: Sequencing strategy over the metalog (see
        #: :mod:`~repro.storageplane.sequencer`); ``monolith`` is a
        #: passthrough and bit-identical to calling the metalog directly.
        self.sequencer = build_sequencer(
            sequencer, self.metalog, sequencer_options
        )
        self.router = Router(shards, placement)
        #: Bound route method: placement is consulted on every append,
        #: read, and trim, so skip the extra dispatch layer.
        self._route = self.router.route
        self._shards = [LogShard(i) for i in range(shards)]
        self._records: Dict[int, LogRecord] = {}
        self._home: Dict[int, int] = {}
        self._storage_bytes = 0
        self._append_count = 0
        self._trim_count = 0
        self._storage_listeners: List[Callable[[int], None]] = []
        self._shard_listeners: List[Callable[[int, int], None]] = []
        self.replication = int(replication)
        self._replica_sets = None
        if replication > 1:
            from .replication import ShardReplicaSet
            self._replica_sets = [
                ShardReplicaSet(shard, replication) for shard in self._shards
            ]
        #: Degraded-mode bookkeeping; ``_degraded`` is the single flag
        #: the hot paths test.  ``_down_shards`` — no live replica at all
        #: (reads and writes rejected); ``_no_quorum`` — a minority of
        #: replicas left (writes rejected, reads served by survivors).
        self._down_shards: Set[int] = set()
        self._no_quorum: Set[int] = set()
        self._degraded = False
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Placement / introspection
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, tag: str) -> int:
        """Deterministic tag → shard placement."""
        return self._route(tag)

    def _stream_of(self, tag: str) -> Optional[_Stream]:
        """Hot-path ``shard_of`` + ``stream`` in one memo lookup: the
        router memo and the shard's stream table are consulted directly,
        with the full routing only paid on a tag's first sighting."""
        shard_id = self.router._routes.get(tag)
        if shard_id is None:
            shard_id = self._route(tag)
        if self._degraded and shard_id in self._down_shards:
            raise StorageUnavailableError(
                f"log shard {shard_id} has no live replica",
                service="log", op="read",
            )
        return self._shards[shard_id].streams.get(tag)

    def _check_writable(self, tags: Sequence[str], op: str) -> None:
        """Reject an append touching any shard that cannot take writes.

        Raised before the sequencer assigns, so a rejected append has no
        effect anywhere.  Reads only require one live replica; writes
        additionally require a quorum at R>1.
        """
        if not self.metalog.leader_alive:
            raise StorageUnavailableError(
                "metalog sequencer is down", service="log", op=op,
            )
        for tag in tags:
            shard_id = self.router._routes.get(tag)
            if shard_id is None:
                shard_id = self._route(tag)
            if shard_id in self._down_shards:
                raise StorageUnavailableError(
                    f"log shard {shard_id} has no live replica",
                    service="log", op=op,
                )
            if shard_id in self._no_quorum:
                raise QuorumLostError(
                    f"log shard {shard_id} lost its write quorum",
                    shard=shard_id, service="log", op=op,
                )

    def shard(self, shard_id: int) -> LogShard:
        return self._shards[shard_id]

    @property
    def next_seqnum(self) -> int:
        return self.sequencer.next_seqnum

    @property
    def tail_seqnum(self) -> int:
        return self.sequencer.tail_seqnum

    @property
    def append_count(self) -> int:
        return self._append_count

    @property
    def trim_count(self) -> int:
        return self._trim_count

    @property
    def live_record_count(self) -> int:
        return len(self._records)

    def storage_bytes(self) -> int:
        return self._storage_bytes

    def shard_bytes(self, shard_id: int) -> int:
        return self._shards[shard_id].storage_bytes

    def shard_trim_frontiers(self) -> Dict[int, int]:
        """Per-shard trim frontier, computed by the metalog."""
        return self.metalog.frontiers()

    def shard_stats(self) -> List[Dict[str, int]]:
        return [
            {
                "shard": s.shard_id,
                "streams": len(s.streams),
                "homed_records": s.homed_records,
                "bytes": s.storage_bytes,
                "appends": s.append_count,
                "trimmed": s.trim_count,
                "trim_frontier": self.metalog.shard_frontier(s.shard_id),
            }
            for s in self._shards
        ]

    def add_storage_listener(self, listener: Callable[[int], None]) -> None:
        self._storage_listeners.append(listener)

    def add_shard_storage_listener(
        self, listener: Callable[[int, int], None]
    ) -> None:
        """Register ``listener(shard_id, shard_bytes)`` per-shard updates."""
        self._shard_listeners.append(listener)

    def _notify_storage(self, shard_id: int) -> None:
        for listener in self._storage_listeners:
            listener(self._storage_bytes)
        if self._shard_listeners:
            shard_bytes = self._shards[shard_id].storage_bytes
            for shard_listener in self._shard_listeners:
                shard_listener(shard_id, shard_bytes)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def append(
        self,
        tags: Sequence[str],
        data: Mapping[str, Any],
        payload_bytes: int = 0,
        epoch: Optional[int] = None,
    ) -> int:
        if not tags:
            raise LogError("append requires at least one tag")
        # Every rejection happens *before* the sequencer assigns — a
        # fenced or degraded append leaves no allocation in flight, so
        # the caller's retry cannot duplicate a seqnum.
        if epoch is not None:
            self.metalog.check_epoch(epoch, op="append")
        if self._degraded:
            self._check_writable(tags, op="append")
        record = LogRecord(
            seqnum=self.sequencer.assign(),
            tags=tuple(tags),
            data=data,
            payload_bytes=int(payload_bytes),
        )
        self._install(record)
        return record.seqnum

    def cond_append(
        self,
        tags: Sequence[str],
        data: Mapping[str, Any],
        cond_tag: str,
        cond_pos: int,
        payload_bytes: int = 0,
        epoch: Optional[int] = None,
    ) -> int:
        """Conditional append, serialized through the metalog.

        The offset check consults the shard owning ``cond_tag``, but the
        outcome is decided at the sequencer: whichever peer's append is
        sequenced first occupies the offset, and the loser observes the
        winner's seqnum — regardless of where the records' other tags
        are placed.
        """
        if cond_tag not in tags:
            raise LogError("cond_tag must be one of the record's tags")
        if epoch is not None:
            self.metalog.check_epoch(epoch, op="cond_append")
        if self._degraded:
            self._check_writable(tags, op="cond_append")
        stream = self._stream_of(cond_tag)
        next_offset = stream.next_offset if stream is not None else 0
        if next_offset == cond_pos:
            return self.append(tags, data, payload_bytes=payload_bytes)
        if next_offset > cond_pos:
            existing = self._record_at_offset(cond_tag, cond_pos)
            raise ConditionalAppendError(
                f"offset {cond_pos} of stream {cond_tag!r} already taken "
                f"by seqnum {existing.seqnum}",
                existing_seqnum=existing.seqnum,
            )
        raise ProtocolError(
            f"cond_append at offset {cond_pos} of stream {cond_tag!r}, "
            f"but the stream only has {next_offset} records: the caller "
            "skipped a step"
        )

    def _record_at_offset(self, tag: str, offset: int) -> LogRecord:
        stream = self._stream_of(tag)
        if stream is None:
            raise LogError(f"unknown stream {tag!r}")
        index = stream.index_of_offset(offset)
        if index < 0:
            raise TrimmedError(
                f"offset {offset} of stream {tag!r} was garbage collected"
            )
        if index >= len(stream.seqnums):
            raise LogError(f"offset {offset} of stream {tag!r} out of range")
        return self._records[stream.seqnums[index]]

    def _install(self, record: LogRecord) -> None:
        shards = self._shards
        route = self._route
        # Hot path: consult the router's memo directly and only pay the
        # method dispatch (and CRC) on the first sighting of a tag.
        routes = self.router._routes
        replica_sets = self._replica_sets
        tags = record.tags
        seqnum = record.seqnum
        first = tags[0]
        home_id = routes.get(first)
        if home_id is None:
            home_id = route(first)
        home = shards[home_id]
        self._records[seqnum] = record
        self._home[seqnum] = home_id
        # Inlined ``metalog.add_refs`` / ``_Stream.append``: one-line
        # methods cost more to dispatch than to run at this call rate.
        self.metalog._tag_refs[seqnum] = len(tags)
        if len(tags) == 1:
            # The dominant shape (per-instance step records carry one
            # tag): reuse the home route, skip the loop machinery.
            streams = home.streams
            stream = streams.get(first)
            if stream is None:
                stream = streams[first] = _Stream()
            stream.seqnums.append(seqnum)
            if replica_sets is not None:
                replica_sets[home_id].mirror_append(first, seqnum)
        else:
            for tag in tags:
                shard_id = routes.get(tag)
                if shard_id is None:
                    shard_id = route(tag)
                streams = shards[shard_id].streams
                stream = streams.get(tag)
                if stream is None:
                    stream = streams[tag] = _Stream()
                stream.seqnums.append(seqnum)
                if replica_sets is not None:
                    replica_sets[shard_id].mirror_append(tag, seqnum)
        self.sequencer.commit(seqnum)
        size = self._meta_bytes + record.payload_bytes
        self._storage_bytes += size
        home.storage_bytes += size
        home.homed_records += 1
        home.append_count += 1
        self._append_count += 1
        self._notify_storage(home.shard_id)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_prev(self, tag: str, max_seqnum: int) -> Optional[LogRecord]:
        stream = self._stream_of(tag)
        if stream is None:
            return None
        index = bisect.bisect_right(stream.seqnums, max_seqnum) - 1
        if index >= 0:
            return self._records[stream.seqnums[index]]
        if stream.trimmed_count > 0:
            raise TrimmedError(
                f"read_prev(tag={tag!r}, max_seqnum={max_seqnum}) targets "
                "only garbage-collected records"
            )
        return None

    def read_next(self, tag: str, min_seqnum: int) -> Optional[LogRecord]:
        stream = self._stream_of(tag)
        if stream is None:
            return None
        index = bisect.bisect_left(stream.seqnums, min_seqnum)
        if index < len(stream.seqnums):
            return self._records[stream.seqnums[index]]
        return None

    def read_stream(self, tag: str, min_seqnum: int = 0) -> List[LogRecord]:
        stream = self._stream_of(tag)
        if stream is None:
            return []
        index = bisect.bisect_left(stream.seqnums, min_seqnum)
        return [self._records[s] for s in stream.seqnums[index:]]

    def stream_length(self, tag: str) -> int:
        stream = self._stream_of(tag)
        return stream.next_offset if stream is not None else 0

    def stream_tags(self) -> List[str]:
        """All stream tags, shard-major in shard insertion order.

        With one shard this is exactly the global insertion order the
        monolithic log reports.
        """
        tags: List[str] = []
        for shard in self._shards:
            tags.extend(shard.streams)
        return tags

    # ------------------------------------------------------------------
    # Trim (garbage collection support)
    # ------------------------------------------------------------------

    def trim(self, tag: str, seqnum: int) -> int:
        """Trim ``tag``'s stream on its shard only.

        The owning shard's trim frontier advances in the metalog; other
        shards' streams, frontiers, and homed bodies are untouched
        unless this release was the record's last reference.
        """
        shard_id = self.shard_of(tag)
        if self._degraded and shard_id in self._down_shards:
            # Conservative under-trim: the GC retries on its next cycle
            # once the shard is rebuilt; never crash the collector.
            return 0
        shard = self._shards[shard_id]
        stream = shard.stream(tag)
        if stream is None:
            return 0
        cut = bisect.bisect_right(stream.seqnums, seqnum)
        if cut == 0:
            return 0
        removed = stream.seqnums[:cut]
        del stream.seqnums[:cut]
        stream.trimmed_count += len(removed)
        shard.trim_count += len(removed)
        if self._replica_sets is not None:
            self._replica_sets[shard_id].mirror_trim(tag, cut)
        self.metalog.note_trim(shard.shard_id, removed[-1])
        self.metalog.note_stream_trim(tag, len(removed), removed[-1])
        freed_home: Optional[int] = None
        for sn in removed:
            if self.metalog.release_ref(sn):
                record = self._records.pop(sn)
                home_id = self._home.pop(sn)
                size = self._meta_bytes + record.payload_bytes
                home = self._shards[home_id]
                self._storage_bytes -= size
                home.storage_bytes -= size
                home.homed_records -= 1
                self._trim_count += 1
                freed_home = home_id
        # One notification per trim call, as the monolithic log does;
        # report the shard whose bytes changed (the trimming shard when
        # only indexes moved).
        self._notify_storage(
            shard.shard_id if freed_home is None else freed_home
        )
        return len(removed)

    # ------------------------------------------------------------------
    # Storage-plane failures and recovery
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.metalog.epoch

    @property
    def rebuilds(self) -> int:
        return self._rebuilds

    def down_shards(self) -> Set[int]:
        return set(self._down_shards)

    def quorum_lost_shards(self) -> Set[int]:
        return set(self._no_quorum)

    def replica_set(self, shard_id: int):
        if self._replica_sets is None:
            return None
        return self._replica_sets[shard_id]

    def _refresh_degraded(self) -> None:
        self._degraded = bool(
            self._down_shards or self._no_quorum
            or not self.metalog.leader_alive
        )

    def crash_sequencer(self) -> None:
        """Kill the metalog leader; appends fail until failover."""
        self.metalog.crash_leader()
        self._refresh_degraded()

    def failover_sequencer(self) -> int:
        """Promote a standby sequencer; returns the new (fencing) epoch.

        The sequencing strategy runs its pre-failover hook first: the
        new leader reconstructs the committed tail from what the shards
        actually installed, so a batched strategy flushes its pending
        commits — otherwise the R=1 cursor reset would re-issue seqnums
        of already-installed records.
        """
        self.sequencer.on_failover()
        epoch = self.metalog.failover()
        self._refresh_degraded()
        return epoch

    def crash_shard_replica(
        self, shard_id: int, replica: Optional[int] = None
    ) -> Optional[int]:
        """Kill one replica of a shard (the serving one by default).

        At ``replication > 1`` a surviving copy is promoted to serve
        reads; losing a majority blocks writes
        (:class:`~repro.errors.QuorumLostError`), losing every replica
        takes the shard fully down.  At ``replication = 1`` the shard's
        index state is wiped and the shard goes down until
        ``rebuild_shard`` — record *bodies* (the durable log underneath)
        survive in the record directory.  Returns the replica index
        killed, or ``None`` for an R=1 whole-shard kill.
        """
        if self._replica_sets is not None:
            rs = self._replica_sets[shard_id]
            killed = rs.crash(replica)
            if rs.all_dead:
                self._down_shards.add(shard_id)
                self._no_quorum.discard(shard_id)
            elif not rs.has_quorum:
                self._no_quorum.add(shard_id)
            self._refresh_degraded()
            return killed
        self._shards[shard_id].streams = {}
        self._down_shards.add(shard_id)
        self._refresh_degraded()
        return None

    def repair_shard_replica(self, shard_id: int, replica: int) -> bool:
        """Re-replicate a crashed copy from a survivor (R>1 only)."""
        if self._replica_sets is None:
            raise LogError("repair_shard_replica requires replication > 1")
        rs = self._replica_sets[shard_id]
        ok = rs.repair(replica)
        if ok:
            if rs.has_quorum:
                self._no_quorum.discard(shard_id)
            self._down_shards.discard(shard_id)
            self._refresh_degraded()
        return ok

    def rebuild_shard(self, shard_id: int) -> int:
        """Reconstruct a down shard's sub-stream indexes from the log.

        This is the paper's rebuild-from-log recovery applied to the
        storage tier: the record directory (durable bodies) is replayed
        forward and filtered through the metalog's per-tag trim
        directory, so garbage-collected prefixes stay collected and
        every surviving stream keeps its exact offset origin
        (``trimmed_count``) — which the ``logCondAppend`` races depend
        on.  Returns the number of streams reconstructed.
        """
        shard = self._shards[shard_id]
        streams: Dict[str, _Stream] = {}
        stream_trims = self.metalog.stream_trims()
        # Fully-trimmed streams must survive as empty streams with their
        # offset origin intact, or the next cond_append would see a
        # freshly-zeroed stream and mis-serialize.
        for tag, (trimmed, _highest) in stream_trims.items():
            if self.shard_of(tag) != shard_id:
                continue
            stream = streams[tag] = _Stream()
            stream.trimmed_count = trimmed
        for seqnum in sorted(self._records):
            record = self._records[seqnum]
            for tag in record.tags:
                if self.shard_of(tag) != shard_id:
                    continue
                stream = streams.get(tag)
                if stream is None:
                    stream = streams[tag] = _Stream()
                if seqnum > stream_trims.get(tag, (0, 0))[1]:
                    stream.append(seqnum)
        shard.streams = streams
        if self._replica_sets is not None:
            rs = self._replica_sets[shard_id]
            rs.copies[0] = streams
            rs.primary = 0
            rs.live = [True] + [False] * (rs.replication - 1)
            for i in range(1, rs.replication):
                rs.repair(i)
        self._down_shards.discard(shard_id)
        self._no_quorum.discard(shard_id)
        self._refresh_degraded()
        self._rebuilds += 1
        return len(streams)
