"""The pluggable storage-plane interface.

Halfmoon's prototype runs on Boki, whose "shared log" is really a
*metalog* (a global sequencer ordering records) in front of a set of
storage shards, with DynamoDB as an interchangeable external store —
AFT makes the same point by interposing one shim interface over
swappable backends.  This module defines that seam for the
reproduction: :class:`StoragePlane` is the only storage type the
runtime (:class:`~repro.runtime.services.ServiceBackend`) binds to, and
concrete planes — single-node, sharded, or future external backends —
are selected by :class:`~repro.config.StorageSizeConfig` and built by
:func:`repro.storageplane.plane.build_storage_plane`.

The contract deliberately re-uses the *duck types* of the seed
substrates rather than wrapping every call:

* :attr:`StoragePlane.log` exposes the five log APIs of the paper's
  Figure 3 (``append`` / ``read_prev`` / ``read_next`` / ``trim`` /
  ``cond_append``) plus the introspection the GC and switch manager
  use;
* :attr:`StoragePlane.kv` exposes the plain-KV-plus-conditional-update
  surface of :class:`~repro.store.kv.KVStore`;
* :attr:`StoragePlane.mv` is the multi-version layer over ``kv``.

What the interface *adds* is placement: :meth:`log_shard_of` and
:meth:`kv_partition_of` name the shard/partition an operation lands on,
so the service layer can label latency metrics and trace spans and the
DES can queue the operation at the right per-shard station.  A
single-node plane routes everything to shard/partition 0 and reports
``labelled = False`` so nothing downstream changes shape — that
configuration is bit-identical to the pre-plane code and is the
paper-faithful one (the prototype's logging layer is small enough that
the paper treats it as a single service).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict

# Re-exported so protocol code can reference the genesis version marker
# without importing a concrete store class (see repro.protocols.transitional).
from ..store.kv import GENESIS_VERSION  # noqa: F401


class StoragePlane(ABC):
    """One storage deployment: a log plane plus an external-state plane."""

    #: Registry name of the backend that built this plane.
    name: str = "abstract"

    # -- substrates ------------------------------------------------------

    @property
    @abstractmethod
    def log(self) -> Any:
        """Shared-log substrate (``SharedLog``-compatible duck type)."""

    @property
    @abstractmethod
    def kv(self) -> Any:
        """External store substrate (``KVStore``-compatible duck type)."""

    @property
    @abstractmethod
    def mv(self) -> Any:
        """Multi-version layer over :attr:`kv`."""

    # -- placement -------------------------------------------------------

    @property
    def num_log_shards(self) -> int:
        return 1

    @property
    def num_kv_partitions(self) -> int:
        return 1

    def log_shard_of(self, tag: str) -> int:
        """The log shard whose sub-stream index serves ``tag``."""
        return 0

    def kv_partition_of(self, key: str) -> int:
        """The KV partition holding ``key`` (versions follow base keys)."""
        return 0

    @property
    def labelled(self) -> bool:
        """Whether ops should carry ``shard=`` / ``partition=`` labels.

        Single-node planes return ``False`` so metric keys, span
        attributes, and report shapes stay bit-identical to the
        pre-plane code.
        """
        return False

    # -- introspection ---------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Flat snapshot of the plane topology (registry probe)."""
        return {
            "backend": self.name,
            "log_shards": self.num_log_shards,
            "kv_partitions": self.num_kv_partitions,
        }
