"""Deterministic placement: tag → log shard, key → KV partition.

Sharding only helps if placement is *stable*: the same tag must land on
the same shard in every run (Python's builtin ``hash`` is salted per
process, so it is useless here) and across both the substrate and the
DES contention model (which must queue an append at the same station the
substrate charged it to).  We use CRC-32 of the UTF-8 bytes — cheap,
seedless, and identical on every platform.

Versioned store keys (``"key@version"``) are routed by the *base* key so
every version of an object — and its single-version LATEST slot — lives
in one partition, which is what lets a future real backend serve a
``DBWrite`` + version install as a single-partition transaction.

Two placement policies are provided:

* ``hash`` (default): CRC-32 modulo the shard count.  Stateless, so any
  component can compute a route without talking to the router.
* ``first_seen``: round-robin in first-routing order.  Stateful but
  deterministic (direct mode and the DES route in the same order for the
  same seed); spreads a small number of hot streams perfectly evenly,
  which the hash policy only achieves in expectation.
"""

from __future__ import annotations

import zlib
from typing import Dict

from ..errors import ConfigError

#: Separator of the multi-version composite store keys
#: (mirrors :data:`repro.store.versioned._SEPARATOR`).
_VERSION_SEPARATOR = "@"

PLACEMENT_POLICIES = ("hash", "first_seen")


def stable_hash(text: str) -> int:
    """Process-independent 32-bit hash of a routing key."""
    return zlib.crc32(text.encode("utf-8"))


def base_key(key: str) -> str:
    """Strip a version suffix so all versions of an object co-locate."""
    return key.partition(_VERSION_SEPARATOR)[0]


class Router:
    """Maps routing keys onto ``[0, shards)`` under a placement policy."""

    def __init__(self, shards: int, placement: str = "hash"):
        if shards <= 0:
            raise ConfigError("shard count must be positive")
        if placement not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"unknown placement policy {placement!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        self.shards = shards
        self.placement = placement
        self._first_seen: Dict[str, int] = {}
        #: Route memo.  Placement is pure (``hash``) or append-only
        #: (``first_seen``), so a computed route never changes and the
        #: CRC can be skipped on every repeat routing of a key.  The key
        #: universe is bounded by the workload (tags + store keys), so
        #: the memo is too.
        self._routes: Dict[str, int] = {}
        self._store_routes: Dict[str, int] = {}

    def route(self, key: str) -> int:
        shard = self._routes.get(key)
        if shard is not None:
            return shard
        if self.shards == 1:
            shard = 0
        elif self.placement == "hash":
            shard = stable_hash(key) % self.shards
        else:
            shard = self._first_seen.get(key)
            if shard is None:
                shard = len(self._first_seen) % self.shards
                self._first_seen[key] = shard
        self._routes[key] = shard
        return shard

    def route_store_key(self, key: str) -> int:
        """Route a store key by its base object key."""
        shard = self._store_routes.get(key)
        if shard is None:
            shard = self._store_routes[key] = self.route(base_key(key))
        return shard
