"""Storage-plane consistency checker.

Invariant audit run after a chaos cell has healed: whatever was killed
and recovered, the plane must end in a state indistinguishable (to the
protocols) from one that never failed.  The checks mirror the
guarantees each recovery mechanism claims:

* **stream integrity** — every sub-stream's seqnums are strictly
  increasing, resolve in the record directory, lie above the shard's
  trim frontier, and the stream's offset arithmetic is intact (a
  rebuild that forgot ``trimmed_count`` would corrupt every later
  ``logCondAppend``);
* **reference counts** — the metalog's per-record refcount equals the
  number of sub-streams actually indexing the record: a crash between
  install steps must never leak or double-free a reference;
* **replica agreement** — at R>1, all live copies of a shard hold
  identical indexes once repairs settle;
* **liveness** — no shard or partition is still down, no quorum still
  lost, the sequencer leader is alive;
* **partition rebuild fidelity** — compared separately via
  :func:`diff_partition_snapshots` against a pre-crash snapshot.

Returns a report dict; ``report["anomalies"]`` empty ⇔ consistent.
"""

from __future__ import annotations

from typing import Any, Dict, List


def audit_sharded_log(log) -> List[str]:
    """Invariant check of a :class:`ShardedLog` + its metalog."""
    anomalies: List[str] = []
    metalog = log.metalog
    refcounts = metalog.reference_counts()
    memberships: Dict[int, int] = {}
    for shard_id in range(log.num_shards):
        shard = log.shard(shard_id)
        for tag, stream in shard.streams.items():
            seqs = stream.seqnums
            if any(b <= a for a, b in zip(seqs, seqs[1:])):
                anomalies.append(
                    f"stream {tag!r} (shard {shard_id}): seqnums not "
                    "strictly increasing"
                )
            if stream.next_offset != stream.trimmed_count + len(seqs):
                anomalies.append(
                    f"stream {tag!r} (shard {shard_id}): offset origin "
                    "inconsistent"
                )
            for sn in seqs:
                memberships[sn] = memberships.get(sn, 0) + 1
                if sn not in log._records:
                    anomalies.append(
                        f"stream {tag!r} (shard {shard_id}): seqnum {sn} "
                        "missing from record directory"
                    )
            trimmed, highest = metalog.stream_trim(tag)
            if seqs and seqs[0] <= highest:
                anomalies.append(
                    f"stream {tag!r} (shard {shard_id}): head {seqs[0]} "
                    f"at or below its trim record {highest} — a rebuild "
                    "resurrected garbage-collected records"
                )
            if stream.trimmed_count < trimmed:
                anomalies.append(
                    f"stream {tag!r} (shard {shard_id}): offset origin "
                    f"{stream.trimmed_count} behind the metalog trim "
                    f"directory {trimmed}"
                )
        rs = log.replica_set(shard_id)
        if rs is not None:
            div = rs.divergence()
            if div:
                anomalies.append(
                    f"shard {shard_id}: {div} replica divergences"
                )
            if not rs.has_quorum:
                anomalies.append(f"shard {shard_id}: quorum still lost")
    for sn, refs in refcounts.items():
        seen = memberships.get(sn, 0)
        if seen != refs:
            anomalies.append(
                f"seqnum {sn}: metalog refcount {refs} != "
                f"{seen} live stream memberships"
            )
    for sn in memberships:
        if sn not in refcounts:
            anomalies.append(
                f"seqnum {sn}: indexed by a stream but has no refcount"
            )
    if log.down_shards():
        anomalies.append(f"shards still down: {sorted(log.down_shards())}")
    if not metalog.leader_alive:
        anomalies.append("metalog leader still down")
    if metalog.next_seqnum <= metalog.committed_tail:
        anomalies.append(
            f"allocation cursor {metalog.next_seqnum} at or below the "
            f"committed tail {metalog.committed_tail}"
        )
    return anomalies


def audit_partitioned_kv(kv) -> List[str]:
    anomalies: List[str] = []
    if kv.down_partitions():
        anomalies.append(
            f"partitions still down: {sorted(kv.down_partitions())}"
        )
    for index in range(kv.num_partitions):
        store = kv.partition(index)
        actual = sum(obj.value_bytes for obj in store._data.values())
        if store.storage_bytes() != actual:
            anomalies.append(
                f"partition {index}: byte accounting "
                f"{store.storage_bytes()} != {actual}"
            )
    return anomalies


def diff_partition_snapshots(
    before: Dict[str, Any], after: Dict[str, Any]
) -> List[str]:
    """Differences between pre-crash and post-rebuild partition state.

    Empty ⇔ the rebuild restored every key, value, and version exactly.
    """
    diffs: List[str] = []
    for key in before.keys() - after.keys():
        diffs.append(f"key {key!r} lost by rebuild")
    for key in after.keys() - before.keys():
        diffs.append(f"key {key!r} resurrected by rebuild")
    for key in before.keys() & after.keys():
        if before[key] != after[key]:
            diffs.append(
                f"key {key!r} diverged: {before[key]!r} -> {after[key]!r}"
            )
    return diffs


def storage_consistency_report(plane) -> Dict[str, Any]:
    """Full-plane invariant audit; ``anomalies == []`` ⇔ consistent."""
    anomalies: List[str] = []
    checked: Dict[str, Any] = {"backend": plane.describe()["backend"]}
    log = plane.log
    if hasattr(log, "metalog"):
        log_anomalies = audit_sharded_log(log)
        anomalies.extend(log_anomalies)
        checked["log_shards"] = log.num_shards
        checked["replication"] = log.replication
        checked["epoch"] = log.epoch
        checked["live_records"] = log.live_record_count
    kv = plane.kv
    if hasattr(kv, "down_partitions"):
        anomalies.extend(audit_partitioned_kv(kv))
        checked["kv_partitions"] = kv.num_partitions
        checked["kv_rebuilds"] = kv.rebuilds
    return {"anomalies": anomalies, "checked": checked}
