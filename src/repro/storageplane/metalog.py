"""The metalog: global sequencer and record directory of the log plane.

In Boki the total order of the shared log is not produced by the storage
shards — a *metalog* (one sequencer appending to its own internal log)
assigns every record a position, and the shards merely materialise the
per-tag indexes and hold record bodies.  This class is that authority
for the sharded plane:

* it hands out the monotone seqnums (``assign``), so the global total
  order exists *before* any shard is touched — which is exactly why two
  concurrent ``logCondAppend`` calls to the same tag serialize here even
  when their other tags live on different shards;
* it tracks, per record, how many live sub-stream references remain
  (``add_refs`` / ``release_ref``), so a body is freed exactly once no
  matter which shards trim which tags — storage is accounted once per
  record, as in Boki;
* it records the per-shard trim frontier (``note_trim`` /
  ``shard_frontier``): the highest seqnum each shard has trimmed.  The
  GC computes its reclamation horizon per shard from these, and the
  regression tests pin the invariant that a trim on shard A can never
  advance shard B's frontier (or drop its records).

Fault tolerance (the storage-chaos PR) adds the sequencer's failure
story on top, mirroring Boki's metalog reconfiguration:

* The sequencer is a **leased leader** over a replicated state machine.
  Everything *committed* — refcounts, per-shard trim frontiers, the
  per-tag trim directory — models state already appended to the internal
  metalog log, so it survives any failover unconditionally.
* The only volatile piece is the allocation cursor for seqnums handed
  out but not yet installed on shards ("in-flight").  ``failover``
  promotes a standby at a new **epoch**:

  - at ``replication > 1`` the assignments were mirrored to standbys, so
    the new leader resumes at the exact ``next_seqnum`` — in-flight
    allocations are *recovered* and their installs land unchanged;
  - at ``replication == 1`` the assignments died with the leader, so the
    new leader resumes from ``committed_tail + 1`` — in-flight
    allocations are *invalidated*.  Re-issuing those numbers is safe
    because any install stamped with the old epoch is fenced.

* Every install/assign may carry the client's cached ``epoch``; a stale
  epoch raises :class:`~repro.errors.FencedEpochError` **before** any
  state changes, which is what makes retry-after-rediscovery duplicate-
  free.  ``epoch=None`` (the default everywhere) bypasses the check so
  the chaos-free paths stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import FencedEpochError, LogError, StorageUnavailableError


class Metalog:
    """Sequencer + record reference directory for a sharded log."""

    def __init__(self, first_seqnum: int = 1, replication: int = 1):
        self._first_seqnum = int(first_seqnum)
        self._next_seqnum = int(first_seqnum)
        self._tag_refs: Dict[int, int] = {}
        self._trim_frontier: Dict[int, int] = {}
        # Committed (replicated) state: the highest seqnum whose install
        # reached the shards, and the per-tag trim directory (tag -> the
        # highest trimmed seqnum of that tag's sub-stream).  Both model
        # records in the internal metalog log, so failover preserves them.
        self._committed_tail = int(first_seqnum) - 1
        self._stream_trims: Dict[str, Tuple[int, int]] = {}
        self._replication = int(replication)
        self._epoch = 1
        self._leader_alive = True
        self._failovers = 0
        self._fenced_appends = 0
        self._invalidated_allocations = 0

    # -- sequencing ------------------------------------------------------

    @property
    def next_seqnum(self) -> int:
        return self._next_seqnum

    @property
    def tail_seqnum(self) -> int:
        return self._next_seqnum - 1

    def assign(self, epoch: Optional[int] = None) -> int:
        """Allocate the next position in the global total order."""
        if epoch is not None:
            self.check_epoch(epoch, op="assign")
        seqnum = self._next_seqnum
        self._next_seqnum += 1
        return seqnum

    def assign_block(self, count: int, epoch: Optional[int] = None) -> int:
        """Allocate ``count`` contiguous positions; returns the first.

        One sequencer round trip leases a whole block (the
        ``leased-ranges`` strategy); the block's consumer stamps it with
        the current epoch, and a later failover invalidates whatever
        remains unconsumed — at ``replication == 1`` the reset cursor
        reclaims those numbers (counted in ``invalidated_allocations``),
        at higher replication they stay a hole the committed tail
        advances over.
        """
        if count < 1:
            raise LogError(f"block size must be >= 1, got {count}")
        if epoch is not None:
            self.check_epoch(epoch, op="assign_block")
        start = self._next_seqnum
        self._next_seqnum += count
        return start

    def commit(self, seqnum: int) -> None:
        """Mark an assigned seqnum as installed (replicated metalog entry).

        Installs are applied in assignment order by the sharded log, so
        the committed tail only ever moves forward.
        """
        if seqnum > self._committed_tail:
            self._committed_tail = seqnum

    @property
    def committed_tail(self) -> int:
        return self._committed_tail

    # -- leader lease / epoch fencing ------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def leader_alive(self) -> bool:
        return self._leader_alive

    @property
    def failovers(self) -> int:
        return self._failovers

    @property
    def fenced_appends(self) -> int:
        return self._fenced_appends

    @property
    def invalidated_allocations(self) -> int:
        return self._invalidated_allocations

    def check_epoch(self, epoch: Optional[int], op: str = "append") -> None:
        """Fence requests from crashed/stale leadership views.

        ``None`` bypasses the check (chaos-free paths); otherwise the
        request must carry the current epoch and the leader must hold a
        live lease.  Raised *before* any effect, so the caller's retry
        cannot duplicate state.
        """
        if epoch is None:
            return
        if not self._leader_alive:
            raise StorageUnavailableError(
                "metalog sequencer is down (no leader holds the lease)",
                service="log", op=op,
            )
        if epoch != self._epoch:
            self._fenced_appends += 1
            raise FencedEpochError(
                f"epoch {epoch} fenced by current epoch {self._epoch}",
                stale_epoch=int(epoch), current_epoch=self._epoch,
                service="log", op=op,
            )

    def crash_leader(self) -> None:
        """Kill the current sequencer leader; its lease stops renewing.

        Until ``failover`` promotes a standby, epoch-checked operations
        raise :class:`~repro.errors.StorageUnavailableError`.
        """
        self._leader_alive = False

    def failover(self) -> int:
        """Promote a standby sequencer at a new epoch.

        Returns the new epoch.  Committed state (refcounts, frontiers,
        stream-trim directory) carries over unconditionally; the volatile
        allocation cursor is recovered from standby replicas at R>1 or
        reset to ``committed_tail + 1`` at R=1 (in-flight allocations
        invalidated — numeric reuse is safe because old-epoch installs
        are fenced).
        """
        self._epoch += 1
        self._failovers += 1
        self._leader_alive = True
        if self._replication <= 1:
            resume = max(self._committed_tail + 1, self._first_seqnum)
            if self._next_seqnum > resume:
                self._invalidated_allocations += self._next_seqnum - resume
            self._next_seqnum = resume
        return self._epoch

    # -- reference directory ---------------------------------------------

    def add_refs(self, seqnum: int, count: int) -> None:
        self._tag_refs[seqnum] = count

    def release_ref(self, seqnum: int) -> bool:
        """Drop one sub-stream reference; ``True`` when it was the last."""
        refs = self._tag_refs.get(seqnum)
        if refs is None:
            raise LogError(f"seqnum {seqnum} has no live references")
        refs -= 1
        if refs == 0:
            del self._tag_refs[seqnum]
            return True
        self._tag_refs[seqnum] = refs
        return False

    @property
    def live_reference_count(self) -> int:
        return len(self._tag_refs)

    def reference_counts(self) -> Dict[int, int]:
        return dict(self._tag_refs)

    # -- per-shard trim frontier -----------------------------------------

    def note_trim(self, shard: int, seqnum: int) -> None:
        """Record that ``shard`` trimmed its streams up through ``seqnum``."""
        current = self._trim_frontier.get(shard, 0)
        if seqnum > current:
            self._trim_frontier[shard] = seqnum

    def shard_frontier(self, shard: int) -> int:
        """Highest seqnum ``shard`` has trimmed (0 if it never trimmed)."""
        return self._trim_frontier.get(shard, 0)

    def frontiers(self) -> Dict[int, int]:
        return dict(self._trim_frontier)

    # -- per-tag trim directory ------------------------------------------

    def note_stream_trim(self, tag: str, count: int, seqnum: int) -> None:
        """Record that ``count`` more head records of ``tag``'s sub-stream
        were trimmed, through ``seqnum``.

        This is the metalog's replicated trim record for one tag; a lost
        shard uses it to rebuild its sub-stream indexes without
        resurrecting garbage-collected prefixes — the cumulative count
        restores the stream's *offset* origin (``trimmed_count``), which
        ``logCondAppend`` races depend on, and the seqnum bounds which
        live records still belong to the stream.
        """
        trimmed, highest = self._stream_trims.get(tag, (0, 0))
        self._stream_trims[tag] = (trimmed + count, max(highest, seqnum))

    def stream_trim(self, tag: str) -> Tuple[int, int]:
        """``(trimmed_count, highest_trimmed_seqnum)`` for ``tag``."""
        return self._stream_trims.get(tag, (0, 0))

    def stream_trims(self) -> Dict[str, Tuple[int, int]]:
        return dict(self._stream_trims)
