"""The metalog: global sequencer and record directory of the log plane.

In Boki the total order of the shared log is not produced by the storage
shards — a *metalog* (one sequencer appending to its own internal log)
assigns every record a position, and the shards merely materialise the
per-tag indexes and hold record bodies.  This class is that authority
for the sharded plane:

* it hands out the monotone seqnums (``assign``), so the global total
  order exists *before* any shard is touched — which is exactly why two
  concurrent ``logCondAppend`` calls to the same tag serialize here even
  when their other tags live on different shards;
* it tracks, per record, how many live sub-stream references remain
  (``add_refs`` / ``release_ref``), so a body is freed exactly once no
  matter which shards trim which tags — storage is accounted once per
  record, as in Boki;
* it records the per-shard trim frontier (``note_trim`` /
  ``shard_frontier``): the highest seqnum each shard has trimmed.  The
  GC computes its reclamation horizon per shard from these, and the
  regression tests pin the invariant that a trim on shard A can never
  advance shard B's frontier (or drop its records).
"""

from __future__ import annotations

from typing import Dict

from ..errors import LogError


class Metalog:
    """Sequencer + record reference directory for a sharded log."""

    def __init__(self, first_seqnum: int = 1):
        self._next_seqnum = int(first_seqnum)
        self._tag_refs: Dict[int, int] = {}
        self._trim_frontier: Dict[int, int] = {}

    # -- sequencing ------------------------------------------------------

    @property
    def next_seqnum(self) -> int:
        return self._next_seqnum

    @property
    def tail_seqnum(self) -> int:
        return self._next_seqnum - 1

    def assign(self) -> int:
        """Allocate the next position in the global total order."""
        seqnum = self._next_seqnum
        self._next_seqnum += 1
        return seqnum

    # -- reference directory ---------------------------------------------

    def add_refs(self, seqnum: int, count: int) -> None:
        self._tag_refs[seqnum] = count

    def release_ref(self, seqnum: int) -> bool:
        """Drop one sub-stream reference; ``True`` when it was the last."""
        refs = self._tag_refs.get(seqnum)
        if refs is None:
            raise LogError(f"seqnum {seqnum} has no live references")
        refs -= 1
        if refs == 0:
            del self._tag_refs[seqnum]
            return True
        self._tag_refs[seqnum] = refs
        return False

    @property
    def live_reference_count(self) -> int:
        return len(self._tag_refs)

    # -- per-shard trim frontier -----------------------------------------

    def note_trim(self, shard: int, seqnum: int) -> None:
        """Record that ``shard`` trimmed its streams up through ``seqnum``."""
        current = self._trim_frontier.get(shard, 0)
        if seqnum > current:
            self._trim_frontier[shard] = seqnum

    def shard_frontier(self, shard: int) -> int:
        """Highest seqnum ``shard`` has trimmed (0 if it never trimmed)."""
        return self._trim_frontier.get(shard, 0)

    def frontiers(self) -> Dict[int, int]:
        return dict(self._trim_frontier)
