"""Pluggable sequencing strategies for the metalog.

PR 4's shard sweep showed the wall: p99 flattens as shards scale because
every append still funnels through one global :class:`Metalog` cursor.
This module makes that policy pluggable.  A :class:`Sequencer` wraps the
metalog's two ordering duties — ``assign`` (allocate the next position
in the global total order) and ``commit`` (advance the replicated
committed tail once the install reached the shards) — behind a registry
(:func:`register_sequencer` / :func:`build_sequencer`) selected by
``StorageSizeConfig.sequencer``:

* ``monolith`` — today's behaviour, a straight passthrough to
  :meth:`Metalog.assign` / :meth:`Metalog.commit`.  Paper-faithful and
  bit-identical to the pre-refactor code (the golden CI diffs pin it).
* ``batched`` — group commit.  Seqnum allocation is unchanged (the
  total order must exist before any shard is touched), but commits are
  buffered and flushed to the metalog every ``batch`` installs, so the
  sequencer's replicated state machine takes one commit append per
  batch instead of one per record.  ``hold_ms`` is the max time a
  commit may sit in the buffer; the substrate is clockless, so the
  hold window is enforced by the DES batching station and the live
  gateway's coalescer, not here.  ``batch=1`` degenerates to monolith.
* ``leased-ranges`` — epoch-leased seqnum blocks.  The log leases a
  contiguous block of ``block`` seqnums from the metalog in one
  allocation (:meth:`Metalog.assign_block`) and hands them out locally,
  so the sequencer is visited once per block instead of once per
  append.  Every :class:`LeasedBlock` is stamped with the epoch it was
  granted under; a failover bumps the epoch, which invalidates the
  remainder of the block — a stale block can never commit
  (:class:`~repro.errors.FencedEpochError`), the discarded seqnums are
  counted, and at replication > 1 they become a permanent hole the
  committed tail heals over (``commit`` is a max).  ``block=1``
  degenerates to monolith.

Because the lease holder is the sharded log itself (the substrate is
single-threaded), leased seqnums are handed out in assignment order and
the per-tag sub-streams keep their strictly-increasing invariant; the
strategies differ in *how often the sequencer is touched*, which is
exactly what the DES stations and the scale experiment model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigError
from .fencing import LeasedBlock
from .metalog import Metalog

__all__ = [
    "BatchedSequencer",
    "LeasedBlock",
    "LeasedRangeSequencer",
    "MonolithSequencer",
    "Sequencer",
    "available_sequencers",
    "build_sequencer",
    "register_sequencer",
]


class Sequencer:
    """Ordering policy over a :class:`Metalog`.

    Subclasses decide how allocations and commits reach the metalog;
    the metalog remains the single source of truth for epochs, fencing,
    refcounts, and trim directories.
    """

    name = "abstract"

    def __init__(self, metalog: Metalog):
        self.metalog = metalog

    def assign(self, epoch: Optional[int] = None) -> int:
        """Allocate the next position in the global total order."""
        raise NotImplementedError

    def commit(self, seqnum: int) -> None:
        """Mark an assigned seqnum as installed on the shards."""
        raise NotImplementedError

    @property
    def next_seqnum(self) -> int:
        return self.metalog.next_seqnum

    @property
    def tail_seqnum(self) -> int:
        return self.next_seqnum - 1

    def on_failover(self) -> None:
        """Hook run *before* the metalog promotes a new leader."""

    def stats(self) -> Dict[str, object]:
        return {"sequencer": self.name}


class MonolithSequencer(Sequencer):
    """One global cursor, one commit per record — the paper's design."""

    name = "monolith"

    def assign(self, epoch: Optional[int] = None) -> int:
        return self.metalog.assign(epoch)

    def commit(self, seqnum: int) -> None:
        self.metalog.commit(seqnum)


class BatchedSequencer(Sequencer):
    """Group commit: one metalog commit append per ``batch`` installs.

    Allocation stays per-record (the total order is decided at assign
    time); only the committed-tail advancement is amortized.  On
    failover the pending buffer is flushed *before* the epoch bumps —
    the new leader reconstructs the tail from what the shards actually
    installed (Boki's metalog reconfiguration), and skipping this at
    replication = 1 would reset the allocation cursor below installed
    records and re-issue their seqnums.
    """

    name = "batched"

    def __init__(self, metalog: Metalog, batch: int = 8,
                 hold_ms: float = 0.2):
        super().__init__(metalog)
        if batch < 1:
            raise ConfigError("sequencer_batch must be >= 1")
        if hold_ms < 0:
            raise ConfigError("sequencer_hold_ms must be >= 0")
        self.batch = int(batch)
        self.hold_ms = float(hold_ms)
        self._pending: List[int] = []
        self.commits_buffered = 0
        self.commit_flushes = 0
        self.commits_flushed = 0

    def assign(self, epoch: Optional[int] = None) -> int:
        return self.metalog.assign(epoch)

    def commit(self, seqnum: int) -> None:
        self._pending.append(seqnum)
        self.commits_buffered += 1
        if len(self._pending) >= self.batch:
            self.flush()

    def flush(self) -> int:
        """Commit the whole buffer as one metalog append; returns its size."""
        pending = self._pending
        if not pending:
            return 0
        count = len(pending)
        self.metalog.commit(max(pending))
        pending.clear()
        self.commit_flushes += 1
        self.commits_flushed += count
        return count

    @property
    def pending_commits(self) -> int:
        return len(self._pending)

    def on_failover(self) -> None:
        self.flush()

    def stats(self) -> Dict[str, object]:
        flushes = self.commit_flushes
        return {
            "sequencer": self.name,
            "batch": self.batch,
            "hold_ms": self.hold_ms,
            "commit_flushes": flushes,
            "commits_buffered": self.commits_buffered,
            "pending_commits": len(self._pending),
            "mean_batch_size": (
                self.commits_flushed / flushes if flushes else 0.0
            ),
        }


class LeasedRangeSequencer(Sequencer):
    """Epoch-leased contiguous seqnum blocks, fenced on failover.

    The sharded log is the lease holder: it drains one
    :class:`LeasedBlock` cursor locally and returns to the metalog only
    for a refill, cutting sequencer visits to one per ``block``
    records.  Staleness is checked lazily at the next allocation (and
    defensively at commit): if the metalog's epoch moved past the
    block's stamp, the unconsumed remainder is discarded and counted —
    at replication = 1 the failed-over cursor already reclaimed those
    numbers (``invalidated_allocations``); at replication > 1 they
    become a permanent hole the committed tail max-advances over.
    """

    name = "leased-ranges"

    def __init__(self, metalog: Metalog, block: int = 64):
        super().__init__(metalog)
        if block < 1:
            raise ConfigError("sequencer_block must be >= 1")
        self.block = int(block)
        self._lease: Optional[LeasedBlock] = None
        self._cursor = 0
        self.blocks_leased = 0
        self.invalidated_blocks = 0
        self.invalidated_seqnums = 0

    @property
    def current_block(self) -> Optional[LeasedBlock]:
        return self._lease

    def _discard_if_stale(self) -> None:
        lease = self._lease
        if lease is None or lease.epoch == self.metalog.epoch:
            return
        remaining = lease.end - self._cursor + 1
        if remaining > 0:
            self.invalidated_seqnums += remaining
        self.invalidated_blocks += 1
        self._lease = None

    def assign(self, epoch: Optional[int] = None) -> int:
        self._discard_if_stale()
        lease = self._lease
        if lease is None or self._cursor > lease.end:
            start = self.metalog.assign_block(self.block, epoch)
            lease = LeasedBlock(
                start, start + self.block - 1, self.metalog.epoch
            )
            self._lease = lease
            self._cursor = start
            self.blocks_leased += 1
        seqnum = self._cursor
        self._cursor += 1
        return seqnum

    def commit(self, seqnum: int) -> None:
        lease = self._lease
        if (lease is not None and lease.contains(seqnum)
                and lease.epoch != self.metalog.epoch):
            # A stale block must never advance the committed tail; the
            # metalog's own fence raises (and counts) the rejection.
            self.metalog.check_epoch(lease.epoch, op="commit")
        self.metalog.commit(seqnum)

    @property
    def next_seqnum(self) -> int:
        # The *logical* next position is the block cursor; the metalog's
        # raw cursor already sits at the block end.  Exhausted or stale
        # blocks fall back to the metalog (identical after a refill).
        lease = self._lease
        if (lease is not None and lease.epoch == self.metalog.epoch
                and self._cursor <= lease.end):
            return self._cursor
        return self.metalog.next_seqnum

    def stats(self) -> Dict[str, object]:
        return {
            "sequencer": self.name,
            "block": self.block,
            "blocks_leased": self.blocks_leased,
            "invalidated_blocks": self.invalidated_blocks,
            "invalidated_seqnums": self.invalidated_seqnums,
        }


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------

#: Factory signature: ``(metalog, storage_config) -> Sequencer`` where
#: ``storage_config`` is a :class:`~repro.config.StorageSizeConfig`.
SequencerFactory = Callable[[Metalog, object], Sequencer]

_SEQUENCERS: Dict[str, SequencerFactory] = {
    "monolith": lambda metalog, storage: MonolithSequencer(metalog),
    "batched": lambda metalog, storage: BatchedSequencer(
        metalog,
        batch=getattr(storage, "sequencer_batch", 8),
        hold_ms=getattr(storage, "sequencer_hold_ms", 0.2),
    ),
    "leased-ranges": lambda metalog, storage: LeasedRangeSequencer(
        metalog, block=getattr(storage, "sequencer_block", 64)
    ),
}


def register_sequencer(name: str, factory: SequencerFactory) -> None:
    """Plug in a sequencing strategy selectable via config."""
    _SEQUENCERS[name] = factory


def available_sequencers() -> List[str]:
    return sorted(_SEQUENCERS)


def build_sequencer(name: str, metalog: Metalog,
                    storage: object) -> Sequencer:
    """Build the strategy ``StorageSizeConfig.sequencer`` names."""
    factory = _SEQUENCERS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown sequencer {name!r}; "
            f"available: {available_sequencers()}"
        )
    return factory(metalog, storage)
