"""Pluggable storage plane: metalog + log shards + partitioned KV.

The runtime binds to :class:`StoragePlane`, never to concrete
substrates; :func:`build_storage_plane` selects the backend from
:class:`~repro.config.StorageSizeConfig` (``backend`` / ``log_shards``
/ ``kv_partitions`` / ``placement`` / ``replication``).  ``single``
(the default at a 1×1 topology) is the paper-faithful configuration and
bit-identical to the pre-plane code; ``sharded`` scales the log into a
:class:`Metalog` + N :class:`LogShard` s and the store into M hash
partitions.

Every component is crashable and recoverable (see docs/PROTOCOLS.md,
"Storage failure model"): the sequencer fails over behind epoch fencing
(:mod:`~repro.storageplane.fencing`), shards replicate behind write
quorums (:mod:`~repro.storageplane.replication`) or rebuild from the
log at R=1, partitions rebuild from their redo journal, and
:func:`storage_consistency_report` audits the invariants afterwards.
"""

from .audit import diff_partition_snapshots, storage_consistency_report
from .base import GENESIS_VERSION, StoragePlane
from .fencing import EpochView, Lease
from .metalog import Metalog
from .partitioned_kv import PartitionedKV
from .plane import (
    ShardedPlane,
    SingleNodePlane,
    available_backends,
    build_storage_plane,
    register_backend,
)
from .replication import ShardReplicaSet
from .routing import PLACEMENT_POLICIES, Router, base_key, stable_hash
from .sequencer import (
    BatchedSequencer,
    LeasedBlock,
    LeasedRangeSequencer,
    MonolithSequencer,
    Sequencer,
    available_sequencers,
    build_sequencer,
    register_sequencer,
)
from .sharded_log import LogShard, ShardedLog

__all__ = [
    "GENESIS_VERSION",
    "BatchedSequencer",
    "EpochView",
    "Lease",
    "LeasedBlock",
    "LeasedRangeSequencer",
    "LogShard",
    "Metalog",
    "MonolithSequencer",
    "PLACEMENT_POLICIES",
    "PartitionedKV",
    "Router",
    "Sequencer",
    "ShardReplicaSet",
    "ShardedLog",
    "ShardedPlane",
    "SingleNodePlane",
    "StoragePlane",
    "available_backends",
    "available_sequencers",
    "base_key",
    "build_sequencer",
    "build_storage_plane",
    "diff_partition_snapshots",
    "register_backend",
    "register_sequencer",
    "stable_hash",
    "storage_consistency_report",
]
