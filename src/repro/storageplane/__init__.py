"""Pluggable storage plane: metalog + log shards + partitioned KV.

The runtime binds to :class:`StoragePlane`, never to concrete
substrates; :func:`build_storage_plane` selects the backend from
:class:`~repro.config.StorageSizeConfig` (``backend`` / ``log_shards``
/ ``kv_partitions`` / ``placement``).  ``single`` (the default at a
1×1 topology) is the paper-faithful configuration and bit-identical to
the pre-plane code; ``sharded`` scales the log into a
:class:`Metalog` + N :class:`LogShard` s and the store into M hash
partitions.
"""

from .base import GENESIS_VERSION, StoragePlane
from .metalog import Metalog
from .partitioned_kv import PartitionedKV
from .plane import (
    ShardedPlane,
    SingleNodePlane,
    available_backends,
    build_storage_plane,
    register_backend,
)
from .routing import PLACEMENT_POLICIES, Router, base_key, stable_hash
from .sharded_log import LogShard, ShardedLog

__all__ = [
    "GENESIS_VERSION",
    "LogShard",
    "Metalog",
    "PLACEMENT_POLICIES",
    "PartitionedKV",
    "Router",
    "ShardedLog",
    "ShardedPlane",
    "SingleNodePlane",
    "StoragePlane",
    "available_backends",
    "base_key",
    "build_storage_plane",
    "register_backend",
    "stable_hash",
]
