"""Log-shard replica sets: write quorums, promotion, re-replication.

At ``replication = R > 1`` every log shard keeps its per-tag sub-stream
indexes on ``R`` replicas.  An append only returns once a **majority**
of replicas acknowledged it (we model the quorum as "a majority must be
live; every live replica applies synchronously" — dead replicas miss
updates and are repaired by copy).  Reads fail over to any live replica:
when the serving replica dies, a survivor is *promoted* by swapping the
shard's stream table to the survivor's copy, so readers never observe a
gap.  A crashed replica rejoins by **re-replication**: a deep copy of a
survivor's stream table.

The replica content is only the sub-stream indexes (seqnum lists +
trimmed counts).  Record *bodies* live in the sharded log's global
record directory keyed by seqnum — mirroring Boki, where bodies are
stored once and index replicas reference them — so re-replication moves
index state only.

With ``replication = 1`` (the paper-faithful default) none of this is
instantiated; a lost shard is instead rebuilt from the record directory
and the metalog's trim directory (see ``ShardedLog.rebuild_shard``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..sharedlog.log import _Stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sharded_log import LogShard


def _copy_streams(streams: Dict[str, _Stream]) -> Dict[str, _Stream]:
    out: Dict[str, _Stream] = {}
    for tag, stream in streams.items():
        dup = _Stream()
        dup.seqnums = list(stream.seqnums)
        dup.trimmed_count = stream.trimmed_count
        out[tag] = dup
    return out


class ShardReplicaSet:
    """R copies of one shard's stream table; copy 0 starts as serving."""

    __slots__ = ("shard", "replication", "copies", "live", "primary",
                 "promotions", "repairs")

    def __init__(self, shard: "LogShard", replication: int):
        if replication < 2:
            raise ValueError("ShardReplicaSet requires replication >= 2")
        self.shard = shard
        self.replication = int(replication)
        #: ``copies[primary] is shard.streams`` at all times.
        self.copies: List[Dict[str, _Stream]] = [shard.streams] + [
            _copy_streams(shard.streams) for _ in range(replication - 1)
        ]
        self.live = [True] * replication
        self.primary = 0
        self.promotions = 0
        self.repairs = 0

    # -- membership ------------------------------------------------------

    @property
    def live_count(self) -> int:
        return sum(self.live)

    @property
    def quorum(self) -> int:
        return self.replication // 2 + 1

    @property
    def has_quorum(self) -> bool:
        return self.live_count >= self.quorum

    @property
    def all_dead(self) -> bool:
        return self.live_count == 0

    def live_replicas(self) -> List[int]:
        return [i for i, alive in enumerate(self.live) if alive]

    # -- mirroring (write path) ------------------------------------------

    def mirror_append(self, tag: str, seqnum: int) -> None:
        """Apply one sub-stream append to every live non-serving copy.

        The serving copy already received it through the shard's normal
        install path; dead copies miss it and are repaired wholesale.
        """
        primary = self.primary
        for i, alive in enumerate(self.live):
            if not alive or i == primary:
                continue
            streams = self.copies[i]
            stream = streams.get(tag)
            if stream is None:
                stream = streams[tag] = _Stream()
            stream.append(seqnum)

    def mirror_trim(self, tag: str, cut: int) -> None:
        """Apply a head trim of ``cut`` records to live non-serving copies."""
        primary = self.primary
        for i, alive in enumerate(self.live):
            if not alive or i == primary:
                continue
            stream = self.copies[i].get(tag)
            if stream is None:
                continue
            del stream.seqnums[:cut]
            stream.trimmed_count += cut

    # -- failure / recovery ----------------------------------------------

    def crash(self, replica: Optional[int] = None) -> int:
        """Kill one replica (the serving one by default, to exercise
        promotion).  Returns the index killed.

        If the serving replica dies and a survivor exists, the survivor
        is promoted immediately: the shard's stream table pointer swaps
        to the survivor's copy, so reads continue without a gap.  The
        caller is responsible for evicting node-local record caches —
        the promoted copy serves at a new placement.
        """
        if replica is None:
            replica = self.primary
        if not self.live[replica]:
            return replica
        self.live[replica] = False
        if replica == self.primary:
            survivors = self.live_replicas()
            if survivors:
                self.primary = survivors[0]
                self.shard.streams = self.copies[self.primary]
                self.promotions += 1
        return replica

    def repair(self, replica: int) -> bool:
        """Re-replicate a dead copy from a survivor; ``True`` on success."""
        if self.live[replica]:
            return True
        survivors = self.live_replicas()
        if not survivors:
            return False
        self.copies[replica] = _copy_streams(self.copies[survivors[0]])
        self.live[replica] = True
        self.repairs += 1
        return True

    # -- audit support ---------------------------------------------------

    def divergence(self) -> int:
        """Number of (tag, content) mismatches across live copies.

        Zero on a healthy set: every live replica must hold identical
        sub-stream indexes once appends/trims/repairs have settled.
        """
        live = self.live_replicas()
        if len(live) < 2:
            return 0
        base = self.copies[live[0]]
        mismatches = 0
        for i in live[1:]:
            other = self.copies[i]
            if set(base) != set(other):
                mismatches += len(set(base) ^ set(other))
            for tag, stream in base.items():
                peer = other.get(tag)
                if peer is None:
                    continue
                if (peer.seqnums != stream.seqnums
                        or peer.trimmed_count != stream.trimmed_count):
                    mismatches += 1
        return mismatches
