"""Configuration objects for the Halfmoon reproduction.

The latency constants are calibrated against the numbers the paper itself
reports (Table 1 and Section 4.1):

* shared-log append: 1.18 ms median, 1.91 ms p99 (Table 1, "Log");
* raw DynamoDB read: 1.88 ms median, 4.60 ms p99 (Table 1, "Read");
* raw DynamoDB write: 2.47 ms median, 5.86 ms p99 (Table 1, "Write");
* cached ``logReadPrev``: 0.12 ms median, 0.72 ms p99 (Section 4.1,
  quoting Boki's measurements);
* conditional writes cost more than blind writes (Section 6.1 explains that
  Halfmoon-write's log-free writes remain above raw writes because the
  update is conditional).  We model the conditional surcharge as a
  multiplicative factor.

All times in this library are expressed in **milliseconds** of simulated
time unless a name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError

# ---------------------------------------------------------------------------
# Latency calibration (medians / p99s in milliseconds).
# ---------------------------------------------------------------------------

LOG_APPEND_MEDIAN_MS = 1.18
LOG_APPEND_P99_MS = 1.91

DB_READ_MEDIAN_MS = 1.88
DB_READ_P99_MS = 4.60

DB_WRITE_MEDIAN_MS = 2.47
DB_WRITE_P99_MS = 5.86

LOG_READ_CACHED_MEDIAN_MS = 0.12
LOG_READ_CACHED_P99_MS = 0.72

#: A log read that misses the function-node cache pays a storage-node round
#: trip comparable to an append.
LOG_READ_MISS_MEDIAN_MS = 1.05
LOG_READ_MISS_P99_MS = 1.80

#: Conditional updates (compare version, then write) cost more than a blind
#: put.  Chosen so that Boki's logged conditional write and Halfmoon-write's
#: log-free conditional write land where Figure 10(b) puts them: the paper
#: notes log-free writes stay above raw writes because they are conditional.
CONDITIONAL_WRITE_FACTOR = 1.18

#: Reading a specific object version adds version-key indirection over a
#: plain read; calibrated so Halfmoon-read's reads carry the small overhead
#: over unsafe raw reads that Section 6.1 reports (~15-20%).
MULTIVERSION_READ_FACTOR = 1.15

#: Installing a new object version pays the same indirection on the write
#: path (composite version key).
MULTIVERSION_WRITE_FACTOR = 1.08

#: Both Boki and Halfmoon-read append two log records per write
#: (Section 4.1).  The intent record overlaps with the DB write, so it
#: costs this fraction of a full synchronous append on the critical path.
#: Calibrated so that C_w ~= 2 C_r (Section 4.6) and the runtime boundary
#: lands near read ratio 2/3 (Figure 13).
OVERLAPPED_LOG_FACTOR = 0.55

#: Control records (init, invoke intent/result) are pure progress
#: checkpoints replicated fully off the critical path — the sequencer
#: returns the seqnum immediately.  Only this small fraction of an append
#: is latency-visible.
CONTROL_LOG_FACTOR = 0.25

#: Fixed per-invocation runtime overhead (scheduling, marshalling).
INVOKE_OVERHEAD_MEDIAN_MS = 0.35
INVOKE_OVERHEAD_P99_MS = 0.90

#: Pure compute time of a synthetic SSF body, excluding state operations.
FUNCTION_COMPUTE_MS = 0.25


@dataclass(frozen=True)
class LatencyConfig:
    """Latency distribution parameters for every simulated service call."""

    log_append_median_ms: float = LOG_APPEND_MEDIAN_MS
    log_append_p99_ms: float = LOG_APPEND_P99_MS
    db_read_median_ms: float = DB_READ_MEDIAN_MS
    db_read_p99_ms: float = DB_READ_P99_MS
    db_write_median_ms: float = DB_WRITE_MEDIAN_MS
    db_write_p99_ms: float = DB_WRITE_P99_MS
    log_read_cached_median_ms: float = LOG_READ_CACHED_MEDIAN_MS
    log_read_cached_p99_ms: float = LOG_READ_CACHED_P99_MS
    log_read_miss_median_ms: float = LOG_READ_MISS_MEDIAN_MS
    log_read_miss_p99_ms: float = LOG_READ_MISS_P99_MS
    conditional_write_factor: float = CONDITIONAL_WRITE_FACTOR
    multiversion_read_factor: float = MULTIVERSION_READ_FACTOR
    multiversion_write_factor: float = MULTIVERSION_WRITE_FACTOR
    overlapped_log_factor: float = OVERLAPPED_LOG_FACTOR
    control_log_factor: float = CONTROL_LOG_FACTOR
    invoke_overhead_median_ms: float = INVOKE_OVERHEAD_MEDIAN_MS
    invoke_overhead_p99_ms: float = INVOKE_OVERHEAD_P99_MS
    function_compute_ms: float = FUNCTION_COMPUTE_MS

    def validate(self) -> None:
        for name, median, p99 in [
            ("log_append", self.log_append_median_ms, self.log_append_p99_ms),
            ("db_read", self.db_read_median_ms, self.db_read_p99_ms),
            ("db_write", self.db_write_median_ms, self.db_write_p99_ms),
            ("log_read_cached", self.log_read_cached_median_ms,
             self.log_read_cached_p99_ms),
            ("log_read_miss", self.log_read_miss_median_ms,
             self.log_read_miss_p99_ms),
            ("invoke_overhead", self.invoke_overhead_median_ms,
             self.invoke_overhead_p99_ms),
        ]:
            if median <= 0:
                raise ConfigError(f"{name} median must be positive")
            if p99 < median:
                raise ConfigError(f"{name} p99 must be >= median")
        if self.conditional_write_factor < 1.0:
            raise ConfigError("conditional_write_factor must be >= 1")
        if self.multiversion_read_factor < 1.0:
            raise ConfigError("multiversion_read_factor must be >= 1")
        if self.multiversion_write_factor < 1.0:
            raise ConfigError("multiversion_write_factor must be >= 1")
        if not 0.0 <= self.overlapped_log_factor <= 1.0:
            raise ConfigError("overlapped_log_factor must be in [0, 1]")
        if not 0.0 <= self.control_log_factor <= 1.0:
            raise ConfigError("control_log_factor must be in [0, 1]")
        if self.function_compute_ms < 0:
            raise ConfigError("function_compute_ms must be >= 0")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated serverless deployment.

    Mirrors the paper's testbed: eight function nodes behind one gateway,
    with a logging layer of three storage nodes and one sequencer.  The
    worker count per node controls where the latency/throughput curve
    saturates.
    """

    function_nodes: int = 8
    workers_per_node: int = 8
    storage_nodes: int = 3
    log_cache_hit_ratio: float = 0.96
    #: Optional queueing model of the logging layer itself: every append
    #: passes through the sequencer and one of ``storage_nodes`` shards,
    #: each a FIFO station with the given per-append service times.  Off
    #: by default — the paper notes logging is typically not the
    #: bottleneck, and the dedicated test validates exactly that.
    model_log_contention: bool = False
    sequencer_service_ms: float = 0.02
    log_shard_service_ms: float = 0.05
    #: Per-partition FIFO queueing of the external store (same station
    #: model as the log shards).  Off by default; the shard-sweep
    #: experiment enables it so offered load saturates per-partition.
    model_store_contention: bool = False
    store_partition_service_ms: float = 0.05

    def validate(self) -> None:
        if self.function_nodes <= 0:
            raise ConfigError("function_nodes must be positive")
        if self.workers_per_node <= 0:
            raise ConfigError("workers_per_node must be positive")
        if self.storage_nodes <= 0:
            raise ConfigError("storage_nodes must be positive")
        if not 0.0 <= self.log_cache_hit_ratio <= 1.0:
            raise ConfigError("log_cache_hit_ratio must be in [0, 1]")
        if self.sequencer_service_ms < 0 or self.log_shard_service_ms < 0:
            raise ConfigError("log-layer service times must be >= 0")
        if self.store_partition_service_ms < 0:
            raise ConfigError("store service time must be >= 0")

    @property
    def total_workers(self) -> int:
        return self.function_nodes * self.workers_per_node


@dataclass(frozen=True)
class GCConfig:
    """Garbage-collector schedule (Section 4.5)."""

    interval_ms: float = 10_000.0
    enabled: bool = True

    def validate(self) -> None:
        if self.interval_ms <= 0:
            raise ConfigError("gc interval must be positive")


@dataclass(frozen=True)
class StorageSizeConfig:
    """Storage-plane topology and byte-size accounting.

    ``meta_bytes`` is the size of a log record's metadata (seqnum, tags,
    step/op fields); Section 4.1 notes this fits in a few dozen bytes.

    The plane fields select the backend :func:`repro.storageplane.
    build_storage_plane` constructs:

    * ``backend`` — ``"auto"`` (default; ``single`` at a 1×1 topology,
      ``sharded`` otherwise), ``"single"``, ``"sharded"``, or any name
      plugged in via :func:`repro.storageplane.register_backend`;
    * ``log_shards`` — number of log storage shards behind the metalog
      sequencer (tag sub-streams are routed deterministically);
    * ``kv_partitions`` — number of hash partitions of the external
      store (versions co-locate with their base key);
    * ``placement`` — routing policy, ``"hash"`` (stable CRC-32) or
      ``"first_seen"`` (deterministic round-robin);
    * ``replication`` — log-shard replica count.  At 1 (the default and
      the paper-faithful configuration; see EXPERIMENTS.md) each shard
      holds a single copy of its sub-stream indexes and a lost shard is
      rebuilt from the record directory; at R>1 appends require a
      majority write quorum and a lost replica is re-replicated from a
      survivor;
    * ``sequencer`` — sequencing strategy over the metalog (see
      :mod:`repro.storageplane.sequencer`): ``"monolith"`` (the paper's
      single global cursor, bit-identical to the pre-refactor code),
      ``"batched"`` (group commit: one sequencer commit per
      ``sequencer_batch`` appends, held at most ``sequencer_hold_ms``),
      or ``"leased-ranges"`` (epoch-leased blocks of
      ``sequencer_block`` seqnums, fenced on failover).

    The default 1×1 topology is the paper-faithful configuration and is
    bit-identical to the pre-plane substrates.
    """

    key_bytes: int = 8
    value_bytes: int = 256
    meta_bytes: int = 48
    backend: str = "auto"
    log_shards: int = 1
    kv_partitions: int = 1
    placement: str = "hash"
    replication: int = 1
    sequencer: str = "monolith"
    sequencer_batch: int = 8
    sequencer_hold_ms: float = 0.2
    sequencer_block: int = 64

    def validate(self) -> None:
        if min(self.key_bytes, self.value_bytes, self.meta_bytes) <= 0:
            raise ConfigError("storage sizes must be positive")
        if self.log_shards <= 0:
            raise ConfigError("log_shards must be positive")
        if self.kv_partitions <= 0:
            raise ConfigError("kv_partitions must be positive")
        if self.replication <= 0:
            raise ConfigError("replication must be positive")
        if self.placement not in ("hash", "first_seen"):
            raise ConfigError(
                "placement must be 'hash' or 'first_seen'"
            )
        if not self.backend:
            raise ConfigError("backend must be a non-empty name")
        # Registry membership is checked at plane-build time (the
        # registry lives in repro.storageplane); here only shape.
        if not self.sequencer:
            raise ConfigError("sequencer must be a non-empty name")
        if self.sequencer_batch <= 0:
            raise ConfigError("sequencer_batch must be positive")
        if self.sequencer_hold_ms < 0:
            raise ConfigError("sequencer_hold_ms must be >= 0")
        if self.sequencer_block <= 0:
            raise ConfigError("sequencer_block must be positive")


@dataclass(frozen=True)
class FailureConfig:
    """Crash-injection policy for SSF instances.

    ``crash_probability`` is evaluated at every operation boundary of a
    fresh (non-replay) attempt; replays run crash-free by default so that
    experiments terminate.  ``max_retries`` bounds re-execution.
    """

    crash_probability: float = 0.0
    crash_on_replay: bool = False
    max_retries: int = 64
    detection_delay_ms: float = 1.0

    def validate(self) -> None:
        if not 0.0 <= self.crash_probability < 1.0:
            raise ConfigError("crash_probability must be in [0, 1)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.detection_delay_ms < 0:
            raise ConfigError("detection_delay_ms must be >= 0")


@dataclass(frozen=True)
class RecoveryConfig:
    """Node-level crash recovery: lease-based detection and takeover.

    The third fault dimension (after instance crashes and infrastructure
    faults): a whole *function node* dies, killing every in-flight SSF
    instance on it and losing its slice of the record cache.  Recovery
    follows the paper's Section 4.5 story with Boki-style engine
    fail-over timing: every node holds a lease it renews by heartbeating
    the gateway every ``heartbeat_interval_ms``; the gateway's failure
    detector polls each ``detector_poll_ms`` and declares a node dead
    once its lease has been silent for ``lease_ms``.  Detection is thus
    a first-class simulated cost in ``[lease_ms, lease_ms +
    heartbeat_interval_ms + detector_poll_ms)``.  Orphaned SSFs are then
    re-dispatched to surviving nodes, where the normal protocol replay
    paths (symmetric replay vs. log-free re-execution) take over.  A
    crashed node rejoins ``restart_delay_ms`` after the crash when
    ``restart_enabled`` — with empty worker slots and a cold cache.
    """

    enabled: bool = False
    lease_ms: float = 1_000.0
    heartbeat_interval_ms: float = 200.0
    detector_poll_ms: float = 50.0
    restart_enabled: bool = True
    restart_delay_ms: float = 8_000.0

    def validate(self) -> None:
        if self.lease_ms <= 0:
            raise ConfigError("lease_ms must be positive")
        if self.heartbeat_interval_ms <= 0:
            raise ConfigError("heartbeat_interval_ms must be positive")
        if self.heartbeat_interval_ms >= self.lease_ms:
            raise ConfigError(
                "heartbeat_interval_ms must be shorter than lease_ms "
                "(otherwise healthy nodes look dead)"
            )
        if self.detector_poll_ms <= 0:
            raise ConfigError("detector_poll_ms must be positive")
        if self.restart_delay_ms < 0:
            raise ConfigError("restart_delay_ms must be >= 0")


@dataclass(frozen=True)
class FaultConfig:
    """Infrastructure fault injection — the second fault dimension.

    Orthogonal to :class:`FailureConfig` (instance crashes): these faults
    strike the *substrates*.  Every externally visible operation draws
    from a dedicated RNG stream and can

    * fail transiently (``error_rate`` — the request is dropped before it
      takes effect, so injected errors never duplicate substrate effects);
    * hang until the per-attempt timeout (``timeout_rate``); or
    * suffer gray-failure latency inflation (``gray_rate`` — the call
      succeeds but costs up to ``gray_factor``× the sampled latency,
      modelling a slow storage node).

    ``scope`` restricts injection to one substrate ("log" or "store"),
    which is how the brown-out experiments target the logging layer.
    """

    enabled: bool = False
    error_rate: float = 0.0
    timeout_rate: float = 0.0
    gray_rate: float = 0.0
    gray_factor: float = 8.0
    scope: str = "all"

    #: Split of a single headline fault rate across the three kinds,
    #: used by :meth:`uniform` and the CLI's ``--fault-rate``.
    ERROR_SHARE = 0.6
    TIMEOUT_SHARE = 0.2
    GRAY_SHARE = 0.2

    @classmethod
    def uniform(cls, rate: float, scope: str = "all",
                gray_factor: float = 8.0) -> "FaultConfig":
        """A plan where each operation faults with probability ``rate``,
        split 60/20/20 across error, timeout, and gray failures."""
        if not 0.0 <= rate < 1.0:
            raise ConfigError("fault rate must be in [0, 1)")
        return cls(
            enabled=rate > 0.0,
            error_rate=rate * cls.ERROR_SHARE,
            timeout_rate=rate * cls.TIMEOUT_SHARE,
            gray_rate=rate * cls.GRAY_SHARE,
            gray_factor=gray_factor,
            scope=scope,
        )

    @property
    def total_rate(self) -> float:
        return self.error_rate + self.timeout_rate + self.gray_rate

    def validate(self) -> None:
        for name, rate in [
            ("error_rate", self.error_rate),
            ("timeout_rate", self.timeout_rate),
            ("gray_rate", self.gray_rate),
        ]:
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1)")
        if self.total_rate >= 1.0:
            raise ConfigError("combined fault rate must be < 1")
        if self.gray_factor < 1.0:
            raise ConfigError("gray_factor must be >= 1")
        if self.scope not in ("all", "log", "store"):
            raise ConfigError("scope must be 'all', 'log', or 'store'")


@dataclass(frozen=True)
class StorageChaosConfig:
    """Storage-plane fault injection — the *fourth* fault dimension.

    Orthogonal to instance crashes, worker-side infrastructure faults,
    and node failures: these faults strike the storage plane itself.
    Enabling it arms

    * storage-side injection points: per-shard / per-partition transient
      error and timeout rates, drawn from dedicated per-component RNG
      streams derived through :func:`repro.harness.parallel.seed_for`
      (so ``--jobs N`` sweeps stay bit-identical to serial and the
      worker-side ``infra-faults`` stream is untouched);
    * a seeded network-partition schedule severing worker↔shard and
      metalog↔shard links asymmetrically for windows of
      ``partition_window_ms``, at most ``partition_windows`` of them;
    * epoch stamping of appends, so a metalog failover fences stale
      requests (:class:`~repro.errors.FencedEpochError`).

    With ``enabled=False`` (the default) none of this machinery is
    constructed and every code path is bit-identical to the pre-chaos
    code — the golden-run CI diffs enforce exactly that.
    """

    enabled: bool = False
    #: Per-operation storage-side fault rates, per component.
    shard_error_rate: float = 0.0
    shard_timeout_rate: float = 0.0
    partition_error_rate: float = 0.0
    partition_timeout_rate: float = 0.0
    #: Seeded link-partition schedule (0 windows disables it).
    partition_windows: int = 0
    partition_window_ms: float = 250.0
    partition_horizon_ms: float = 4_000.0

    def validate(self) -> None:
        for name, rate in [
            ("shard_error_rate", self.shard_error_rate),
            ("shard_timeout_rate", self.shard_timeout_rate),
            ("partition_error_rate", self.partition_error_rate),
            ("partition_timeout_rate", self.partition_timeout_rate),
        ]:
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1)")
        if self.shard_error_rate + self.shard_timeout_rate >= 1.0:
            raise ConfigError("combined shard fault rate must be < 1")
        if self.partition_error_rate + self.partition_timeout_rate >= 1.0:
            raise ConfigError("combined partition fault rate must be < 1")
        if self.partition_windows < 0:
            raise ConfigError("partition_windows must be >= 0")
        if self.partition_window_ms <= 0:
            raise ConfigError("partition_window_ms must be positive")
        if self.partition_horizon_ms <= 0:
            raise ConfigError("partition_horizon_ms must be positive")


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry/backoff/deadline policy governing every substrate operation.

    A faulted operation is retried up to ``max_attempts`` times with
    exponential backoff (``base_backoff_ms`` × ``backoff_multiplier``^n,
    capped at ``max_backoff_ms``) plus deterministic jitter drawn from a
    seeded stream (``jitter_fraction`` of the backoff).  Failed attempts
    charge real time to the cost trace: ``error_latency_ms`` for an error
    reply, ``attempt_timeout_ms`` for a hang.  When the cumulative time
    spent inside one operation exceeds ``op_deadline_ms``, or the budget
    runs out, the operation escalates to the instance level
    (:class:`~repro.errors.ServiceUnavailableError`) and the runtime
    re-executes the whole attempt.

    The circuit breaker watches consecutive substrate failures per
    service; after ``breaker_failure_threshold`` it opens for
    ``breaker_cooldown_ops`` operations and degraded modes kick in:
    cache-resident ``logReadPrev``/``logReadNext`` results are served
    from the node-local record cache (``degraded_log_reads``) and
    opportunistic background appends become droppable best-effort work
    (``drop_background_appends``).
    """

    max_attempts: int = 4
    base_backoff_ms: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 8.0
    jitter_fraction: float = 0.2
    attempt_timeout_ms: float = 10.0
    error_latency_ms: float = 1.0
    op_deadline_ms: float = 100.0
    breaker_failure_threshold: int = 5
    breaker_cooldown_ops: int = 50
    degraded_log_reads: bool = True
    drop_background_appends: bool = True
    #: Fenced-epoch handling (``FencedEpochError``): the caller refreshes
    #: its cached metalog leader epoch at a fixed ``rediscovery_ms`` cost
    #: and retries immediately — *not* the blind exponential-backoff
    #: schedule, because the fence already proves the request never
    #: applied and names the fix.  ``max_rediscoveries`` bounds the loop
    #: against a flapping leader.
    rediscovery_ms: float = 2.0
    max_rediscoveries: int = 4

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ConfigError("backoff times must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigError("jitter_fraction must be in [0, 1]")
        if self.attempt_timeout_ms < 0 or self.error_latency_ms < 0:
            raise ConfigError("fault latencies must be >= 0")
        if self.op_deadline_ms <= 0:
            raise ConfigError("op_deadline_ms must be positive")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_ops < 1:
            raise ConfigError("breaker_cooldown_ops must be >= 1")
        if self.rediscovery_ms < 0:
            raise ConfigError("rediscovery_ms must be >= 0")
        if self.max_rediscoveries < 1:
            raise ConfigError("max_rediscoveries must be >= 1")


@dataclass(frozen=True)
class ProtocolConfig:
    """Per-protocol knobs.

    ``align_write_logging_with_boki`` reproduces the prototype decision in
    Section 4.1: Halfmoon-read logs both before and after ``DBWrite`` (the
    version number is drawn randomly and must be pinned by a log record),
    matching Boki's two log records per write so that measured gains come
    solely from read-side savings.  Setting it to ``False`` switches to the
    deterministic-version single-log variant the paper also describes.
    """

    align_write_logging_with_boki: bool = True
    preserve_consecutive_write_order: bool = False
    linearizable_ops: bool = False
    #: Section 7's recovery speed-up: asynchronously checkpoint the
    #: results of log-free reads so re-execution recovers them from the
    #: (cached) checkpoint stream instead of replaying version lookups.
    #: Off the critical path, so failure-free latency is unchanged.
    checkpoint_log_free_reads: bool = False


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundle for building a platform."""

    seed: int = 0x5EED
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    gc: GCConfig = field(default_factory=GCConfig)
    storage: StorageSizeConfig = field(default_factory=StorageSizeConfig)
    failures: FailureConfig = field(default_factory=FailureConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    storage_chaos: StorageChaosConfig = field(
        default_factory=StorageChaosConfig
    )

    def validate(self) -> "SystemConfig":
        self.latency.validate()
        self.cluster.validate()
        self.gc.validate()
        self.storage.validate()
        self.failures.validate()
        self.faults.validate()
        self.resilience.validate()
        self.recovery.validate()
        self.storage_chaos.validate()
        return self

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    def with_gc_interval(self, interval_ms: float) -> "SystemConfig":
        return replace(self, gc=replace(self.gc, interval_ms=interval_ms))

    def with_value_bytes(self, value_bytes: int) -> "SystemConfig":
        return replace(
            self, storage=replace(self.storage, value_bytes=value_bytes)
        )

    def with_storage_plane(
        self,
        log_shards: Optional[int] = None,
        kv_partitions: Optional[int] = None,
        backend: Optional[str] = None,
        placement: Optional[str] = None,
        replication: Optional[int] = None,
        sequencer: Optional[str] = None,
        sequencer_batch: Optional[int] = None,
        sequencer_hold_ms: Optional[float] = None,
        sequencer_block: Optional[int] = None,
    ) -> "SystemConfig":
        """Select the storage-plane topology/backend (see
        :mod:`repro.storageplane`)."""
        overrides = {}
        if log_shards is not None:
            overrides["log_shards"] = log_shards
        if kv_partitions is not None:
            overrides["kv_partitions"] = kv_partitions
        if backend is not None:
            overrides["backend"] = backend
        if placement is not None:
            overrides["placement"] = placement
        if replication is not None:
            overrides["replication"] = replication
        if sequencer is not None:
            overrides["sequencer"] = sequencer
        if sequencer_batch is not None:
            overrides["sequencer_batch"] = sequencer_batch
        if sequencer_hold_ms is not None:
            overrides["sequencer_hold_ms"] = sequencer_hold_ms
        if sequencer_block is not None:
            overrides["sequencer_block"] = sequencer_block
        return replace(self, storage=replace(self.storage, **overrides))

    def with_storage_chaos(self, **overrides) -> "SystemConfig":
        """Arm storage-plane fault injection; override chaos knobs."""
        overrides.setdefault("enabled", True)
        return replace(
            self, storage_chaos=replace(self.storage_chaos, **overrides)
        )

    def with_crash_probability(self, p: float) -> "SystemConfig":
        return replace(
            self, failures=replace(self.failures, crash_probability=p)
        )

    def with_fault_rate(self, rate: float, scope: str = "all",
                        gray_factor: float = 8.0) -> "SystemConfig":
        """Inject infrastructure faults at ``rate`` per operation."""
        return replace(
            self, faults=FaultConfig.uniform(rate, scope, gray_factor)
        )

    def with_resilience(self, **overrides) -> "SystemConfig":
        """Override retry/backoff/breaker policy knobs."""
        return replace(
            self, resilience=replace(self.resilience, **overrides)
        )

    def with_node_recovery(self, **overrides) -> "SystemConfig":
        """Enable node-failure detection/takeover; override lease knobs."""
        overrides.setdefault("enabled", True)
        return replace(
            self, recovery=replace(self.recovery, **overrides)
        )


DEFAULT_CONFIG = SystemConfig()
