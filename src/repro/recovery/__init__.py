"""Node-level crash recovery (Sections 4.5 and 7).

The paper's fault-tolerance claim is that a crashed SSF is recovered by
*another node* re-executing it against the step log.  This package adds
the machinery the DES needs to exercise that end to end:

* :class:`~repro.recovery.lease.LeaseManager` — per-node heartbeat
  processes plus the gateway's lease-expiry failure detector, so
  detection time is a first-class simulated cost (Boki-style engine
  fail-over; Jia & Witchel, SOSP 2021);
* :class:`~repro.recovery.coordinator.RecoveryCoordinator` — scans for
  SSFs orphaned by a dead node and re-dispatches them to survivors,
  where the existing protocol replay paths (symmetric replay vs.
  log-free re-execution) finish the job.

The platform side — node crash/restart events, in-flight process
interruption, cache loss — lives in :mod:`repro.harness.platform`; the
``failover`` experiment in :mod:`repro.harness.failover` sweeps lease
duration × crash time × protocol.

:class:`~repro.recovery.storage.StorageChaosController` extends the
same discipline to the storage plane itself: sequencer failover behind
epoch fencing, shard-replica loss and repair/rebuild, and KV-partition
loss and journal replay, driven as timed DES events and audited by the
``storagechaos`` experiment in :mod:`repro.harness.storagechaos`.
"""

from .coordinator import Orphan, RecoveryCoordinator
from .lease import LeaseManager, LeaseTable
from .storage import STORAGE_COMPONENTS, StorageChaosController

__all__ = [
    "LeaseManager",
    "LeaseTable",
    "Orphan",
    "RecoveryCoordinator",
    "STORAGE_COMPONENTS",
    "StorageChaosController",
]
