"""Orphan takeover coordination.

When the failure detector declares a node dead, some SSF invocations
dispatched to it never finished — they are *orphans*.  The coordinator
re-dispatches each orphan to a surviving node, where re-execution flows
through the normal protocol replay paths: the takeover attempt loads the
instance's step log and replays logged steps (Boki: everything;
Halfmoon: only the logged side), re-executing the log-free operations.

The paper's runtime discovers orphans by scanning the shared log's init
records for SSFs with no completion (Section 4.5).  Here the gateway's
dispatch table — which the platform maintains per node and which mirrors
exactly the set of init records without a matching finish — provides the
same information without a log scan; the invocation tracker's orphan
state is the source of truth the GC also consults, so the frontier never
advances past state a pending takeover still needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from ..observe import Tracer
from ..runtime.registry import InvocationTracker
from ..simulation.kernel import Simulator
from ..simulation.metrics import LatencyRecorder

#: A clock source: either a Simulator (``.now`` property) or a plain
#: ``now_fn`` callable returning milliseconds — the live compute plane
#: passes a wall-clock ``now_fn``; the DES platform passes its kernel.
Clock = Union[Simulator, Callable[[], float]]


@dataclass(frozen=True)
class Orphan:
    """An SSF invocation stranded by a node crash."""

    instance_id: str
    request: Any
    arrival_ms: float
    #: Attempt number the takeover starts at (the interrupted attempt is
    #: counted as lost, like an instance crash).
    next_attempt: int
    node_id: int
    orphaned_at_ms: float


class RecoveryCoordinator:
    """Re-dispatches orphaned SSFs of dead nodes to survivors."""

    def __init__(
        self,
        clock: Clock,
        tracker: InvocationTracker,
        redispatch: Callable[[Orphan], None],
        tracer: Optional[Tracer] = None,
    ):
        #: Milliseconds on the driving clock — simulated or wall.  The
        #: coordinator itself is clock-agnostic; only takeover-latency
        #: accounting and trace instants read it.
        self.now_fn: Callable[[], float] = (
            clock if callable(clock) else (lambda: clock.now)
        )
        self.tracker = tracker
        self._redispatch = redispatch
        self.tracer = tracer
        self._pending: Dict[int, List[Orphan]] = {}
        self.recovered = 0
        #: Time from node crash to the orphan's re-dispatch on a
        #: survivor — detection delay plus coordinator scheduling.
        self.takeover_latency = LatencyRecorder("orphan-takeover")

    # -- intake -----------------------------------------------------------

    def add_orphan(self, orphan: Orphan) -> None:
        """Register a stranded invocation (called at crash time, from the
        interrupted invocation process)."""
        self.tracker.mark_orphaned(orphan.instance_id)
        self._pending.setdefault(orphan.node_id, []).append(orphan)

    @property
    def pending_count(self) -> int:
        return sum(len(orphans) for orphans in self._pending.values())

    def pending_for(self, node_id: int) -> List[Orphan]:
        return list(self._pending.get(node_id, ()))

    # -- recovery triggers -------------------------------------------------

    def node_failed(self, node_id: int, detected_at_ms: float) -> None:
        """Failure detector verdict: take over the node's orphans."""
        self._recover(node_id)

    def node_restarted(self, node_id: int) -> None:
        """The node came back (possibly before its lease expired): it
        recovers its own orphans by scanning the log, same paths."""
        self._recover(node_id)

    def _recover(self, node_id: int) -> None:
        for orphan in self._pending.pop(node_id, ()):  # idempotent drain
            if not self.tracker.is_orphaned(orphan.instance_id):
                # Finished or already reclaimed elsewhere; nothing owed.
                continue
            self.tracker.reclaim(orphan.instance_id)
            self.recovered += 1
            now = self.now_fn()
            self.takeover_latency.record(now - orphan.orphaned_at_ms)
            if self.tracer is not None:
                self.tracer.instant(
                    "orphan-takeover", now,
                    trace_id=orphan.instance_id,
                    node=node_id,
                    next_attempt=orphan.next_attempt,
                    orphaned_ms=now - orphan.orphaned_at_ms,
                )
            self._redispatch(orphan)
