"""Lease-based failure detection.

Every function node holds a lease with the gateway and renews it with a
heartbeat while alive; the gateway's detector declares a node dead once
its lease has been silent for the configured duration.  Both sides are
DES processes, so detection latency — the dominant share of takeover
time — is simulated rather than assumed: a node that crashes at time
``t`` is declared dead in ``(t + lease_ms, t + lease_ms +
heartbeat_interval_ms + detector_poll_ms]``.

A restarted node simply resumes heartbeating; its next renewal revives
the lease, after which a fresh crash is detected again.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

from ..config import RecoveryConfig
from ..simulation.kernel import Simulator

#: ``listener(node_id, detected_at_ms)`` — fired once per declared death.
FailureListener = Callable[[int, float], None]


class LeaseManager:
    """Heartbeat processes per node + the gateway failure detector."""

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        config: RecoveryConfig,
        alive_fn: Callable[[int], bool],
    ):
        self.sim = sim
        self.config = config
        self._alive = alive_fn
        #: Last successful lease renewal per node; every node starts
        #: with a fresh lease at time zero.
        self._last_renewal: Dict[int, float] = {
            node_id: 0.0 for node_id in range(num_nodes)
        }
        self._declared_dead: Set[int] = set()
        self._failure_listeners: List[FailureListener] = []
        self._started = False
        self.detections = 0

    # -- wiring -----------------------------------------------------------

    def on_failure(self, listener: FailureListener) -> None:
        self._failure_listeners.append(listener)

    def start(self) -> None:
        """Spawn the heartbeat and detector processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for node_id in self._last_renewal:
            self.sim.process(
                self._heartbeat_process(node_id),
                name=f"heartbeat-node{node_id}",
            )
        self.sim.process(self._detector_process(), name="lease-detector")

    # -- queries ----------------------------------------------------------

    def is_declared_dead(self, node_id: int) -> bool:
        return node_id in self._declared_dead

    def last_renewal(self, node_id: int) -> float:
        return self._last_renewal[node_id]

    # -- processes --------------------------------------------------------

    def _heartbeat_process(self, node_id: int):
        interval = self.config.heartbeat_interval_ms
        while True:
            if self._alive(node_id):
                self._last_renewal[node_id] = self.sim.now
                # A restarted node's first heartbeat revives its lease;
                # the detector treats it as healthy from here on.
                self._declared_dead.discard(node_id)
            yield self.sim.timeout(interval)

    def _detector_process(self):
        lease = self.config.lease_ms
        poll = self.config.detector_poll_ms
        while True:
            yield self.sim.timeout(poll)
            now = self.sim.now
            for node_id, renewed_at in self._last_renewal.items():
                if node_id in self._declared_dead:
                    continue
                if now - renewed_at > lease:
                    self._declared_dead.add(node_id)
                    self.detections += 1
                    for listener in list(self._failure_listeners):
                        listener(node_id, now)
