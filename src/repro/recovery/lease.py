"""Lease-based failure detection.

Every function node holds a lease with the gateway and renews it with a
heartbeat while alive; the gateway's detector declares a node dead once
its lease has been silent for the configured duration.  The lease
book-keeping itself is clock-agnostic (:class:`LeaseTable`): timestamps
are passed in by the driver, so the same declare/revive semantics run
under the DES (:class:`LeaseManager`, where both sides are simulated
processes and detection latency is simulated rather than assumed) and
under wall-clock time (the live compute plane's gateway, which renews on
heartbeat frames and polls the table from an asyncio task).

Under the DES, a node that crashes at time ``t`` is declared dead in
``(t + lease_ms, t + lease_ms + heartbeat_interval_ms +
detector_poll_ms]``.  A restarted node simply resumes heartbeating; its
next renewal revives the lease, after which a fresh crash is detected
again.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set

from ..config import RecoveryConfig
from ..simulation.kernel import Simulator

#: ``listener(node_id, detected_at_ms)`` — fired once per declared death.
FailureListener = Callable[[int, float], None]


class LeaseTable:
    """Clock-agnostic lease book-keeping shared by sim and live planes.

    The table never reads a clock: ``renew`` and ``check`` take ``now``
    (milliseconds on whatever clock the driver uses — simulated or
    wall).  Drivers decide *when* to call; the table decides *what* a
    silence of more than ``lease_ms`` means.
    """

    def __init__(self, node_ids, lease_ms: float, *, start_ms: float = 0.0):
        self.lease_ms = float(lease_ms)
        #: Last successful lease renewal per node; every node starts
        #: with a fresh lease at ``start_ms``.
        self._last_renewal: Dict[int, float] = {
            node_id: float(start_ms) for node_id in node_ids
        }
        self._declared_dead: Set[int] = set()
        self._failure_listeners: List[FailureListener] = []
        self.detections = 0

    # -- wiring -----------------------------------------------------------

    def on_failure(self, listener: FailureListener) -> None:
        self._failure_listeners.append(listener)

    def add_node(self, node_id: int, now: float) -> None:
        """Register a node spawned after construction (live respawns)."""
        self._last_renewal[node_id] = now
        self._declared_dead.discard(node_id)

    # -- driver hooks ------------------------------------------------------

    def renew(self, node_id: int, now: float) -> None:
        """A heartbeat arrived: refresh the lease and revive the node.

        A restarted node's first heartbeat revives its lease; the
        detector treats it as healthy from here on.
        """
        self._last_renewal[node_id] = now
        self._declared_dead.discard(node_id)

    def check(self, now: float) -> List[int]:
        """Declare every node whose lease has expired; fire listeners.

        Returns the node ids newly declared dead by this poll (each node
        is declared at most once per life).
        """
        lease = self.lease_ms
        newly_dead: List[int] = []
        for node_id, renewed_at in self._last_renewal.items():
            if node_id in self._declared_dead:
                continue
            if now - renewed_at > lease:
                self._declared_dead.add(node_id)
                self.detections += 1
                newly_dead.append(node_id)
                for listener in list(self._failure_listeners):
                    listener(node_id, now)
        return newly_dead

    # -- queries ----------------------------------------------------------

    def is_declared_dead(self, node_id: int) -> bool:
        return node_id in self._declared_dead

    def last_renewal(self, node_id: int) -> float:
        return self._last_renewal[node_id]

    @property
    def node_ids(self):
        return self._last_renewal.keys()


class LeaseManager:
    """DES driver: heartbeat processes per node + the gateway detector.

    Composes a :class:`LeaseTable` with simulated heartbeat and poll
    processes, preserving the original detection-latency window.
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        config: RecoveryConfig,
        alive_fn: Callable[[int], bool],
    ):
        self.sim = sim
        self.config = config
        self._alive = alive_fn
        self.table = LeaseTable(range(num_nodes), config.lease_ms)
        self._started = False

    # -- wiring -----------------------------------------------------------

    def on_failure(self, listener: FailureListener) -> None:
        self.table.on_failure(listener)

    def start(self) -> None:
        """Spawn the heartbeat and detector processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for node_id in self.table.node_ids:
            self.sim.process(
                self._heartbeat_process(node_id),
                name=f"heartbeat-node{node_id}",
            )
        self.sim.process(self._detector_process(), name="lease-detector")

    # -- queries ----------------------------------------------------------

    @property
    def detections(self) -> int:
        return self.table.detections

    def is_declared_dead(self, node_id: int) -> bool:
        return self.table.is_declared_dead(node_id)

    def last_renewal(self, node_id: int) -> float:
        return self.table.last_renewal(node_id)

    # -- processes --------------------------------------------------------

    def _heartbeat_process(self, node_id: int):
        interval = self.config.heartbeat_interval_ms
        while True:
            if self._alive(node_id):
                self.table.renew(node_id, self.sim.now)
            yield interval

    def _detector_process(self):
        poll = self.config.detector_poll_ms
        while True:
            yield poll
            self.table.check(self.sim.now)
