"""Storage-plane chaos orchestration: timed kills and recoveries.

Node-level recovery (the coordinator/lease machinery in this package)
exercises the paper's *function-side* fault model.  This module drives
the *storage-side* one: the sequencer, individual log-shard replicas,
and KV partitions are killed mid-run on the DES timeline and recovered
through the mechanisms in :mod:`repro.storageplane` —

* **metalog** — :meth:`~repro.storageplane.ShardedLog.crash_sequencer`
  followed by a fenced failover at a higher epoch; workers holding the
  old epoch get :class:`~repro.errors.FencedEpochError` and rediscover;
* **shard replica** — at R>1 the primary's death promotes a survivor
  and the dead copy is later repaired from one; at R=1 the shard's
  index is lost entirely and rebuilt from the record directory plus the
  metalog's trim directory;
* **partition** — the store's contents are lost and rebuilt from the
  last checkpoint plus the redo journal; the controller snapshots the
  partition *before* the kill so the rebuild can be diffed key-by-key.

Every transition drops the affected slice of the node-side record cache
(:meth:`~repro.runtime.services.ServiceBackend.drop_shard_cache`) — a
cached record may predate the new serving replica's state and must not
be served after failover.

The controller only *schedules*; the actual timing runs through
``platform.at`` so storage events interleave with load, node crashes,
and GC exactly as the simulation orders them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..storageplane.audit import diff_partition_snapshots

#: Storage components the chaos grid can kill.  ``netsplit`` is listed
#: for completeness — link windows are armed via
#: :class:`~repro.config.StorageChaosConfig`, not via kill events.
STORAGE_COMPONENTS = ("metalog", "shard-replica", "partition", "netsplit")


class StorageChaosController:
    """Schedules storage-component crashes and recoveries on a platform.

    Construct with a :class:`~repro.harness.platform.SimPlatform` whose
    backend runs the *sharded* plane (a plain ``SharedLog`` has nothing
    to kill); ``schedule_*`` before ``platform.run``; call :meth:`heal`
    after the drain and before any consistency audit.
    """

    def __init__(self, platform):
        backend = platform.runtime.backend
        if not hasattr(backend.log, "metalog"):
            raise ValueError(
                "storage chaos needs the sharded plane; configure "
                "with_storage_plane(backend='sharded', ...)"
            )
        self.platform = platform
        self.backend = backend
        self.log = backend.log
        self.kv = backend.kv
        #: ``(event, sim_time_ms, attrs)`` in firing order.
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []
        #: Key-level diffs from partition rebuilds (empty ⇔ faithful).
        self.rebuild_diffs: List[str] = []
        self._partition_snapshots: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def _instant(self, name: str, **attrs: Any) -> None:
        now = self.platform.sim.now
        self.events.append((name, now, attrs))
        tracer = self.platform.tracer
        if tracer is not None:
            tracer.instant(name, now, **attrs)

    # ------------------------------------------------------------------
    # Metalog (sequencer)
    # ------------------------------------------------------------------

    def crash_sequencer(self) -> None:
        if not self.log.metalog.leader_alive:
            return
        self.log.crash_sequencer()
        self._instant("metalog-crash", epoch=self.log.epoch)

    def failover_sequencer(self) -> None:
        if self.log.metalog.leader_alive:
            return
        epoch = self.log.failover_sequencer()
        self._instant(
            "metalog-failover", epoch=epoch,
            invalidated=self.log.metalog.invalidated_allocations,
        )

    def schedule_sequencer_crash(
        self, crash_at_ms: float, failover_after_ms: float = 400.0
    ) -> None:
        """Kill the sequencer at ``crash_at_ms``; standby takes over
        ``failover_after_ms`` later at a fenced, higher epoch."""
        self.platform.at(crash_at_ms, self.crash_sequencer)
        self.platform.at(
            crash_at_ms + failover_after_ms, self.failover_sequencer
        )

    # ------------------------------------------------------------------
    # Log-shard replicas
    # ------------------------------------------------------------------

    def crash_shard(
        self, shard_id: int, replica: Optional[int] = None
    ) -> None:
        if shard_id in self.log.down_shards():
            return
        self.log.crash_shard_replica(shard_id, replica)
        # Whatever the record cache holds for this shard may predate the
        # promoted replica (or the upcoming rebuild): never serve it.
        evicted = self.backend.drop_shard_cache(shard_id)
        rs = self.log.replica_set(shard_id)
        self._instant(
            "shard-replica-crash", shard=shard_id,
            replica=replica, cache_evicted=evicted,
            down=shard_id in self.log.down_shards(),
            quorum=(rs.has_quorum if rs is not None else None),
        )

    def recover_shard(self, shard_id: int) -> None:
        """Bring every copy of ``shard_id`` back: repair dead replicas
        from survivors, or rebuild the index from the log when none
        survived (always the case at R=1)."""
        rs = self.log.replica_set(shard_id)
        if shard_id in self.log.down_shards():
            restored = self.log.rebuild_shard(shard_id)
            self.backend.drop_shard_cache(shard_id)
            self._instant(
                "shard-rebuild", shard=shard_id, streams=restored
            )
            return
        if rs is None:
            return
        repaired = [
            idx
            for idx, alive in enumerate(rs.live)
            if not alive and self.log.repair_shard_replica(shard_id, idx)
        ]
        if repaired:
            self._instant(
                "shard-repair", shard=shard_id, replicas=repaired
            )

    def schedule_shard_crash(
        self,
        crash_at_ms: float,
        shard_id: int = 0,
        recover_after_ms: float = 400.0,
        replica: Optional[int] = None,
    ) -> None:
        """Kill one replica of ``shard_id`` (default: the serving one)
        at ``crash_at_ms`` and repair/rebuild it later."""
        self.platform.at(
            crash_at_ms, lambda: self.crash_shard(shard_id, replica)
        )
        self.platform.at(
            crash_at_ms + recover_after_ms,
            lambda: self.recover_shard(shard_id),
        )

    # ------------------------------------------------------------------
    # KV partitions
    # ------------------------------------------------------------------

    def crash_partition(self, index: int) -> None:
        if index in self.kv.down_partitions():
            return
        # Snapshot the committed state so the rebuild can be audited
        # key-by-key, not just "did the invariants hold".
        self._partition_snapshots[index] = self.kv.snapshot_partition(
            index
        )
        self.kv.crash_partition(index)
        self._instant(
            "partition-crash", partition=index,
            journal=self.kv.journal_length(index),
        )

    def rebuild_partition(self, index: int) -> None:
        if index not in self.kv.down_partitions():
            return
        replayed = self.kv.rebuild_partition(index)
        before = self._partition_snapshots.pop(index, None)
        if before is not None:
            diffs = diff_partition_snapshots(
                before, self.kv.snapshot_partition(index)
            )
            self.rebuild_diffs.extend(
                f"partition {index}: {d}" for d in diffs
            )
        self._instant(
            "partition-rebuild", partition=index, replayed=replayed
        )

    def schedule_partition_crash(
        self,
        crash_at_ms: float,
        index: int = 0,
        rebuild_after_ms: float = 400.0,
    ) -> None:
        """Lose partition ``index`` at ``crash_at_ms``; rebuild it from
        checkpoint + journal ``rebuild_after_ms`` later."""
        self.platform.at(crash_at_ms, lambda: self.crash_partition(index))
        self.platform.at(
            crash_at_ms + rebuild_after_ms,
            lambda: self.rebuild_partition(index),
        )

    # ------------------------------------------------------------------
    # Healing + reporting
    # ------------------------------------------------------------------

    def heal(self) -> None:
        """Force-recover anything still down (idempotent).

        Run after the drain, before the exactly-once audit: the audit
        asks whether recovery *preserved* the guarantees, not whether
        the system limps while degraded — degraded-mode behaviour is
        covered by the rejected-operation counters instead.
        """
        self.failover_sequencer()
        for shard_id in range(self.log.num_shards):
            if (shard_id in self.log.down_shards()
                    or shard_id in self.log.quorum_lost_shards()):
                self.recover_shard(shard_id)
            else:
                rs = self.log.replica_set(shard_id)
                if rs is not None and rs.live_count < rs.replication:
                    self.recover_shard(shard_id)
        for index in list(self.kv.down_partitions()):
            self.rebuild_partition(index)

    def report(self) -> Dict[str, Any]:
        metalog = self.log.metalog
        return {
            "events": [
                {"event": name, "t_ms": round(t, 3), **attrs}
                for name, t, attrs in self.events
            ],
            "epoch": self.log.epoch,
            "failovers": metalog.failovers,
            "fenced_appends": metalog.fenced_appends,
            "invalidated_allocations": metalog.invalidated_allocations,
            "shard_rebuilds": self.log.rebuilds,
            "partition_rebuilds": self.kv.rebuilds,
            "rebuild_diffs": list(self.rebuild_diffs),
        }
