"""Single-version key-value store with conditional updates.

Models the external storage (Amazon DynamoDB in the paper's prototype).
The only capabilities the protocols require are plain get/put/delete and a
conditional update that compares a stored version attribute — exactly what
Halfmoon-write's pseudocode uses::

    DBWrite(key, cond="VERSION < {vNum}", update="VALUE=...; VERSION=...")

Version attributes are opaque, totally ordered Python values (Halfmoon-
write uses ``(cursorTS, consecutive_write_counter)`` tuples).  A missing
key compares below every version, so the first conditional write to a key
always lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import KeyMissingError, StoreError

#: Version attribute of a key that has never been conditionally written.
#: Compares below any real version tuple.
GENESIS_VERSION: Tuple = ()


@dataclass
class StoredObject:
    value: Any
    version: Any
    value_bytes: int


class KVStore:
    """In-memory KV store with byte accounting and conditional updates."""

    def __init__(self):
        self._data: Dict[str, StoredObject] = {}
        self._storage_bytes = 0
        self._reads = 0
        self._writes = 0
        self._conditional_writes = 0
        self._conditional_rejections = 0
        self._storage_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def storage_bytes(self) -> int:
        return self._storage_bytes

    @property
    def read_count(self) -> int:
        return self._reads

    @property
    def write_count(self) -> int:
        return self._writes

    @property
    def conditional_rejections(self) -> int:
        return self._conditional_rejections

    def add_storage_listener(self, listener: Callable[[int], None]) -> None:
        self._storage_listeners.append(listener)

    def _notify_storage(self) -> None:
        for listener in self._storage_listeners:
            listener(self._storage_bytes)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        self._reads += 1
        obj = self._data.get(key)
        if obj is None:
            raise KeyMissingError(f"key {key!r} not found")
        return obj.value

    def get_optional(self, key: str, default: Any = None) -> Any:
        self._reads += 1
        obj = self._data.get(key)
        return default if obj is None else obj.value

    def get_with_version(self, key: str) -> Tuple[Any, Any]:
        """Return ``(value, version)``; raises if the key is missing."""
        self._reads += 1
        obj = self._data.get(key)
        if obj is None:
            raise KeyMissingError(f"key {key!r} not found")
        return obj.value, obj.version

    def put(self, key: str, value: Any, value_bytes: int = 0) -> None:
        """Unconditional write; keeps the existing version attribute."""
        self._writes += 1
        old = self._data.get(key)
        version = old.version if old is not None else GENESIS_VERSION
        self._replace(key, StoredObject(value, version, int(value_bytes)))

    def conditional_put(
        self, key: str, value: Any, version: Any, value_bytes: int = 0
    ) -> bool:
        """Write iff the stored version is strictly smaller than ``version``.

        Returns ``True`` when the update was applied.  A rejected update is
        a normal outcome for Halfmoon-write's idempotent replay, not an
        error.
        """
        self._writes += 1
        self._conditional_writes += 1
        old = self._data.get(key)
        old_version = old.version if old is not None else GENESIS_VERSION
        if not self._version_less(old_version, version):
            self._conditional_rejections += 1
            return False
        self._replace(key, StoredObject(value, version, int(value_bytes)))
        return True

    def set_version(self, key: str, version: Any) -> None:
        """Force a key's version attribute (used by protocol switching)."""
        obj = self._data.get(key)
        if obj is None:
            raise KeyMissingError(f"key {key!r} not found")
        obj.version = version

    def delete(self, key: str) -> bool:
        obj = self._data.pop(key, None)
        if obj is None:
            return False
        self._storage_bytes -= obj.value_bytes
        self._notify_storage()
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _version_less(a: Any, b: Any) -> bool:
        """Total order with ``GENESIS_VERSION`` below everything."""
        if a == GENESIS_VERSION:
            return b != GENESIS_VERSION
        if b == GENESIS_VERSION:
            return False
        try:
            return a < b
        except TypeError as exc:  # incomparable version schemas
            raise StoreError(
                f"incomparable versions {a!r} and {b!r}"
            ) from exc

    def _replace(self, key: str, obj: StoredObject) -> None:
        old = self._data.get(key)
        if old is not None:
            self._storage_bytes -= old.value_bytes
        self._data[key] = obj
        self._storage_bytes += obj.value_bytes
        self._notify_storage()
