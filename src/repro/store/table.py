"""Table-level snapshot reads for Halfmoon-read.

The remark in Section 4.1 explains how table queries (scan / join /
aggregate) work under multi-versioning: first use ``logReadPrev`` on each
object's write log to collect the version numbers visible at a timestamp —
this list *is* a consistent snapshot of the table — then fetch those
versions.  Individual version numbers are unordered; only the write log
orders them, which is why the snapshot must be assembled through the log.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from ..errors import KeyMissingError
from ..sharedlog import SharedLog
from ..tags import object_tag
from .versioned import MultiVersionStore


class TableIndex:
    """Registry of which keys belong to which logical table.

    The paper suggests caching the database index in the logging layer as
    an optimisation; here the index is an explicit substrate object that
    applications register keys into.
    """

    def __init__(self):
        self._tables: Dict[str, List[str]] = {}

    def register(self, table: str, key: str) -> None:
        keys = self._tables.setdefault(table, [])
        if key not in keys:
            keys.append(key)

    def keys_of(self, table: str) -> List[str]:
        return list(self._tables.get(table, []))

    def tables(self) -> List[str]:
        return list(self._tables)


class TableSnapshotReader:
    """Assembles consistent table snapshots at a log timestamp."""

    def __init__(self, log: SharedLog, mv_store: MultiVersionStore,
                 index: TableIndex):
        self._log = log
        self._mv = mv_store
        self._index = index

    def snapshot_versions(self, table: str, max_seqnum: int) -> Dict[str, str]:
        """Map each key of ``table`` to the version number visible at
        ``max_seqnum``.  Keys with no committed write by then are omitted."""
        versions: Dict[str, str] = {}
        for key in self._index.keys_of(table):
            record = self._log.read_prev(object_tag(key), max_seqnum)
            if record is not None and "version" in record.data:
                versions[key] = record["version"]
        return versions

    def scan(self, table: str, max_seqnum: int) -> Dict[str, Any]:
        """Read every visible row of ``table`` as of ``max_seqnum``."""
        rows: Dict[str, Any] = {}
        for key, version_number in self.snapshot_versions(
            table, max_seqnum
        ).items():
            rows[key] = self._mv.read_version(key, version_number)
        return rows

    def aggregate(
        self,
        table: str,
        max_seqnum: int,
        fn: Callable[[Iterable[Any]], Any],
    ) -> Any:
        """Apply ``fn`` over all visible row values (e.g. ``sum``)."""
        return fn(self.scan(table, max_seqnum).values())
