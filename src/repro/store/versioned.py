"""Multi-version layer over the plain key-value store.

Halfmoon-read manages the external state with multi-versioning: every
write installs a *new* object version under a version number, and reads
locate the right version through the write log (Section 4.1).  Crucially,
the store itself needs nothing beyond plain KV APIs — version numbers are
unordered, opaque pointers, and the write log alone defines their order.

This layer therefore maps ``(key, version_number)`` to the composite key
``"{key}@{version_number}"`` in the underlying :class:`KVStore`, exactly
the implementation strategy Section 5.2 describes.  The bare key (no
``@``) is the single-version LATEST slot used by Halfmoon-write, so both
versioning schemas coexist in one store — which is what makes pauseless
protocol switching possible.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from ..errors import KeyMissingError, StoreError
from .kv import KVStore

_SEPARATOR = "@"


def version_key(key: str, version_number: str) -> str:
    """Composite store key for one version of an object."""
    if _SEPARATOR in key:
        raise StoreError(
            f"object keys must not contain {_SEPARATOR!r}: {key!r}"
        )
    return f"{key}{_SEPARATOR}{version_number}"


def split_version_key(composite: str) -> Tuple[str, str]:
    """Inverse of :func:`version_key`."""
    key, sep, version_number = composite.partition(_SEPARATOR)
    if not sep:
        raise StoreError(f"{composite!r} is not a versioned key")
    return key, version_number


class MultiVersionStore:
    """Versioned view over a shared :class:`KVStore`."""

    def __init__(self, kv: KVStore):
        self._kv = kv

    @property
    def kv(self) -> KVStore:
        return self._kv

    def write_version(
        self, key: str, version_number: str, value: Any, value_bytes: int = 0
    ) -> None:
        """Install a new object version.  Idempotent: re-installing the same
        version (a crash-retry between DBWrite and logging) just overwrites
        it with the identical value."""
        self._kv.put(version_key(key, version_number), value, value_bytes)

    def read_version(self, key: str, version_number: str) -> Any:
        try:
            return self._kv.get(version_key(key, version_number))
        except KeyMissingError:
            raise KeyMissingError(
                f"version {version_number!r} of key {key!r} not found"
            ) from None

    def has_version(self, key: str, version_number: str) -> bool:
        return version_key(key, version_number) in self._kv

    def delete_version(self, key: str, version_number: str) -> bool:
        return self._kv.delete(version_key(key, version_number))

    def list_versions(self, key: str) -> List[str]:
        """All resident version numbers for ``key`` (unordered pointers;
        only the write log defines their order)."""
        prefix = key + _SEPARATOR
        return [
            composite[len(prefix):]
            for composite in self._kv.keys()
            if composite.startswith(prefix)
        ]

    def version_count(self, key: str) -> int:
        return len(self.list_versions(key))

    def iter_versioned_keys(self) -> Iterator[Tuple[str, str]]:
        for composite in list(self._kv.keys()):
            if _SEPARATOR in composite:
                yield split_version_key(composite)
