"""External-state substrate: KV store, multi-versioning, table snapshots."""

from .kv import GENESIS_VERSION, KVStore, StoredObject
from .table import TableIndex, TableSnapshotReader
from .versioned import MultiVersionStore, split_version_key, version_key

__all__ = [
    "GENESIS_VERSION",
    "KVStore",
    "MultiVersionStore",
    "StoredObject",
    "TableIndex",
    "TableSnapshotReader",
    "split_version_key",
    "version_key",
]
