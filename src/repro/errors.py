"""Exception hierarchy for the Halfmoon reproduction.

Every error raised by this library derives from :class:`ReproError`, so that
callers can catch library failures without catching unrelated bugs.  The
crash-injection machinery uses :class:`CrashError`, which deliberately does
*not* derive from :class:`ReproError`: a crash is a simulated fault, not an
API misuse, and protocol code must never swallow it by accident.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class LogError(ReproError):
    """Base class for shared-log failures."""


class ConditionalAppendError(LogError):
    """A ``logCondAppend`` lost the race: the expected offset was taken.

    Carries the sequence number of the record that already occupies the
    expected position, so the losing instance can recover the winner's
    state (Section 5.1 of the paper).
    """

    def __init__(self, message: str, existing_seqnum: int):
        super().__init__(message)
        self.existing_seqnum = existing_seqnum


class TrimmedError(LogError):
    """A read targeted a log position that has been garbage collected."""


class StoreError(ReproError):
    """Base class for external-state (key-value store) failures."""


class KeyMissingError(StoreError):
    """The requested key (or key version) does not exist."""


class ConditionFailedError(StoreError):
    """A conditional update's predicate evaluated to false.

    Halfmoon-write relies on this outcome for idempotence, so callers treat
    it as a normal, expected result rather than a fault.
    """


class ServiceFaultError(ReproError):
    """An infrastructure service (shared log or store) misbehaved.

    This is the *second* fault dimension, orthogonal to instance crashes
    (:class:`CrashError`): the function instance is healthy, but a
    substrate it depends on returned an error, timed out, or browned out.
    ``retryable`` tells the runtime whether re-executing the instance can
    help; the services-layer retry loop has already exhausted its
    per-operation budget by the time one of these escapes.
    """

    retryable = False

    def __init__(self, message: str, service: str = "", op: str = ""):
        super().__init__(message)
        self.service = service
        self.op = op


class TransientServiceError(ServiceFaultError):
    """A fault expected to clear on retry (error reply, dropped request)."""

    retryable = True


class ServiceTimeoutError(TransientServiceError):
    """An operation exceeded its per-attempt timeout or overall deadline."""


class ServiceUnavailableError(TransientServiceError):
    """The per-operation retry budget was exhausted without success.

    Still ``retryable`` at the *instance* level: the runtime abandons the
    attempt (charging fault-detection delay) and re-executes, exactly as
    it would after a crash — the exactly-once machinery makes the replay
    safe.
    """


class StorageUnavailableError(TransientServiceError):
    """A storage-plane component (sequencer, shard, partition) is down.

    The third fault dimension after instance crashes and injected
    substrate faults: the storage plane itself lost a component and is
    between crash and recovery.  Retryable — the operation is rejected
    *before* taking effect, so riding out the window with backoff (and
    eventually instance-level re-execution) is duplicate-free.
    """


class FencedEpochError(TransientServiceError):
    """An append carried a stale metalog epoch and was fenced.

    Raised by the sequencer *before* the append takes any effect: a
    leader failover bumped the metalog epoch, and requests stamped with
    the previous epoch are rejected outright.  Unlike the other
    transient faults this is **retryable after rediscovery**, not after
    blind backoff — the caller must refresh its cached leader epoch and
    resend, which the services layer does at a fixed rediscovery cost
    instead of walking the exponential backoff schedule.  Because the
    fenced request never applied, the re-stamped retry cannot duplicate
    the record.
    """

    def __init__(self, message: str, stale_epoch: int = 0,
                 current_epoch: int = 0, service: str = "log",
                 op: str = ""):
        super().__init__(message, service=service, op=op)
        self.stale_epoch = stale_epoch
        self.current_epoch = current_epoch


class QuorumLostError(StorageUnavailableError):
    """A replicated log shard has fewer live replicas than a write quorum.

    Appends require a majority ack (Section "Storage failure model" in
    docs/PROTOCOLS.md); reads keep failing over to any live replica, so
    only the write path degrades until re-replication restores quorum.
    """

    def __init__(self, message: str, shard: int = -1,
                 service: str = "log", op: str = ""):
        super().__init__(message, service=service, op=op)
        self.shard = shard


class PartitionUnavailableError(StorageUnavailableError):
    """A KV partition was lost and is being rebuilt from its redo journal.

    Operations routed to the partition are rejected before any effect
    during the rebuild window; the window is visible as a degraded mode
    in the breaker/metrics layer.
    """

    def __init__(self, message: str, partition: int = -1,
                 service: str = "store", op: str = ""):
        super().__init__(message, service=service, op=op)
        self.partition = partition


class PermanentServiceError(ServiceFaultError):
    """A fault that retries cannot fix (misconfiguration, data loss)."""


class RuntimeStateError(ReproError):
    """The serverless runtime was driven through an invalid transition."""


class InvocationError(RuntimeStateError):
    """An SSF invocation could not be started or completed."""


class RetriesExhaustedError(InvocationError):
    """An invocation kept crashing past the configured retry budget."""


class ProtocolError(ReproError):
    """A logging protocol was used incorrectly or detected corruption."""


class SwitchError(ProtocolError):
    """Protocol switching was driven through an invalid transition."""


class ConsistencyViolation(ReproError):
    """A recorded history failed a consistency check."""


class CrashError(BaseException):
    """Injected crash of a running SSF instance.

    Derives from :class:`BaseException` so that ``except Exception`` blocks
    inside simulated functions cannot mask an injected fault, mirroring how
    a real process crash preempts application-level error handling.
    """

    def __init__(self, message: str = "injected crash"):
        super().__init__(message)
