"""Tag-namespace conventions for the shared log.

Every sub-stream tag is namespaced by a one-letter prefix so the garbage
collector and the switch manager can enumerate streams by kind:

* ``i:<instance_id>`` — an SSF invocation's *step log* (its execution
  history: init / read / write / invoke records);
* ``k:<key>``        — an object's *write log* (Halfmoon-read commit
  records, ordered by seqnum);
* ``x:<scope>``      — the *transition log* recording protocol switches
  (Section 4.7); ``scope`` is ``"*"`` for the global switch used by the
  paper's experiments, or an object key for per-object switching.
"""

from __future__ import annotations

INSTANCE_PREFIX = "i:"
OBJECT_PREFIX = "k:"
TRANSITION_PREFIX = "x:"
CHECKPOINT_PREFIX = "c:"

GLOBAL_SCOPE = "*"


def instance_tag(instance_id: str) -> str:
    """Tag of an SSF invocation's step log sub-stream."""
    return INSTANCE_PREFIX + instance_id


def object_tag(key: str) -> str:
    """Tag of an object's write-log sub-stream."""
    return OBJECT_PREFIX + key


def transition_tag(scope: str = GLOBAL_SCOPE) -> str:
    """Tag of the transition log recording protocol switches."""
    return TRANSITION_PREFIX + scope


def checkpoint_tag(instance_id: str) -> str:
    """Stream of opportunistic read checkpoints (Section 7).

    Kept separate from the step log so background appends never disturb
    the offsets that ``logCondAppend`` conditions on.
    """
    return CHECKPOINT_PREFIX + instance_id


def is_checkpoint_tag(tag: str) -> bool:
    """True when ``tag`` names a read-checkpoint sub-stream."""
    return tag.startswith(CHECKPOINT_PREFIX)


def is_instance_tag(tag: str) -> bool:
    """True when ``tag`` names a step-log sub-stream."""
    return tag.startswith(INSTANCE_PREFIX)


def is_object_tag(tag: str) -> bool:
    """True when ``tag`` names an object write-log sub-stream."""
    return tag.startswith(OBJECT_PREFIX)


def is_transition_tag(tag: str) -> bool:
    """True when ``tag`` names a transition-log sub-stream."""
    return tag.startswith(TRANSITION_PREFIX)


def tag_key(tag: str) -> str:
    """Extract the object key from a ``k:`` tag."""
    if not is_object_tag(tag):
        raise ValueError(f"not an object tag: {tag!r}")
    return tag[len(OBJECT_PREFIX):]


def tag_instance(tag: str) -> str:
    """Extract the instance id from an ``i:`` tag."""
    if not is_instance_tag(tag):
        raise ValueError(f"not an instance tag: {tag!r}")
    return tag[len(INSTANCE_PREFIX):]
