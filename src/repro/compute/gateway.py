"""The ``localhost`` compute backend: asyncio gateway + process pool.

This is the live counterpart of :class:`~repro.harness.platform
.SimPlatform`: the same protocols, the same storage plane, the same
recovery machinery — but the concurrency, the clocks, and the deaths
are real.  One asyncio gateway process

* serves the actual :class:`~repro.storageplane.StoragePlane` over a
  unix socket (operations from all workers serialize in the event
  loop, exactly where a real storage service would serialize them),
* dispatches invocations to a pool of ``spawn``-ed worker processes,
  each running the full :class:`~repro.runtime.local.LocalRuntime`
  stack against an RPC proxy plane,
* drives the shared clock-agnostic lease machinery
  (:class:`~repro.recovery.lease.LeaseTable`) with wall-clock
  heartbeats, so failure detection latency is measured wall time,
* reuses :class:`~repro.recovery.coordinator.RecoveryCoordinator`
  (``now_fn`` = wall clock) for orphan takeover: a declared-dead
  worker's in-flight invocations are re-dispatched to survivors with
  the same instance id, and the protocol replay does the rest,
* consults a per-worker :class:`~repro.faults.CircuitBreaker` at
  dispatch and paces retries with the shared
  :class:`~repro.faults.RetryPolicy`'s deterministic jitter,
* optionally bounds admission (``max_inflight``): past the bound,
  arrivals are shed deterministically — counted in the
  ``admission_rejections`` metric, never started, never audited —
  instead of growing the queue without limit,
* group-commits the log append stream when the storage plane runs the
  ``batched`` sequencer (:class:`_AppendCoalescer`): append/cond_append
  OP frames buffer until ``sequencer_batch`` of them (or
  ``sequencer_hold_ms``) and execute back-to-back, so one sequencer
  flush covers the whole batch and no RESULT leaves the gateway while
  its commit is still buffered, and
* feeds wall-clock latencies into the same MetricsRegistry /
  LatencyBreakdown / Chrome-trace pipeline the DES uses.

:class:`~repro.compute.chaos.LiveChaosController` injects real
``SIGKILL``s: the gateway applies an armed invocation's KV write, kills
the worker, and never replies — durable effect, unrecorded completion,
the adversarial case the exactly-once audit exists for.

Graceful shutdown: SIGTERM/SIGINT stops admission, drains in-flight
invocations, and still produces a (partial) result.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

import multiprocessing as mp

from ..config import SystemConfig
from ..faults import CircuitBreaker, RetryPolicy
from ..observe import (
    CAT_ATTEMPT,
    CAT_INVOCATION,
    CAT_QUEUE,
    CAT_RECOVERY,
    CAT_SERVICE,
    LatencyBreakdown,
    Span,
    Tracer,
)
from ..observe.distributed import (
    WORKER_SPAN_BLOCK,
    ParentRef,
    TelemetrySink,
)
from ..observe.flightrec import FlightRecorder
from ..recovery import LeaseTable, Orphan, RecoveryCoordinator
from ..runtime.local import LocalRuntime
from ..runtime.services import ServiceBackend
from ..simulation.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)
from ..simulation.rng import derive_seed
from ..workloads.base import Request, Workload
from . import rpc
from .base import ComputePlane, register_backend
from .chaos import KillEvent, LiveChaosController
from .worker import WorkloadSpec, worker_main

#: (target, method) → cost-kind label for wall-clock op accounting.
_OP_KIND = {
    ("log", "append"): "log_append",
    ("log", "cond_append"): "log_append",
    ("log", "read_prev"): "log_read",
    ("log", "read_next"): "log_read",
    ("log", "read_stream"): "log_read",
    ("log", "_record_at_offset"): "log_read",
    ("kv", "get_optional"): "db_read",
    ("kv", "get_with_version"): "db_read",
    ("kv", "put"): "db_write",
    ("kv", "conditional_put"): "db_cond_write",
    ("mv", "read_version"): "db_read_version",
    ("mv", "write_version"): "db_write_version",
}


@dataclass
class _WorkerSlot:
    """Gateway-side state for one worker process."""

    worker_id: int
    process: Any
    breaker: CircuitBreaker
    writer: Optional[asyncio.StreamWriter] = None
    busy_with: Optional[str] = None
    alive: bool = True
    #: Latched once the failure detector declares this worker dead —
    #: a late frame from a not-actually-dead worker must not revive
    #: its lease or trigger a second takeover/respawn.
    declared: bool = False
    invocations: int = 0
    spawned_at_ms: float = 0.0
    #: Set by the READY frame: the worker finished building its runtime
    #: stack and is safe to dispatch to (an INVOKE before that would
    #: interleave with its setup RPCs).
    ready: bool = False
    #: Last storage op this worker was sent a RESULT for — the forensic
    #: anchor a SIGKILL dump names ("the worker saw up to here").
    last_acked_op: Optional[str] = None

    @property
    def connected(self) -> bool:
        return self.writer is not None and self.alive

    @property
    def idle(self) -> bool:
        return self.connected and self.ready and self.busy_with is None


class _AppendCoalescer:
    """Event-loop group commit for the log append stream.

    With the ``batched`` sequencer, a commit acknowledged the instant
    its append executes may still sit in the sequencer's buffer.  The
    coalescer closes that window: append/cond_append OP frames park
    here until ``batch`` of them arrive (or ``hold_ms`` passes), then
    the whole batch executes back-to-back and the sequencer is flushed
    *before* control returns to the event loop — so every RESULT a
    worker observes describes a committed append.  Workers block on
    their RESULT, so each can have at most one frame parked.
    """

    __slots__ = ("plane", "batch", "hold_s", "_pending",
                 "_flush_handle", "flushes", "coalesced", "max_batch")

    def __init__(self, plane: "LocalhostComputePlane", batch: int,
                 hold_ms: float):
        self.plane = plane
        self.batch = max(1, int(batch))
        self.hold_s = max(0.0, float(hold_ms)) / 1000.0
        self._pending: List[Any] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self.flushes = 0
        self.coalesced = 0
        self.max_batch = 0

    def submit(self, slot: "_WorkerSlot", frame: Any) -> None:
        self._pending.append((slot, frame))
        self.coalesced += 1
        if len(self._pending) >= self.batch:
            self.flush()
        elif self._flush_handle is None:
            self._flush_handle = asyncio.get_running_loop().call_later(
                self.hold_s, self.flush
            )

    def flush(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.flushes += 1
        self.max_batch = max(self.max_batch, len(pending))
        for slot, frame in pending:
            self.plane._execute_op(slot, frame)
        # One sequencer flush covers the batch; nothing downstream of
        # this method runs until it returns, so the RESULT frames
        # written above cannot be observed before the commits land.
        sequencer = getattr(self.plane.backend.log, "sequencer", None)
        flush_commits = getattr(sequencer, "flush", None)
        if flush_commits is not None:
            flush_commits()

    def stats(self) -> Dict[str, Any]:
        return {
            "coalesced": self.coalesced,
            "flushes": self.flushes,
            "max_batch": self.max_batch,
            "mean_batch": (self.coalesced / self.flushes
                           if self.flushes else 0.0),
        }


@dataclass
class _Inflight:
    """One admitted invocation, from arrival to (deduped) completion."""

    instance_id: str
    request: Request
    arrival_ms: float
    attempt: int = 1
    pending_since_ms: float = 0.0
    dispatched_at_ms: float = 0.0
    worker_id: int = -1
    #: Exact-sum stage vector (wall ms); remainder lands in "compute".
    stages: Dict[str, float] = field(default_factory=dict)
    ops_wall_ms: float = 0.0
    root_span: Optional[Span] = None
    queue_span: Optional[Span] = None
    attempt_span: Optional[Span] = None


class LocalhostComputePlane(ComputePlane):
    """Real-process execution on one machine (Lithops-localhost shape)."""

    name = "localhost"

    def __init__(
        self,
        workload: Workload,
        protocol: str,
        config: Optional[SystemConfig] = None,
        enable_switching: bool = False,
        tracer: Optional[Tracer] = None,
        *,
        workload_spec: Optional[WorkloadSpec] = None,
        num_workers: int = 4,
        kills: int = 0,
        requests: Optional[int] = None,
        compute_sleep_scale: float = 1.0,
        crash_f: float = 0.0,
        deadline_s: float = 180.0,
        telemetry: Optional[bool] = None,
        flightrec_dir: Optional[str] = None,
        max_inflight: Optional[int] = None,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None: off)")
        if enable_switching:
            raise NotImplementedError(
                "protocol switching is not wired into the live plane yet"
            )
        if workload_spec is None:
            raise ValueError(
                "localhost backend needs a picklable workload_spec "
                "(workers instantiate their own workload copy)"
            )
        self.config = (config if config is not None
                       else SystemConfig()).validate()
        self.protocol = protocol
        self.workload = workload
        self.workload_spec = workload_spec
        self.num_workers = int(num_workers)
        self.requests_override = requests
        self.compute_sleep_scale = compute_sleep_scale
        self.crash_f = crash_f
        self.deadline_s = deadline_s
        self.tracer = tracer
        #: Telemetry shipping defaults to "on iff traced": a traced run
        #: wants the worker spans; an untraced, un-opted-in run must
        #: send zero extra RPCs (the PR 3 invariant, live edition).
        self.telemetry = (tracer is not None if telemetry is None
                          else bool(telemetry))
        self.flightrec_dir = flightrec_dir
        self.flightrec = FlightRecorder("gateway", self._now)
        self._discovery_path: Optional[str] = None

        # Gateway-side stack: the REAL plane + a runtime used only for
        # populate and post-run audit probes (never for the workload).
        self.backend = ServiceBackend(self.config)
        self._runtime = LocalRuntime(
            self.config, protocol=protocol, backend=self.backend
        )
        self.backend.tracer = tracer
        self._t0 = time.monotonic()
        self._runtime.now_fn = self._now
        workload.register(self._runtime)
        workload.populate(self._runtime)

        metrics = self.backend.metrics
        self.latencies = metrics.register(
            "request_latency", LatencyRecorder("request-latency")
        )
        self.latency_series = metrics.register(
            "latency_over_time", TimeSeries("latency-over-time")
        )
        self.throughput = metrics.register("completions", ThroughputMeter())
        self.detection_latency = metrics.register(
            "failure_detection_latency",
            LatencyRecorder("failure-detection"),
        )
        self.breakdown = LatencyBreakdown(protocol)
        self._op_wall: Dict[str, LatencyRecorder] = {}
        self.log_gauge = metrics.register(
            "storage_bytes",
            TimeWeightedGauge("log-bytes", 0.0,
                              self.backend.log.storage_bytes()),
            store="log",
        )
        self.db_gauge = metrics.register(
            "storage_bytes",
            TimeWeightedGauge("db-bytes", 0.0,
                              self.backend.kv.storage_bytes()),
            store="db",
        )
        self.backend.log.add_storage_listener(
            lambda b: self.log_gauge.set(b, self._now())
        )
        self.backend.kv.add_storage_listener(
            lambda b: self.db_gauge.set(b, self._now())
        )
        self.telemetry_sink = TelemetrySink(tracer, metrics)
        self.rpc_frame_errors = metrics.counters("rpc_frame_errors")
        self.status_queries = 0

        # Admission control: None = unbounded (the historical default);
        # an integer bounds |inflight| and sheds deterministically past
        # it — the shed count is the ``admission_rejections`` metric.
        self.max_inflight = max_inflight
        self.rejected_requests = 0
        self._admission_counter = metrics.counters("admission_rejections")
        # Gateway-side group commit, active only when the storage plane
        # actually runs a batched sequencer (sharded backend).
        self._coalescer: Optional[_AppendCoalescer] = None
        if (self.config.storage.sequencer == "batched"
                and hasattr(self.backend.log, "sequencer")):
            self._coalescer = _AppendCoalescer(
                self,
                self.config.storage.sequencer_batch,
                self.config.storage.sequencer_hold_ms,
            )

        recovery = self.config.recovery
        self.lease = LeaseTable((), recovery.lease_ms)
        self.coordinator = RecoveryCoordinator(
            self._now, self._runtime.tracker, self._enqueue_orphan,
            tracer=tracer,
        )
        metrics.register("takeover_latency",
                         self.coordinator.takeover_latency)
        self.retry_policy = RetryPolicy.from_config(self.config.resilience)
        self._dispatch_jitter = self.backend.rng.stream("live-dispatch")
        self.chaos: Optional[LiveChaosController] = None
        self._kills_requested = int(kills)

        # Run state --------------------------------------------------------
        self._slots: Dict[int, _WorkerSlot] = {}
        self._next_worker_id = 0
        self._inflight: Dict[str, _Inflight] = {}
        self._completed: Set[str] = set()
        self._failed: Dict[str, str] = {}
        self.duplicate_completions = 0
        self.crashed_attempts = 0
        self._time_by_kind: Dict[str, float] = {}
        self.faulted_attempts = 0
        self.node_crashes = 0
        self.orphaned_invocations = 0
        self._workers_ever = 0
        self._queue: "asyncio.Queue[str]" = None  # created inside the loop
        self._idle_event: Optional[asyncio.Event] = None
        self._done_event: Optional[asyncio.Event] = None
        self._draining = False
        self.aborted_reason: Optional[str] = None
        self._issued = 0
        self._arrivals_done = False
        self._warmup_ms = 0.0
        self._sockdir: Optional[tempfile.TemporaryDirectory] = None
        self._socket_path = ""
        self.on_request_complete = None

    # -- ComputePlane ----------------------------------------------------

    @property
    def runtime(self) -> LocalRuntime:
        return self._runtime

    @property
    def on_request_complete(self):
        return self._on_request_complete

    @on_request_complete.setter
    def on_request_complete(self, callback) -> None:
        self._on_request_complete = callback

    def _now(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    # -- entry point -----------------------------------------------------

    def run(
        self,
        rate_per_s: float,
        duration_ms: float,
        warmup_ms: float = 0.0,
        drain_ms: float = 5_000.0,
    ):
        """Issue a seeded open-loop schedule and drive it to completion.

        ``rate_per_s`` and ``duration_ms`` fix the request count
        (``rate × duration``, overridable via the constructor) and the
        seeded exponential inter-arrival gaps; unlike the DES the run
        ends when every admitted request has completed (or the deadline
        or a drain signal cuts it short), not at a simulated horizon.
        """
        self._warmup_ms = warmup_ms
        total = (self.requests_override
                 if self.requests_override is not None
                 else max(1, round(rate_per_s * duration_ms / 1000.0)))
        self.chaos = LiveChaosController(
            self._kills_requested, total,
            self.backend.rng.stream("live-chaos"),
        )
        self._t0 = time.monotonic()
        asyncio.run(self._run_async(rate_per_s, total))
        return self._build_result(rate_per_s, duration_ms)

    # -- async orchestration ---------------------------------------------

    async def _run_async(self, rate_per_s: float, total: int) -> None:
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._idle_event = asyncio.Event()
        self._done_event = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._begin_drain,
                                        signal.Signals(sig).name)
            except (NotImplementedError, RuntimeError):
                pass

        self._sockdir = tempfile.TemporaryDirectory(prefix="repro-live-")
        self._socket_path = os.path.join(self._sockdir.name, "gateway.sock")
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self._socket_path
        )
        self._write_discovery_file()
        _ensure_child_pythonpath()
        for _ in range(self.num_workers):
            self._spawn_worker()

        tasks = [
            asyncio.ensure_future(self._arrival_task(rate_per_s, total)),
            asyncio.ensure_future(self._dispatch_task()),
            asyncio.ensure_future(self._detector_task()),
        ]
        for task in tasks:
            task.add_done_callback(self._task_crashed)
        try:
            await asyncio.wait_for(
                self._done_event.wait(), timeout=self.deadline_s
            )
        except asyncio.TimeoutError:
            self.aborted_reason = (
                f"deadline ({self.deadline_s:.0f}s) exceeded with "
                f"{len(self._inflight)} invocations outstanding"
            )
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            await self._shutdown_workers()
            server.close()
            await server.wait_closed()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            self._remove_discovery_file()
            if self._sockdir is not None:
                self._sockdir.cleanup()
                self._sockdir = None

    def _task_crashed(self, task: "asyncio.Task") -> None:
        """A gateway task must never die silently: abort the run with
        the error instead of hanging until the deadline."""
        if task.cancelled():
            return
        exc = task.exception()
        if exc is None:
            return
        import traceback

        traceback.print_exception(type(exc), exc, exc.__traceback__)
        self.aborted_reason = (
            f"gateway task crashed: {type(exc).__name__}: {exc}"
        )
        if self._done_event is not None:
            self._done_event.set()

    def _begin_drain(self, signame: str) -> None:
        """SIGTERM/SIGINT: stop admission, let in-flight work finish."""
        if not self._draining:
            self._draining = True
            self.aborted_reason = f"drained on {signame}"
            self._check_done()

    def _check_done(self) -> None:
        outstanding = len(self._inflight)
        if outstanding == 0 and (self._arrivals_done or self._draining):
            self._done_event.set()

    # -- observability plumbing --------------------------------------------

    def _write_discovery_file(self) -> None:
        """Publish the gateway socket for ``python -m repro top``.

        Only written when a flight-recorder directory is configured —
        that directory doubles as the rendezvous point, so unobserved
        runs leave no files behind.
        """
        if self.flightrec_dir is None:
            return
        os.makedirs(self.flightrec_dir, exist_ok=True)
        self._discovery_path = os.path.join(
            self.flightrec_dir, "live-gateway.json"
        )
        with open(self._discovery_path, "w", encoding="utf-8") as f:
            json.dump({
                "socket": self._socket_path,
                "pid": os.getpid(),
                "protocol": self.protocol,
            }, f)

    def _remove_discovery_file(self) -> None:
        if self._discovery_path is not None:
            try:
                os.remove(self._discovery_path)
            except OSError:
                pass
            self._discovery_path = None

    def dump_flightrecorder(
        self, trigger: str, meta: Optional[Dict[str, Any]] = None
    ) -> Optional[str]:
        """Dump the gateway ring (+ each worker's last-shipped window)
        to ``flightrec_dir``; no-op (returns None) when undirected."""
        if self.flightrec_dir is None:
            return None
        lanes = {
            f"worker-{wid}": events
            for wid, events in self.telemetry_sink.worker_flightrec.items()
        }
        return self.flightrec.dump(
            self.flightrec_dir, trigger, meta=meta, extra_lanes=lanes
        )

    def _status_payload(self) -> Dict[str, Any]:
        """Point-in-time run state served on STATUS frames."""
        now = self._now()
        workers = []
        for slot in self._slots.values():
            workers.append({
                "worker": slot.worker_id,
                "alive": slot.alive,
                "ready": slot.ready,
                "declared": slot.declared,
                "busy_with": slot.busy_with,
                "invocations": slot.invocations,
                "last_acked_op": slot.last_acked_op,
            })
        have = self.latencies.count > 0
        return {
            "now_ms": now,
            "protocol": self.protocol,
            "issued": self._issued,
            "completed": len(self._completed),
            "inflight": len(self._inflight),
            "rejected": self.rejected_requests,
            "failed": len(self._failed),
            "kills": self.chaos.delivered if self.chaos else 0,
            "orphans": self.orphaned_invocations,
            "recovered": self.coordinator.recovered,
            "duplicates": self.duplicate_completions,
            "rate_per_s": self.throughput.rate_per_sec(),
            "median_ms": self.latencies.median() if have else 0.0,
            "p99_ms": self.latencies.p99() if have else 0.0,
            "telemetry_batches": self.telemetry_sink.batches,
            "rpc_frame_errors": sum(
                self.rpc_frame_errors.as_dict().values()
            ),
            "workers": workers,
            "aborted": self.aborted_reason,
        }

    # -- workers ----------------------------------------------------------

    def _spawn_worker(self) -> _WorkerSlot:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        worker_config = self.config.with_seed(
            derive_seed(self.config.seed, f"live-worker-{worker_id}")
        )
        # Traced runs hand each worker a disjoint block of the gateway
        # tracer's span-id space, so shipped spans keep their ids and
        # cross-process parent links survive absorption verbatim.
        span_base = None
        if self.tracer is not None and self.telemetry:
            span_base = self.tracer.reserve_block(WORKER_SPAN_BLOCK)
        ctx = mp.get_context("spawn")
        process = ctx.Process(
            target=worker_main,
            args=(
                self._socket_path, worker_id, worker_config,
                self.protocol, self.workload_spec,
                self.config.recovery.heartbeat_interval_ms,
                self.compute_sleep_scale, self.crash_f,
                self._t0, span_base, self.telemetry,
            ),
            daemon=True,
            name=f"repro-live-worker-{worker_id}",
        )
        process.start()
        slot = _WorkerSlot(
            worker_id, process,
            CircuitBreaker(
                f"worker-{worker_id}",
                failure_threshold=(
                    self.config.resilience.breaker_failure_threshold
                ),
                cooldown_ops=self.config.resilience.breaker_cooldown_ops,
            ),
        )
        slot.spawned_at_ms = self._now()
        self._slots[worker_id] = slot
        self._workers_ever += 1
        self.flightrec.record("spawn", worker=worker_id,
                              pid=process.pid or -1,
                              traced=span_base is not None)
        # The lease clock starts at HELLO, not here: spawn + interpreter
        # start-up can exceed the lease, and a worker must not be
        # declared dead before it had a chance to heartbeat.
        return slot

    async def _shutdown_workers(self) -> None:
        if self._coalescer is not None:
            # Answer any worker still parked behind the hold window
            # before telling it to shut down.
            self._coalescer.flush()
        for slot in self._slots.values():
            if slot.connected:
                try:
                    rpc.write_frame_async(slot.writer, (rpc.SHUTDOWN,))
                    await slot.writer.drain()
                except (ConnectionError, OSError):
                    pass
        deadline = time.monotonic() + 5.0
        for slot in self._slots.values():
            slot.process.join(max(0.1, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(1.0)

    # -- tasks -------------------------------------------------------------

    async def _arrival_task(self, rate_per_s: float, total: int) -> None:
        request_rng = self.backend.rng.stream("requests")
        arrival_rng = self.backend.rng.stream("arrivals")
        mean_gap_s = 1.0 / rate_per_s if rate_per_s > 0 else 0.0
        for _ in range(total):
            if self._draining:
                break
            request = self.workload.next_request(request_rng)
            self._admit(request)
            if mean_gap_s:
                await asyncio.sleep(
                    float(arrival_rng.exponential(mean_gap_s))
                )
        self._arrivals_done = True
        self._check_done()

    def _admit(self, request: Request) -> None:
        now = self._now()
        if (self.max_inflight is not None
                and len(self._inflight) >= self.max_inflight):
            # Deterministic shed: the decision depends only on the
            # (seeded) arrival sequence and completion order, not on a
            # coin flip.  A shed request is never started — no instance
            # id, no tracker entry, no audit obligation.
            self.rejected_requests += 1
            self._admission_counter.add("shed")
            self.flightrec.record(
                "admission-shed", func=request.func_name,
                inflight=len(self._inflight),
            )
            return
        instance_id = self._runtime.new_instance_id()
        self._runtime.tracker.start(
            instance_id, self.backend.log.next_seqnum
        )
        inv = _Inflight(instance_id, request, arrival_ms=now,
                        pending_since_ms=now)
        if self.tracer is not None:
            inv.root_span = self.tracer.start_span(
                f"invoke:{request.func_name}", CAT_INVOCATION, now,
                trace_id=instance_id, func=request.func_name, live=True,
            )
            inv.queue_span = inv.root_span.child(
                "worker-queue", CAT_QUEUE, now
            )
        self._inflight[instance_id] = inv
        self._issued += 1
        self._queue.put_nowait(instance_id)

    async def _dispatch_task(self) -> None:
        while True:
            instance_id = await self._queue.get()
            inv = self._inflight.get(instance_id)
            if inv is None:
                continue
            attempt = 0
            while True:
                slot = self._pick_worker()
                if slot is not None:
                    self._dispatch(inv, slot)
                    break
                attempt += 1
                backoff_ms = self.retry_policy.backoff_ms(
                    min(attempt, self.retry_policy.max_attempts),
                    self._dispatch_jitter,
                )
                self._idle_event.clear()
                try:
                    await asyncio.wait_for(
                        self._idle_event.wait(), backoff_ms / 1000.0
                    )
                except asyncio.TimeoutError:
                    pass

    def _pick_worker(self) -> Optional[_WorkerSlot]:
        best = None
        for slot in self._slots.values():
            if not slot.idle:
                continue
            # consult() is True while the breaker is open (degraded):
            # prefer other workers until this one's cooldown elapses.
            if slot.breaker.consult():
                continue
            if best is None or slot.invocations < best.invocations:
                best = slot
        return best

    def _dispatch(self, inv: _Inflight, slot: _WorkerSlot) -> None:
        now = self._now()
        inv.stages["queue_wait"] = (
            inv.stages.get("queue_wait", 0.0) + now - inv.pending_since_ms
        )
        inv.dispatched_at_ms = now
        inv.worker_id = slot.worker_id
        inv.ops_wall_ms = 0.0
        slot.busy_with = inv.instance_id
        slot.invocations += 1
        if inv.queue_span is not None:
            inv.queue_span.finish(now)
            inv.queue_span = None
        if inv.root_span is not None:
            inv.attempt_span = inv.root_span.child(
                f"attempt-{inv.attempt}", CAT_ATTEMPT, now,
                attempt=inv.attempt, node=slot.worker_id,
            )
        self.flightrec.record(
            "dispatch", instance=inv.instance_id,
            worker=slot.worker_id, attempt=inv.attempt,
        )
        # Trace context header: the worker parents its execution span
        # (and, transitively, its per-op RPC spans) under this attempt.
        ctx = None
        if self.telemetry and inv.attempt_span is not None:
            ctx = (inv.instance_id, inv.attempt_span.span_id)
        invoke = (rpc.INVOKE, inv.instance_id, inv.request.func_name,
                  inv.request.input)
        try:
            rpc.write_frame_async(
                slot.writer, invoke if ctx is None else invoke + (ctx,)
            )
        except (ConnectionError, OSError, RuntimeError):
            # The worker died between pick and write: give the slot's
            # lease-expiry path its orphan handling, requeue now.
            slot.alive = False
            slot.breaker.record_failure()
            slot.busy_with = None
            inv.pending_since_ms = now
            if inv.attempt_span is not None:
                inv.attempt_span.finish(now)
                inv.attempt_span = None
            self._queue.put_nowait(inv.instance_id)

    async def _detector_task(self) -> None:
        poll_s = self.config.recovery.detector_poll_ms / 1000.0
        # A spawned child that never connects (import failure, OOM) is
        # outside the lease table; give it a generous grace then declare.
        connect_grace_ms = max(10_000.0, 10 * self.config.recovery.lease_ms)
        while True:
            await asyncio.sleep(poll_s)
            now = self._now()
            for worker_id in self.lease.check(now):
                self._worker_declared_dead(worker_id, now)
            for slot in list(self._slots.values()):
                if (slot.writer is None and not slot.declared
                        and now - slot.spawned_at_ms > connect_grace_ms):
                    self._worker_declared_dead(slot.worker_id, now)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._serve_worker(reader, writer)
        except asyncio.CancelledError:
            # Loop shutdown cancels open connection handlers; that is
            # the normal end of a drain, not an error to propagate.
            pass

    async def _serve_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        slot: Optional[_WorkerSlot] = None
        while True:
            try:
                frame = await rpc.read_frame_async(reader)
            except rpc.RpcFrameError as exc:
                self._note_frame_error(slot, exc)
                break
            if frame is None:
                break
            kind = frame[0]
            if kind == rpc.STATUS:
                # Observer connection (``repro top``): serve a snapshot
                # and keep the stream open for polling.
                self.status_queries += 1
                try:
                    rpc.write_frame_async(
                        writer, (rpc.STATUS, self._status_payload())
                    )
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
                continue
            if kind == rpc.HELLO:
                slot = self._slots.get(frame[1])
                if slot is None or slot.declared:
                    break
                slot.writer = writer
                self.lease.add_node(slot.worker_id, self._now())
            elif slot is None:
                break
            elif kind == rpc.READY:
                slot.ready = True
                self._idle_event.set()
            elif kind == rpc.HEARTBEAT:
                self._renew(slot)
            elif kind == rpc.TELEMETRY:
                self._renew(slot)
                batch = frame[2]
                if batch:
                    self.telemetry_sink.apply(slot.worker_id, batch)
            elif kind == rpc.OP:
                if not self._handle_op(slot, frame):
                    break  # worker was SIGKILLed at this op
            elif kind == rpc.DONE:
                self._handle_done(slot, frame)
        if slot is not None:
            slot.writer = None
        try:
            writer.close()
        except (ConnectionError, OSError):
            pass

    def _note_frame_error(self, slot: Optional[_WorkerSlot],
                          exc: rpc.RpcFrameError) -> None:
        """Protocol-level corruption: count it, remember it, dump."""
        self.rpc_frame_errors.add("recv")
        worker = slot.worker_id if slot is not None else None
        self.flightrec.record(
            "rpc-frame-error", worker=worker, error=str(exc),
            frame_bytes=exc.frame_bytes,
        )
        self.dump_flightrecorder("rpc-frame-error", meta={
            "worker": worker, "error": str(exc),
            "frame_bytes": exc.frame_bytes,
        })

    def _renew(self, slot: _WorkerSlot) -> None:
        """Renew a worker's lease — unless it was already declared dead
        (a straggler frame must not resurrect a taken-over worker)."""
        if slot.alive and not slot.declared:
            self.lease.renew(slot.worker_id, self._now())

    def _handle_op(self, slot: _WorkerSlot, frame: Any) -> bool:
        """Route one storage op frame.

        Log appends coalesce into a gateway-side group commit when the
        batched sequencer is active (the reply comes from the flush);
        everything else executes inline.  Returns False only when the
        inline path killed the worker at this op.
        """
        if (self._coalescer is not None and frame[2] == "log"
                and frame[3] in ("append", "cond_append")):
            self._renew(slot)
            self._coalescer.submit(slot, frame)
            return True
        return self._execute_op(slot, frame)

    def _execute_op(self, slot: _WorkerSlot, frame: Any) -> bool:
        """Apply one storage op; returns False if the worker was killed."""
        _, seq, target, method, args, kwargs = frame[:6]
        ctx = frame[6] if len(frame) > 6 else None
        self._renew(slot)
        serve_span = None
        if self.tracer is not None and ctx is not None:
            # Parent the gateway-side service span under the worker's
            # client-side RPC span: one trace shows the round trip from
            # both ends, with the gap being wire + event-loop time.
            trace_id, parent_span_id = ctx
            serve_span = self.tracer.start_span(
                f"serve:{target}.{method}", CAT_SERVICE, self._now(),
                trace_id=trace_id,
                parent=(ParentRef(parent_span_id)
                        if parent_span_id is not None else None),
                node=slot.worker_id,
            )
        obj = {
            "log": self.backend.log, "kv": self.backend.kv,
            "mv": self.backend.mv, "plane": self.backend.plane,
        }[target]
        kill = (
            self.chaos is not None
            and slot.busy_with is not None
            and slot.alive
            and self.chaos.should_kill(target, method)
        )
        started = time.monotonic()
        try:
            if target == "plane" and method == "describe":
                result: Any = dict(self.backend.plane.describe(),
                                   labelled=self.backend.plane.labelled)
            else:
                attr = getattr(obj, method)
                result = (attr(*rpc.decode_value(args),
                               **rpc.decode_value(kwargs))
                          if callable(attr) else attr)
            ok, payload = True, rpc.encode_value(result)
        except BaseException as exc:  # noqa: BLE001 - forwarded to worker
            ok, payload = False, rpc.encode_error(exc)
        wall_ms = (time.monotonic() - started) * 1000.0
        if serve_span is not None:
            if not ok:
                serve_span.annotate("error", self._now())
            serve_span.finish(self._now())
        op_kind = _OP_KIND.get((target, method))
        if op_kind is not None:
            self._note_op(op_kind, wall_ms)
            inv = self._inflight.get(slot.busy_with or "")
            if inv is not None:
                inv.stages[op_kind] = inv.stages.get(op_kind, 0.0) + wall_ms
                inv.ops_wall_ms += wall_ms
        if kill and ok:
            # Apply-then-SIGKILL, and never reply: the write is durable,
            # the completion is lost, replay must cope.
            self._sigkill_worker(slot, target, method)
            return False
        try:
            rpc.write_frame_async(
                slot.writer, (rpc.RESULT, seq, ok, payload, wall_ms)
            )
        except rpc.RpcFrameError as exc:
            # The reply itself violates the cap: the worker can never
            # be answered on this stream, so treat the connection as
            # corrupt and let the lease machinery reclaim the slot.
            self.rpc_frame_errors.add("send")
            self.flightrec.record(
                "rpc-frame-error", worker=slot.worker_id,
                error=str(exc), frame_bytes=exc.frame_bytes,
            )
            self.dump_flightrecorder("rpc-frame-error", meta={
                "worker": slot.worker_id, "error": str(exc),
            })
            return False
        slot.last_acked_op = f"{target}.{method}#{seq}"
        return True

    def _note_op(self, kind: str, wall_ms: float) -> None:
        recorder = self._op_wall.get(kind)
        if recorder is None:
            recorder = self.backend.metrics.register(
                "op_wall_ms", LatencyRecorder(f"op-wall-{kind}"), kind=kind
            )
            self._op_wall[kind] = recorder
        recorder.record(wall_ms)

    def _sigkill_worker(self, slot: _WorkerSlot, target: str,
                        method: str) -> None:
        now = self._now()
        pid = slot.process.pid
        event = KillEvent(
            worker_id=slot.worker_id, pid=pid or -1,
            instance_id=slot.busy_with or "?",
            op=f"{target}.{method}", at_ms=now,
            completed_before=len(self._completed),
        )
        try:
            if pid:
                os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        slot.alive = False
        slot.breaker.record_failure()
        self.chaos.record_kill(event)
        self.node_crashes += 1
        if self.tracer is not None:
            self.tracer.instant(
                "sigkill", now, trace_id=event.instance_id,
                node=slot.worker_id, op=event.op,
            )
        self.flightrec.record(
            "sigkill", worker=slot.worker_id, pid=event.pid,
            instance=event.instance_id, op=event.op,
            last_acked_op=slot.last_acked_op,
        )
        self.dump_flightrecorder("sigkill", meta={
            "worker": slot.worker_id,
            "pid": event.pid,
            "instance": event.instance_id,
            "killed_at_op": event.op,
            "last_acked_op": slot.last_acked_op,
        })

    def _handle_done(self, slot: _WorkerSlot, frame: Any) -> None:
        _, worker_id, instance_id, ok, payload = frame
        now = self._now()
        self._renew(slot)
        if slot.busy_with == instance_id:
            slot.busy_with = None
            self._idle_event.set()
        inv = self._inflight.get(instance_id)
        if inv is None or instance_id in self._completed:
            self.duplicate_completions += 1
            self.flightrec.record("duplicate-done", worker=worker_id,
                                  instance=instance_id)
            return
        slot.breaker.record_success()
        self.flightrec.record("done", worker=worker_id,
                              instance=instance_id, ok=bool(ok))
        if not ok:
            # Terminal invocation failure (retries exhausted or a
            # permanent fault): surface it, don't hang the run.
            error = rpc.decode_error(payload)
            self._failed[instance_id] = type(error).__name__
            self._finish_invocation(inv, now, failed=True)
            return
        output, attempts, cost_by_kind, _worker_wall_ms = payload
        # Worker-internal lost attempts (BernoulliCrashes / service
        # faults absorbed by LocalRuntime's retry loop).
        self.crashed_attempts += max(0, int(attempts) - 1)
        for kind, ms in cost_by_kind.items():
            self._time_by_kind[kind] = (
                self._time_by_kind.get(kind, 0.0) + ms
            )
        self._completed.add(instance_id)
        latency = now - inv.arrival_ms
        exec_wall = now - inv.dispatched_at_ms
        inv.stages["compute"] = (
            inv.stages.get("compute", 0.0)
            + max(0.0, exec_wall - inv.ops_wall_ms)
        )
        self._finish_invocation(inv, now)
        if inv.arrival_ms >= self._warmup_ms:
            self.latencies.record(latency)
            self.throughput.record(now)
            self.breakdown.record(self._exact_stages(inv, latency))
        self.latency_series.record(now, latency)
        if self.chaos is not None:
            self.chaos.note_completion(len(self._completed))
        if self._on_request_complete is not None:
            self._on_request_complete(inv.request, latency)

    @staticmethod
    def _exact_stages(inv: _Inflight, latency: float) -> Dict[str, float]:
        """Stage vector summing exactly to the e2e wall latency."""
        stages = dict(inv.stages)
        residual = latency - sum(stages.values())
        stages["compute"] = max(0.0, stages.get("compute", 0.0) + residual)
        drift = latency - sum(stages.values())
        if drift:  # clamped above: shave the difference off queueing
            stages["queue_wait"] = max(
                0.0, stages.get("queue_wait", 0.0) + drift
            )
        return stages

    def _finish_invocation(self, inv: _Inflight, now: float,
                           failed: bool = False) -> None:
        self._runtime.tracker.finish(inv.instance_id)
        self._inflight.pop(inv.instance_id, None)
        if inv.attempt_span is not None:
            inv.attempt_span.finish(now)
        if inv.root_span is not None:
            if failed:
                inv.root_span.annotate("failed", now)
            inv.root_span.finish(now)
        self._check_done()

    # -- failure handling --------------------------------------------------

    def _worker_declared_dead(self, worker_id: int, now: float) -> None:
        slot = self._slots.get(worker_id)
        if slot is None or slot.declared:
            return
        slot.declared = True
        slot.alive = False
        slot.breaker.record_failure()
        # Fence: a declared-dead worker must not keep running (it may be
        # wedged rather than dead; its invocation is about to be taken
        # over, so any late effect from it would race the replay).
        try:
            if slot.process.is_alive():
                slot.process.kill()
        except (OSError, ValueError):
            pass
        if slot.writer is not None:
            try:
                slot.writer.close()
            except (ConnectionError, OSError):
                pass
            slot.writer = None
        kill = next(
            (e for e in (self.chaos.events if self.chaos else ())
             if e.worker_id == worker_id and e.detected_at_ms is None),
            None,
        )
        if kill is not None:
            kill.detected_at_ms = now
            self.detection_latency.record(now - kill.at_ms)
        if self.tracer is not None:
            self.tracer.instant("declared-dead", now, node=worker_id)
        self.flightrec.record(
            "declared-dead", worker=worker_id,
            expected=kill is not None, busy_with=slot.busy_with,
            last_acked_op=slot.last_acked_op,
        )
        if kill is None:
            # An *unexpected* death (no chaos kill to blame) is exactly
            # the forensic case; chaos kills already dumped at delivery.
            self.dump_flightrecorder("lease-expiry", meta={
                "worker": worker_id,
                "busy_with": slot.busy_with,
                "last_acked_op": slot.last_acked_op,
            })
        stranded = slot.busy_with
        slot.busy_with = None
        if stranded is not None and stranded in self._inflight:
            inv = self._inflight[stranded]
            self.orphaned_invocations += 1
            if inv.attempt_span is not None:
                inv.attempt_span.annotate("orphaned", now)
                inv.attempt_span.finish(now)
                inv.attempt_span = None
            self.coordinator.add_orphan(Orphan(
                instance_id=stranded,
                request=inv.request,
                arrival_ms=inv.arrival_ms,
                next_attempt=inv.attempt + 1,
                node_id=worker_id,
                orphaned_at_ms=now,
            ))
        self.coordinator.node_failed(worker_id, now)
        # Keep the pool at strength: a dead worker's replacement gets a
        # fresh id, process, breaker, and lease.
        if not self._draining and not self._done_event.is_set():
            self._spawn_worker()

    def _enqueue_orphan(self, orphan: Orphan) -> None:
        """RecoveryCoordinator redispatch hook → back into the queue."""
        inv = self._inflight.get(orphan.instance_id)
        if inv is None:
            return
        now = self._now()
        inv.attempt = orphan.next_attempt
        inv.stages["takeover_gap"] = (
            inv.stages.get("takeover_gap", 0.0)
            + now - inv.dispatched_at_ms
        )
        inv.pending_since_ms = now
        inv.worker_id = -1
        if inv.root_span is not None:
            inv.queue_span = inv.root_span.child(
                "worker-queue", CAT_QUEUE, now, redispatched=True,
            )
            inv.root_span.annotate(
                "redispatched", now, category=CAT_RECOVERY,
            )
        self._queue.put_nowait(orphan.instance_id)

    # -- results -----------------------------------------------------------

    def _build_result(self, rate_per_s: float, duration_ms: float):
        from ..harness.platform import RunResult

        now = self._now()
        have = self.latencies.count > 0
        wall_s = now / 1000.0
        sink = self.telemetry_sink
        rpc_rt = sink.merged_latency("rpc_roundtrip_ms")
        per_worker: List[Dict[str, Any]] = []
        for slot in self._slots.values():
            wrt = sink.worker_metric(slot.worker_id, "rpc_roundtrip_ms")
            kill = next(
                (e for e in (self.chaos.events if self.chaos else ())
                 if e.worker_id == slot.worker_id), None,
            )
            per_worker.append({
                "worker": slot.worker_id,
                "invocations": slot.invocations,
                "alive": slot.alive,
                "killed": kill is not None,
                "detection_ms": (kill.detection_ms
                                 if kill is not None else None),
                "rpc_p50_ms": (wrt.median() if wrt is not None
                               and wrt.count else None),
                "rpc_p99_ms": (wrt.p99() if wrt is not None
                               and wrt.count else None),
                "last_acked_op": slot.last_acked_op,
            })
        return RunResult(
            protocol=self.protocol,
            workload=self.workload.name,
            offered_rate_per_s=rate_per_s,
            duration_ms=duration_ms,
            completed=len(self._completed),
            crashed_attempts=self.crashed_attempts,
            faulted_attempts=self.faulted_attempts,
            median_ms=self.latencies.median() if have else 0.0,
            p99_ms=self.latencies.p99() if have else 0.0,
            mean_ms=self.latencies.mean() if have else 0.0,
            throughput_per_s=(
                len(self._completed) / wall_s if wall_s > 0 else 0.0
            ),
            avg_log_bytes=self.log_gauge.time_average(now),
            avg_db_bytes=self.db_gauge.time_average(now),
            avg_total_bytes=(self.log_gauge.time_average(now)
                             + self.db_gauge.time_average(now)),
            latency_series=self.latency_series,
            counters=self.backend.counters.as_dict(),
            time_by_kind=dict(self._time_by_kind),
            extras={
                "backend": self.name,
                "wall_ms": now,
                "requests_issued": self._issued,
                "requests_shed": self.rejected_requests,
                "max_inflight": self.max_inflight,
                "append_coalescer": (
                    self._coalescer.stats()
                    if self._coalescer is not None else None
                ),
                "workers": self.num_workers,
                "workers_spawned": self._workers_ever,
                "kills_delivered": (
                    self.chaos.delivered if self.chaos else 0
                ),
                "kill_events": (
                    self.chaos.summary() if self.chaos else []
                ),
                "duplicate_completions": self.duplicate_completions,
                "failed_invocations": dict(self._failed),
                "aborted": self.aborted_reason,
                "telemetry_batches": sink.batches,
                "worker_spans_absorbed": sink.spans_absorbed,
                "rpc_frame_errors": sum(
                    self.rpc_frame_errors.as_dict().values()
                ),
                "rpc_p50_ms": (rpc_rt.median() if rpc_rt.count else None),
                "rpc_p99_ms": (rpc_rt.p99() if rpc_rt.count else None),
                "per_worker": per_worker,
                "status_queries": self.status_queries,
            },
            node_crashes=self.node_crashes,
            orphaned_invocations=self.orphaned_invocations,
            recovered_orphans=self.coordinator.recovered,
            detection_ms=self.detection_latency,
            takeover_ms=self.coordinator.takeover_latency,
            breakdown=self.breakdown,
            metrics=self.backend.metrics.snapshot(now_ms=now),
        )

    def close(self) -> None:
        for slot in self._slots.values():
            if slot.process.is_alive():
                slot.process.kill()
        self._slots.clear()


def _ensure_child_pythonpath() -> None:
    """Spawn-ed children must be able to ``import repro``."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = os.environ.get("PYTHONPATH", "").split(os.pathsep)
    if src not in parts:
        os.environ["PYTHONPATH"] = (
            src + ((os.pathsep + os.environ["PYTHONPATH"])
                   if os.environ.get("PYTHONPATH") else "")
        )
    # Defensive: some environments run with sys.path entries only.
    if src not in sys.path:
        sys.path.insert(0, src)


register_backend("localhost", LocalhostComputePlane)
