"""The pluggable compute-plane interface.

The storage side of the reproduction became pluggable in PR 4
(:mod:`repro.storageplane`); this module is the same seam for the
*execution* side, modeled on Lithops' execution modes (localhost /
serverless / standalone): a :class:`ComputePlane` is one deployment
shape that can drive a workload under a protocol and produce the
standard :class:`~repro.harness.platform.RunResult`, and a registry
maps backend names to constructors so harnesses and the CLI select the
plane by name.

Two backends ship here:

* ``sim`` — the discrete-event simulation platform
  (:class:`~repro.harness.platform.SimPlatform`), wrapped unchanged:
  same constructor arguments, same seeded streams, bit-identical
  results (a golden test diffs it against direct construction);
* ``localhost`` — real OS processes: an asyncio gateway serving the
  actual :class:`~repro.storageplane.StoragePlane` over a unix socket
  to a pool of worker processes, each running
  :class:`~repro.runtime.local.LocalRuntime` with wall-clock latencies
  and SIGKILL-able workers (:mod:`repro.compute.gateway`).

Container-based backends (the Lithops "serverless" shape) would slot in
through :func:`register_backend` without touching callers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional, Tuple

from ..config import SystemConfig
from ..errors import ConfigError
from ..observe import Tracer
from ..workloads.base import Workload


class ComputePlane(ABC):
    """One execution deployment driving a workload under one protocol."""

    #: Registry name of the backend that built this plane.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        rate_per_s: float,
        duration_ms: float,
        warmup_ms: float = 0.0,
        drain_ms: float = 5_000.0,
    ) -> Any:
        """Drive the workload and return a ``RunResult``."""

    # -- audit hooks -----------------------------------------------------

    @property
    @abstractmethod
    def runtime(self) -> Any:
        """The control-plane runtime (ground-truth probes go through it)."""

    @property
    def on_request_complete(self) -> Optional[Callable[[Any, float], None]]:
        """``callback(request, latency_ms)`` fired once per completion."""
        return None

    @on_request_complete.setter
    def on_request_complete(
        self, callback: Optional[Callable[[Any, float], None]]
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release plane resources (processes, sockets); idempotent."""


#: ``constructor(workload, protocol, config, enable_switching, tracer,
#: **backend_kwargs) -> ComputePlane``
PlaneFactory = Callable[..., ComputePlane]

_BACKENDS: Dict[str, PlaneFactory] = {}


def register_backend(name: str, factory: PlaneFactory) -> None:
    """Register a compute backend under ``name`` (last wins)."""
    _BACKENDS[name] = factory


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def build_compute_plane(
    backend: str,
    workload: Workload,
    protocol: str,
    config: Optional[SystemConfig] = None,
    enable_switching: bool = False,
    tracer: Optional[Tracer] = None,
    **kwargs: Any,
) -> ComputePlane:
    """Build the named compute plane for one (workload, protocol) run."""
    try:
        factory = _BACKENDS[backend]
    except KeyError:
        raise ConfigError(
            f"unknown compute backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory(
        workload, protocol, config=config,
        enable_switching=enable_switching, tracer=tracer, **kwargs,
    )
