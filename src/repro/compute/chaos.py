"""Seeded SIGKILL schedules for the live compute plane.

The DES kills nodes by interrupting simulated processes; the live plane
kills them for real — ``SIGKILL``, no cleanup, no goodbye frame.  The
controller decides *when*: kill thresholds are drawn from a seeded
stream over the middle of the request schedule (so the pool is warm and
the run can still drain), and each armed kill fires on the next
eligible storage operation from a busy worker.

The eligible set is deliberately the sharpest adversarial point: the
user-visible KV write of an in-flight invocation.  The gateway applies
the write to the real plane, SIGKILLs the worker, and never sends the
reply — so the effect is durable, the completion is not, and the
orphan's replay must decide what to do about it.  The logged protocols
detect the landed step and stay exactly-once; the ``unsafe`` control
re-reads the bumped value and double-applies, which is precisely the
violation the audit exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

#: (target, method) pairs a kill may fire on — user-visible KV writes.
#: ``mv.write_version`` is halfmoon-read's write path (versioned store
#: for log-free reads); the plain protocols write through ``kv``.
ELIGIBLE_WRITE_OPS = frozenset({
    ("kv", "put"),
    ("kv", "conditional_put"),
    ("mv", "write_version"),
})


@dataclass
class KillEvent:
    """One SIGKILL delivered to a busy worker mid-invocation."""

    worker_id: int
    pid: int
    instance_id: str
    op: str
    at_ms: float
    completed_before: int
    detected_at_ms: Optional[float] = None

    @property
    def detection_ms(self) -> Optional[float]:
        if self.detected_at_ms is None:
            return None
        return self.detected_at_ms - self.at_ms


@dataclass
class LiveChaosController:
    """Arms ``kills`` seeded kill points across ``total_requests``."""

    kills: int
    total_requests: int
    rng: np.random.Generator
    #: Completion counts at which successive kills arm (sorted).
    thresholds: List[int] = field(default_factory=list)
    events: List[KillEvent] = field(default_factory=list)
    _armed: bool = False
    _next: int = 0

    def __post_init__(self) -> None:
        if self.kills <= 0:
            return
        # Middle 15–70% of the schedule: the pool is warm, and even the
        # last orphan has the tail of the run to be detected + replayed.
        lo = max(1, int(self.total_requests * 0.15))
        hi = max(lo + 1, int(self.total_requests * 0.70))
        draws = sorted(
            int(self.rng.integers(lo, hi)) for _ in range(self.kills)
        )
        # De-duplicate while preserving count: nudge collisions forward.
        seen = set()
        for d in draws:
            while d in seen:
                d += 1
            seen.add(d)
            self.thresholds.append(d)
        self.thresholds.sort()

    # -- gateway hooks ---------------------------------------------------

    def note_completion(self, completed: int) -> None:
        """Arm the next kill once enough requests have completed."""
        if (not self._armed and self._next < len(self.thresholds)
                and completed >= self.thresholds[self._next]):
            self._armed = True
            self._next += 1

    def should_kill(self, target: str, method: str) -> bool:
        """Fire on the next eligible write op while armed."""
        return self._armed and (target, method) in ELIGIBLE_WRITE_OPS

    def record_kill(self, event: KillEvent) -> None:
        self.events.append(event)
        self._armed = False

    # -- results ---------------------------------------------------------

    @property
    def delivered(self) -> int:
        return len(self.events)

    def summary(self) -> List[Tuple[int, str, float]]:
        return [(e.worker_id, e.instance_id, e.at_ms) for e in self.events]
