"""Live worker process: a real `LocalRuntime` behind a unix socket.

Each worker is one OS process in the localhost compute plane's pool.
It connects to the gateway, builds the full runtime stack over an RPC
:class:`~repro.compute.proxy.ProxyPlane` (so every externally visible
effect lands in the gateway's real storage plane), registers the
workload's SSF bodies from a declarative spec, and then serves
``invoke`` frames until told to shut down.  A daemon thread heartbeats
on the shared socket; when the gateway SIGKILLs the process, the
heartbeats stop and the wall-clock lease expires — detection is
measured, not assumed, exactly as in the DES.

The worker deliberately reuses ``LocalRuntime.invoke`` unmodified: the
instance-crash retry loop, protocol init/replay, and the
retry/breaker resilience machinery are the system under test.  Compute
ops sleep real wall time (scaled by the spec) so invocations overlap
across the pool — true concurrency, serialized only at the gateway's
storage service like a real deployment.
"""

from __future__ import annotations

import importlib
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..observe.distributed import (
    ParentRef,
    WorkerTelemetry,
    make_worker_tracer,
)
from ..observe.flightrec import FlightRecorder
from ..observe.registry import MetricsRegistry
from ..observe.tracing import CAT_ATTEMPT
from . import rpc
from .proxy import GatewayConnection, ProxyPlane


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, picklable workload recipe (no code on the wire).

    Workers and the gateway each instantiate their own copy:
    the gateway's for ``populate`` and ground truth, the workers' only
    for ``register`` (the SSF bodies).
    """

    module: str
    qualname: str
    kwargs: Dict[str, Any]

    def build(self) -> Any:
        cls: Any = importlib.import_module(self.module)
        for part in self.qualname.split("."):
            cls = getattr(cls, part)
        return cls(**self.kwargs)


def _heartbeat_loop(conn: GatewayConnection, worker_id: int,
                    interval_s: float, stop: threading.Event,
                    telemetry: Optional[WorkerTelemetry] = None,
                    now_fn: Any = None) -> None:
    while not stop.wait(interval_s):
        try:
            conn.send((rpc.HEARTBEAT, worker_id))
            if telemetry is not None:
                # Piggyback: telemetry ships on the heartbeat cadence,
                # as its own frame but zero extra wakeups, and only
                # when there is something new to say.
                batch = telemetry.batch(now_fn())
                if batch is not None:
                    conn.send((rpc.TELEMETRY, worker_id, batch))
        except (OSError, rpc.RpcFrameError):
            return


def worker_main(
    socket_path: str,
    worker_id: int,
    config: Any,
    protocol: str,
    workload_spec: WorkloadSpec,
    heartbeat_interval_ms: float,
    compute_sleep_scale: float = 1.0,
    crash_f: float = 0.0,
    t0: Optional[float] = None,
    span_base: Optional[int] = None,
    telemetry: bool = False,
) -> None:
    """Process entry point (multiprocessing ``spawn`` target).

    ``t0`` is the gateway's monotonic epoch (``CLOCK_MONOTONIC`` is
    system-wide on Linux, so subtracting it puts worker timestamps on
    the gateway's timeline); ``span_base`` is this worker's reserved
    span-id block in the gateway tracer's id space (``None`` = run
    untraced); ``telemetry`` enables metric/span/flight-recorder
    shipping on the heartbeat cadence.  All three default off, so an
    unobserved run sends exactly the pre-existing frames.
    """
    from ..runtime.failures import BernoulliCrashes
    from ..runtime.local import LocalRuntime
    from ..runtime.services import ServiceBackend

    signal.signal(signal.SIGTERM, _raise_system_exit)

    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 20)
    conn = GatewayConnection(sock)

    epoch = time.monotonic() if t0 is None else t0
    proc_name = f"worker-{worker_id}"

    def now_ms() -> float:
        return (time.monotonic() - epoch) * 1000.0

    # The ring is always on (O(1) appends, no I/O); it only leaves the
    # process when telemetry ships it.
    flightrec = FlightRecorder(proc_name, now_ms)

    tracer = None
    if span_base is not None:
        # Wall-clock tracer over the gateway's timeline; NOT attached
        # to the backend (InstanceServices spans run on virtual
        # cost-trace time, which must not mix with wall clock).  The
        # worker instead records its own root span per invocation and
        # the connection records per-op RPC spans.
        tracer = make_worker_tracer(span_base)
        conn.tracer = tracer
        conn.proc = proc_name

    wreg: Optional[MetricsRegistry] = None
    wtel: Optional[WorkerTelemetry] = None
    completions = busy = None
    if telemetry:
        wreg = MetricsRegistry()
        conn.rpc_roundtrip = wreg.latency("rpc_roundtrip_ms")
        conn.rpc_wire = wreg.latency("rpc_wire_ms")
        completions = wreg.throughput("worker_completions")
        busy = wreg.gauge("worker_busy", start_time_ms=now_ms())
        wtel = WorkerTelemetry(tracer, wreg, flightrec)
    if tracer is not None or telemetry:
        conn.now_fn = now_ms

    conn.send((rpc.HELLO, worker_id))

    plane = ProxyPlane(conn)
    backend = ServiceBackend(config, plane=plane)
    runtime = LocalRuntime(config, protocol=protocol, backend=backend)
    if compute_sleep_scale > 0:
        runtime.compute_sleep_fn = (
            lambda ms: time.sleep(ms * compute_sleep_scale / 1000.0)
        )
    if crash_f > 0:
        # Worker-side instance crashes (soft failures absorbed by the
        # in-process retry loop), composable with the gateway's hard
        # SIGKILLs — same knob the DES chaos harness turns.
        runtime.crash_policy = BernoulliCrashes(
            crash_f, backend.rng.stream("live-crashes")
        )
    workload = workload_spec.build()
    workload.register(runtime)
    flightrec.record("ready", worker=worker_id, protocol=protocol)

    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(conn, worker_id, heartbeat_interval_ms / 1000.0, stop,
              wtel, now_ms),
        daemon=True,
    )
    beat.start()
    # Only now may the gateway dispatch: until READY, an INVOKE frame
    # would interleave with the setup RPCs above and desync the stream.
    conn.send((rpc.READY, worker_id))

    try:
        while True:
            frame = rpc.recv_frame(sock)
            if frame is None or frame[0] == rpc.SHUTDOWN:
                return
            if frame[0] != rpc.INVOKE:
                continue
            _, instance_id, func_name, input_value = frame[:4]
            ctx = frame[4] if len(frame) > 4 else None
            root = None
            if tracer is not None and ctx is not None:
                trace_id, parent_id = ctx
                root = tracer.start_span(
                    f"execute:{func_name}", CAT_ATTEMPT, now_ms(),
                    trace_id=trace_id,
                    parent=(ParentRef(parent_id)
                            if parent_id is not None else None),
                    proc=proc_name, worker=worker_id,
                )
                conn.set_scope(trace_id, root)
            flightrec.record("invoke", instance=instance_id,
                             func=func_name)
            if busy is not None:
                busy.set(1.0, now_ms())
            started = time.monotonic()
            try:
                result = runtime.invoke(
                    func_name, input_value, instance_id=instance_id
                )
                wall_ms = (time.monotonic() - started) * 1000.0
                payload: Tuple[Any, ...] = (
                    rpc.encode_value(result.output),
                    result.attempts,
                    result.cost_by_kind,
                    wall_ms,
                )
                flightrec.record("done", instance=instance_id,
                                 attempts=result.attempts,
                                 wall_ms=round(wall_ms, 3))
                if completions is not None:
                    completions.record(now_ms())
                if root is not None:
                    root.args["attempts"] = result.attempts
                    root.finish(now_ms())
                    root = None
                conn.send((rpc.DONE, worker_id, instance_id, True, payload))
            except SystemExit:
                return
            except BaseException as exc:  # noqa: BLE001 - forwarded
                flightrec.record("invoke-error", instance=instance_id,
                                 error=type(exc).__name__)
                if root is not None:
                    now = now_ms()
                    root.annotate("error", now,
                                  error=type(exc).__name__)
                    root.finish(now)
                    root = None
                conn.send((
                    rpc.DONE, worker_id, instance_id, False,
                    rpc.encode_error(exc),
                ))
            finally:
                conn.set_scope(None, None)
                if busy is not None:
                    busy.set(0.0, now_ms())
    finally:
        stop.set()
        if wtel is not None:
            # Final drain: ship unfinished spans, the metric tail, and
            # the flight-recorder window before the socket drops.
            try:
                conn.send((rpc.TELEMETRY, worker_id,
                           wtel.batch(now_ms(), final=True)))
            except (OSError, rpc.RpcFrameError):
                pass
        try:
            sock.close()
        except OSError:
            pass


def _raise_system_exit(signum: int, frame: Any) -> None:
    """SIGTERM → graceful drain (the ``finally`` ships final telemetry)."""
    raise SystemExit(0)


def heartbeat_only_main(
    socket_path: str, worker_id: int, heartbeat_interval_ms: float
) -> None:
    """Minimal worker used by tests: heartbeats but serves nothing."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    conn = GatewayConnection(sock)
    conn.send((rpc.HELLO, worker_id))
    stop = threading.Event()
    _heartbeat_loop(conn, worker_id, heartbeat_interval_ms / 1000.0, stop)
