"""Live worker process: a real `LocalRuntime` behind a unix socket.

Each worker is one OS process in the localhost compute plane's pool.
It connects to the gateway, builds the full runtime stack over an RPC
:class:`~repro.compute.proxy.ProxyPlane` (so every externally visible
effect lands in the gateway's real storage plane), registers the
workload's SSF bodies from a declarative spec, and then serves
``invoke`` frames until told to shut down.  A daemon thread heartbeats
on the shared socket; when the gateway SIGKILLs the process, the
heartbeats stop and the wall-clock lease expires — detection is
measured, not assumed, exactly as in the DES.

The worker deliberately reuses ``LocalRuntime.invoke`` unmodified: the
instance-crash retry loop, protocol init/replay, and the
retry/breaker resilience machinery are the system under test.  Compute
ops sleep real wall time (scaled by the spec) so invocations overlap
across the pool — true concurrency, serialized only at the gateway's
storage service like a real deployment.
"""

from __future__ import annotations

import importlib
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from . import rpc
from .proxy import GatewayConnection, ProxyPlane


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative, picklable workload recipe (no code on the wire).

    Workers and the gateway each instantiate their own copy:
    the gateway's for ``populate`` and ground truth, the workers' only
    for ``register`` (the SSF bodies).
    """

    module: str
    qualname: str
    kwargs: Dict[str, Any]

    def build(self) -> Any:
        cls: Any = importlib.import_module(self.module)
        for part in self.qualname.split("."):
            cls = getattr(cls, part)
        return cls(**self.kwargs)


def _heartbeat_loop(conn: GatewayConnection, worker_id: int,
                    interval_s: float, stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            conn.send((rpc.HEARTBEAT, worker_id))
        except OSError:
            return


def worker_main(
    socket_path: str,
    worker_id: int,
    config: Any,
    protocol: str,
    workload_spec: WorkloadSpec,
    heartbeat_interval_ms: float,
    compute_sleep_scale: float = 1.0,
    crash_f: float = 0.0,
) -> None:
    """Process entry point (multiprocessing ``spawn`` target)."""
    from ..runtime.failures import BernoulliCrashes
    from ..runtime.local import LocalRuntime
    from ..runtime.services import ServiceBackend

    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 1 << 20)
    conn = GatewayConnection(sock)
    conn.send((rpc.HELLO, worker_id))

    plane = ProxyPlane(conn)
    backend = ServiceBackend(config, plane=plane)
    runtime = LocalRuntime(config, protocol=protocol, backend=backend)
    if compute_sleep_scale > 0:
        runtime.compute_sleep_fn = (
            lambda ms: time.sleep(ms * compute_sleep_scale / 1000.0)
        )
    if crash_f > 0:
        # Worker-side instance crashes (soft failures absorbed by the
        # in-process retry loop), composable with the gateway's hard
        # SIGKILLs — same knob the DES chaos harness turns.
        runtime.crash_policy = BernoulliCrashes(
            crash_f, backend.rng.stream("live-crashes")
        )
    workload = workload_spec.build()
    workload.register(runtime)

    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(conn, worker_id, heartbeat_interval_ms / 1000.0, stop),
        daemon=True,
    )
    beat.start()
    # Only now may the gateway dispatch: until READY, an INVOKE frame
    # would interleave with the setup RPCs above and desync the stream.
    conn.send((rpc.READY, worker_id))

    try:
        while True:
            frame = rpc.recv_frame(sock)
            if frame is None or frame[0] == rpc.SHUTDOWN:
                return
            if frame[0] != rpc.INVOKE:
                continue
            _, instance_id, func_name, input_value = frame
            started = time.monotonic()
            try:
                result = runtime.invoke(
                    func_name, input_value, instance_id=instance_id
                )
                payload: Tuple[Any, ...] = (
                    rpc.encode_value(result.output),
                    result.attempts,
                    result.cost_by_kind,
                    (time.monotonic() - started) * 1000.0,
                )
                conn.send((rpc.DONE, worker_id, instance_id, True, payload))
            except SystemExit:
                return
            except BaseException as exc:  # noqa: BLE001 - forwarded
                conn.send((
                    rpc.DONE, worker_id, instance_id, False,
                    rpc.encode_error(exc),
                ))
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def heartbeat_only_main(
    socket_path: str, worker_id: int, heartbeat_interval_ms: float
) -> None:
    """Minimal worker used by tests: heartbeats but serves nothing."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    conn = GatewayConnection(sock)
    conn.send((rpc.HELLO, worker_id))
    stop = threading.Event()
    _heartbeat_loop(conn, worker_id, heartbeat_interval_ms / 1000.0, stop)
