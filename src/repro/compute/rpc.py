"""Wire protocol between the live gateway and its worker processes.

Frames are length-prefixed pickles of small tuples — ``(kind, ...)``
with string kinds — over a unix-domain socket.  One payload type needs
an explicit codec because naive pickling lies:

* The error taxonomy in :mod:`repro.errors` has subclasses with custom
  constructor signatures (``ConditionalAppendError(message,
  existing_seqnum)``, ...), so ``pickle``'s default
  ``cls(*args)`` reconstruction breaks.  Errors travel as ``(module,
  qualname, args, state)`` and are rebuilt via ``cls.__new__`` so the
  worker re-raises the *same* class — the retry/breaker machinery in
  :class:`~repro.runtime.services.InstanceServices` dispatches on those
  types and must keep working across the process boundary.

:class:`~repro.sharedlog.record.LogRecord` used to need the same
treatment (``MappingProxyType`` in a slots dataclass, which pickle
rejects); since the record grew ``__reduce__`` it pickles natively and
the tagged-tuple codec was retired.  :func:`encode_value` /
:func:`decode_value` remain as the documented seam every payload still
passes through, should a future value type need help again.

Only data crosses the wire; no frame carries code.

Framing is defensive: the 4-byte length prefix is validated against a
configurable cap (:data:`MAX_FRAME_BYTES`) *before* any allocation, so
a corrupted or hostile prefix surfaces as the typed
:class:`RpcFrameError` — which the gateway counts in its
``rpc_frame_errors`` metric and treats as a connection-fatal protocol
error — instead of a multi-gigabyte read or a raw ``struct`` overflow.

Trace-context propagation (:mod:`repro.observe.distributed`) rides in
an optional trailing header field on ``INVOKE`` (the gateway's dispatch
context) and ``OP`` (the worker's RPC-span context); ``RESULT`` carries
the gateway-side service time so workers can split wire overhead from
storage-plane service time.  All three are backwards-shaped: absent
means "untraced", and decoding tolerates the short form.
"""

from __future__ import annotations

import importlib
import pickle
import socket
import struct
from typing import Any, Optional, Tuple

_LEN = struct.Struct("<I")

#: Frame-size cap (bytes) applied on both send and receive.  Large
#: enough for any legitimate payload this harness ships (values are
#: small; telemetry batches are bounded), small enough that a fuzzed
#: length prefix can never drive a giant allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class RpcFrameError(Exception):
    """A frame violated the wire protocol (oversized or undecodable).

    Typed so the gateway can count protocol-level corruption
    (``rpc_frame_errors``) and trigger a flight-recorder dump, distinct
    from the retryable service errors the resilience machinery owns.
    """

    def __init__(self, message: str, frame_bytes: Optional[int] = None):
        super().__init__(message)
        self.frame_bytes = frame_bytes


#: Frame kinds, worker -> gateway.
HELLO = "hello"
READY = "ready"
HEARTBEAT = "hb"
OP = "op"
DONE = "done"
TELEMETRY = "tel"

#: Frame kinds, gateway -> worker.
INVOKE = "invoke"
RESULT = "res"
SHUTDOWN = "bye"

#: Frame kind, observer <-> gateway (``python -m repro top``).
STATUS = "status"

_ERROR_TAG = "__error__"


# -- value codec ---------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Make ``value`` picklable.

    Currently the identity: every value type this harness ships —
    including :class:`LogRecord`, via its ``__reduce__`` — pickles
    natively.  Kept (and still called on every payload) as the seam
    where a future unpicklable type would get its tagged encoding.
    """
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    return value


def encode_error(exc: BaseException) -> Tuple[str, str, tuple, dict]:
    """Flatten an exception for transport (class identity preserved)."""
    state = {
        k: v for k, v in vars(exc).items()
        if isinstance(v, (int, float, str, bool, bytes, type(None)))
    }
    return (
        type(exc).__module__, type(exc).__qualname__,
        tuple(encode_value(a) for a in exc.args), state,
    )


def decode_error(payload: Tuple[str, str, tuple, dict]) -> BaseException:
    """Rebuild the original exception class without calling its ctor."""
    module, qualname, args, state = payload
    try:
        cls: Any = importlib.import_module(module)
        for part in qualname.split("."):
            cls = getattr(cls, part)
    except (ImportError, AttributeError):
        cls = RuntimeError
    try:
        exc = cls.__new__(cls)
        BaseException.__init__(exc, *(decode_value(a) for a in args))
        exc.__dict__.update(state)
    except Exception:
        exc = RuntimeError(f"{qualname}{args!r}")
    return exc


# -- framing helpers ------------------------------------------------------

def _encode_checked(frame: Any, max_bytes: Optional[int]) -> bytes:
    blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    cap = MAX_FRAME_BYTES if max_bytes is None else max_bytes
    if len(blob) > cap:
        raise RpcFrameError(
            f"outgoing frame of {len(blob)} bytes exceeds the "
            f"{cap}-byte cap", frame_bytes=len(blob),
        )
    return _LEN.pack(len(blob)) + blob


def _check_length(length: int, max_bytes: Optional[int]) -> int:
    cap = MAX_FRAME_BYTES if max_bytes is None else max_bytes
    if length > cap:
        raise RpcFrameError(
            f"incoming frame announces {length} bytes, over the "
            f"{cap}-byte cap", frame_bytes=length,
        )
    return length


def _decode_body(body: bytes) -> Any:
    try:
        return pickle.loads(body)
    except Exception as exc:  # pickle raises many concrete types
        raise RpcFrameError(
            f"frame body failed to decode: {type(exc).__name__}: {exc}",
            frame_bytes=len(body),
        ) from exc


# -- synchronous framing (worker side) -----------------------------------

def send_frame(sock: socket.socket, frame: Any,
               max_bytes: Optional[int] = None) -> None:
    sock.sendall(_encode_checked(frame, max_bytes))


def recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on a clean or torn EOF."""
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_bytes: Optional[int] = None) -> Optional[Any]:
    header = recv_exact(sock, _LEN.size)
    if header is None:
        return None
    length = _check_length(_LEN.unpack(header)[0], max_bytes)
    body = recv_exact(sock, length)
    if body is None:
        return None
    return _decode_body(body)


# -- asyncio framing (gateway side) --------------------------------------

def write_frame_async(writer: Any, frame: Any,
                      max_bytes: Optional[int] = None) -> None:
    """Queue a frame on an ``asyncio.StreamWriter`` (no await: small
    frames ride the transport buffer; the gateway drains on close)."""
    writer.write(_encode_checked(frame, max_bytes))


async def read_frame_async(reader: Any,
                           max_bytes: Optional[int] = None
                           ) -> Optional[Any]:
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
        length = _check_length(_LEN.unpack(header)[0], max_bytes)
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
        return None
    return _decode_body(body)
