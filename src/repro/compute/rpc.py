"""Wire protocol between the live gateway and its worker processes.

Frames are length-prefixed pickles of small tuples — ``(kind, ...)``
with string kinds — over a unix-domain socket.  Two payload types need
explicit codecs because naive pickling fails or lies:

* :class:`~repro.sharedlog.record.LogRecord` freezes its ``data`` in a
  ``MappingProxyType`` inside a slots dataclass, which pickle rejects;
  records travel as a tagged tuple and are rebuilt on the other side
  (``__post_init__`` re-freezes them).
* The error taxonomy in :mod:`repro.errors` has subclasses with custom
  constructor signatures (``ConditionalAppendError(message,
  existing_seqnum)``, ...), so ``pickle``'s default
  ``cls(*args)`` reconstruction breaks.  Errors travel as ``(module,
  qualname, args, state)`` and are rebuilt via ``cls.__new__`` so the
  worker re-raises the *same* class — the retry/breaker machinery in
  :class:`~repro.runtime.services.InstanceServices` dispatches on those
  types and must keep working across the process boundary.

Only data crosses the wire; no frame carries code.
"""

from __future__ import annotations

import importlib
import pickle
import socket
import struct
from typing import Any, Optional, Tuple

from ..sharedlog.record import LogRecord

_LEN = struct.Struct("<I")

#: Frame kinds, worker -> gateway.
HELLO = "hello"
READY = "ready"
HEARTBEAT = "hb"
OP = "op"
DONE = "done"

#: Frame kinds, gateway -> worker.
INVOKE = "invoke"
RESULT = "res"
SHUTDOWN = "bye"

_RECORD_TAG = "__logrecord__"
_ERROR_TAG = "__error__"


# -- value codec ---------------------------------------------------------

def encode_value(value: Any) -> Any:
    """Make ``value`` picklable (LogRecords → tagged tuples, recursively)."""
    if isinstance(value, LogRecord):
        return (_RECORD_TAG, value.seqnum, tuple(value.tags),
                dict(value.data), value.payload_bytes)
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, tuple):
        return tuple(encode_value(v) for v in value)
    if isinstance(value, dict):
        return {k: encode_value(v) for k, v in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, tuple):
        if len(value) == 5 and value[0] == _RECORD_TAG:
            _, seqnum, tags, data, payload_bytes = value
            return LogRecord(seqnum, tuple(tags), data, payload_bytes)
        return tuple(decode_value(v) for v in value)
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        return {k: decode_value(v) for k, v in value.items()}
    return value


def encode_error(exc: BaseException) -> Tuple[str, str, tuple, dict]:
    """Flatten an exception for transport (class identity preserved)."""
    state = {
        k: v for k, v in vars(exc).items()
        if isinstance(v, (int, float, str, bool, bytes, type(None)))
    }
    return (
        type(exc).__module__, type(exc).__qualname__,
        tuple(encode_value(a) for a in exc.args), state,
    )


def decode_error(payload: Tuple[str, str, tuple, dict]) -> BaseException:
    """Rebuild the original exception class without calling its ctor."""
    module, qualname, args, state = payload
    try:
        cls: Any = importlib.import_module(module)
        for part in qualname.split("."):
            cls = getattr(cls, part)
    except (ImportError, AttributeError):
        cls = RuntimeError
    try:
        exc = cls.__new__(cls)
        BaseException.__init__(exc, *(decode_value(a) for a in args))
        exc.__dict__.update(state)
    except Exception:
        exc = RuntimeError(f"{qualname}{args!r}")
    return exc


# -- synchronous framing (worker side) -----------------------------------

def send_frame(sock: socket.socket, frame: Any) -> None:
    blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(blob)) + blob)


def recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on a clean or torn EOF."""
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    header = recv_exact(sock, _LEN.size)
    if header is None:
        return None
    body = recv_exact(sock, _LEN.unpack(header)[0])
    if body is None:
        return None
    return pickle.loads(body)


# -- asyncio framing (gateway side) --------------------------------------

def write_frame_async(writer: Any, frame: Any) -> None:
    """Queue a frame on an ``asyncio.StreamWriter`` (no await: small
    frames ride the transport buffer; the gateway drains on close)."""
    blob = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(_LEN.pack(len(blob)) + blob)


async def read_frame_async(reader: Any) -> Optional[Any]:
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
        body = await reader.readexactly(_LEN.unpack(header)[0])
    except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
        return None
    return pickle.loads(body)
