"""Live run exposition: the ``python -m repro top`` client.

A running gateway serves point-in-time run state on ``STATUS`` frames
(any connection may ask; observers never say HELLO, so they occupy no
worker slot).  Discovery works through the flight-recorder directory:
a gateway started with ``--flightrec-dir`` publishes
``live-gateway.json`` there naming its socket, and removes it on
shutdown — so ``repro top`` pointed at the directory finds whatever
run is live right now.

The client is deliberately dependency-free and synchronous: connect,
ask, render, sleep, repeat.  One socket is reused across polls; a
gateway that goes away mid-poll ends the loop cleanly rather than
stack-tracing over the operator's terminal.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Callable, Dict, Optional

from . import rpc

#: Discovery file a gateway publishes in its flight-recorder directory.
DISCOVERY_FILENAME = "live-gateway.json"


def resolve_gateway(target: str) -> str:
    """Turn a user-supplied target into a socket path.

    Accepts a socket path directly, a discovery-file path, or a
    directory containing one (the ``--flightrec-dir`` of the run).
    """
    if os.path.isdir(target):
        target = os.path.join(target, DISCOVERY_FILENAME)
    if target.endswith(".json"):
        try:
            with open(target, encoding="utf-8") as f:
                return str(json.load(f)["socket"])
        except (OSError, ValueError, KeyError) as exc:
            raise FileNotFoundError(
                f"no live gateway discovered at {target!r} "
                "(is a run active with --flightrec-dir?)"
            ) from exc
    return target


def query_status(socket_path: str,
                 timeout_s: float = 5.0) -> Dict[str, Any]:
    """One STATUS round trip over a fresh connection."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    try:
        sock.connect(socket_path)
        rpc.send_frame(sock, (rpc.STATUS,))
        frame = rpc.recv_frame(sock)
    finally:
        sock.close()
    if frame is None or frame[0] != rpc.STATUS:
        raise ConnectionError(
            f"gateway at {socket_path!r} did not answer STATUS"
        )
    return dict(frame[1])


def format_status(payload: Dict[str, Any]) -> str:
    """Render one STATUS payload as a compact terminal block."""
    lines = [
        "repro live — {protocol}  t={t:.1f}s".format(
            protocol=payload.get("protocol", "?"),
            t=payload.get("now_ms", 0.0) / 1000.0,
        ),
        (
            "  requests: {issued} issued, {completed} completed, "
            "{inflight} in flight, {failed} failed"
        ).format(
            issued=payload.get("issued", 0),
            completed=payload.get("completed", 0),
            inflight=payload.get("inflight", 0),
            failed=payload.get("failed", 0),
        ),
        (
            "  chaos: {kills} kills, {orphans} orphans, "
            "{recovered} recovered, {duplicates} duplicate completions"
        ).format(
            kills=payload.get("kills", 0),
            orphans=payload.get("orphans", 0),
            recovered=payload.get("recovered", 0),
            duplicates=payload.get("duplicates", 0),
        ),
        (
            "  latency: median {median:.1f} ms, p99 {p99:.1f} ms, "
            "rate {rate:.1f}/s"
        ).format(
            median=payload.get("median_ms", 0.0),
            p99=payload.get("p99_ms", 0.0),
            rate=payload.get("rate_per_s", 0.0),
        ),
        (
            "  telemetry: {batches} batches, "
            "{frame_errors} frame errors"
        ).format(
            batches=payload.get("telemetry_batches", 0),
            frame_errors=payload.get("rpc_frame_errors", 0),
        ),
    ]
    workers = payload.get("workers", ())
    if workers:
        lines.append("  workers:")
        for w in workers:
            state = ("dead" if w.get("declared")
                     else "busy" if w.get("busy_with")
                     else "ready" if w.get("ready") else "starting")
            busy = w.get("busy_with") or "-"
            lines.append(
                f"    #{w.get('worker')}: {state:8s} "
                f"inv={w.get('invocations', 0):<4d} busy_with={busy} "
                f"last_op={w.get('last_acked_op') or '-'}"
            )
    aborted = payload.get("aborted")
    if aborted:
        lines.append(f"  aborted: {aborted}")
    return "\n".join(lines)


def top_loop(
    target: str,
    interval_s: float = 1.0,
    once: bool = False,
    out: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll the gateway until it goes away; returns an exit code.

    ``once`` takes a single snapshot (scriptable); otherwise polls on
    ``interval_s`` until the gateway shuts down (normal end of run) or
    the operator interrupts.
    """
    socket_path: Optional[str] = None
    polls = 0
    while True:
        try:
            socket_path = resolve_gateway(target)
            payload = query_status(socket_path)
        except FileNotFoundError as exc:
            if polls == 0:
                out(str(exc))
                return 1
            return 0  # run ended and cleaned up its discovery file
        except (ConnectionError, OSError):
            if polls == 0:
                out(f"cannot reach gateway via {target!r}")
                return 1
            return 0  # gateway shut down mid-watch: the run is over
        out(format_status(payload))
        polls += 1
        if once:
            return 0
        sleep(interval_s)
