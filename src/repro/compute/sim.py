"""The ``sim`` compute backend: the DES platform, wrapped unchanged.

:class:`SimComputePlane` forwards its constructor arguments verbatim to
:class:`~repro.harness.platform.SimPlatform` and delegates everything
else, so selecting ``sim`` through the registry is bit-identical to
constructing the platform directly (the regression test in
``tests/compute/test_sim_identity.py`` diffs the two on the fig10
golden cell).  Keeping the wrapper free of any extra seeded draws or
config mutation is what preserves that identity.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..config import SystemConfig
from ..observe import Tracer
from ..workloads.base import Workload
from .base import ComputePlane, register_backend


class SimComputePlane(ComputePlane):
    """Registry adapter over :class:`SimPlatform` (zero behavior delta)."""

    name = "sim"

    def __init__(
        self,
        workload: Workload,
        protocol: str,
        config: Optional[SystemConfig] = None,
        enable_switching: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        from ..harness.platform import SimPlatform

        self.platform = SimPlatform(
            workload, protocol, config=config,
            enable_switching=enable_switching, tracer=tracer,
        )

    def run(
        self,
        rate_per_s: float,
        duration_ms: float,
        warmup_ms: float = 0.0,
        drain_ms: float = 5_000.0,
    ):
        return self.platform.run(
            rate_per_s, duration_ms, warmup_ms=warmup_ms, drain_ms=drain_ms
        )

    @property
    def runtime(self) -> Any:
        return self.platform.runtime

    @property
    def on_request_complete(self) -> Optional[Callable[[Any, float], None]]:
        return self.platform.on_request_complete

    @on_request_complete.setter
    def on_request_complete(
        self, callback: Optional[Callable[[Any, float], None]]
    ) -> None:
        self.platform.on_request_complete = callback

    def __getattr__(self, name: str) -> Any:
        # Crash scheduling, lease access, etc. — the wrapper hides
        # nothing the DES platform exposes.
        return getattr(self.platform, name)


register_backend("sim", SimComputePlane)
