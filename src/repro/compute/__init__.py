"""Pluggable compute planes: simulated and real-process execution.

ROADMAP item 1: the protocols are decoupled from storage
(:mod:`repro.storageplane`) and from the clock (``now_fn``); this
package exploits both to make *execution* pluggable too.  A
:class:`ComputePlane` is one deployment shape — the ``sim`` backend is
the DES (:class:`~repro.harness.platform.SimPlatform`, wrapped
bit-identically), the ``localhost`` backend is an asyncio gateway plus
a pool of real worker processes with SIGKILL chaos and wall-clock
lease-based recovery (:mod:`repro.compute.gateway`).  Backends are
selected by name through the same registry pattern the storage plane
uses; the ``live`` experiment (:mod:`repro.harness.live_exp`) runs the
exactly-once audit against the localhost plane.
"""

from .base import (
    ComputePlane,
    available_backends,
    build_compute_plane,
    register_backend,
)
from .chaos import ELIGIBLE_WRITE_OPS, KillEvent, LiveChaosController
from .gateway import LocalhostComputePlane
from .sim import SimComputePlane
from .worker import WorkloadSpec

__all__ = [
    "ComputePlane",
    "ELIGIBLE_WRITE_OPS",
    "KillEvent",
    "LiveChaosController",
    "LocalhostComputePlane",
    "SimComputePlane",
    "WorkloadSpec",
    "available_backends",
    "build_compute_plane",
    "register_backend",
]
