"""Worker-side RPC proxies over the gateway's real storage plane.

A live worker runs the full runtime stack — protocols,
:class:`~repro.runtime.services.InstanceServices`, retries, breakers —
unchanged; only the substrate duck types are swapped for proxies that
forward each call over the worker's socket to the gateway, which
applies it to the one true :class:`~repro.storageplane.StoragePlane`
and replies.  The gateway's event loop applies operations one at a
time, so cross-worker races serialize exactly where they would in a
real deployment: at the storage service, not inside the workers.

Forwarding is generic (``__getattr__`` → named RPC), so the proxies
track the substrate surface automatically; only non-picklable edges
are special-cased (listener registration is a local no-op, log-record
results travel through the :mod:`repro.compute.rpc` codec).  The
worker's :class:`~repro.sharedlog.RecordCache` stays real and local —
node-local caching is part of the system under test.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Dict, Optional

from ..errors import ServiceUnavailableError
from ..observe.tracing import CAT_SERVICE
from . import rpc


class GatewayConnection:
    """One worker's socket to the gateway, shared with its heartbeat
    thread (sends are locked; the worker main thread is the only
    reader, so replies never interleave).

    When the live plane runs traced, the worker attaches a wall-clock
    tracer plus a per-invocation *scope* (trace id + parent span); each
    storage RPC then records its own client-side span, ships its span
    id to the gateway in the OP header (so the gateway can parent its
    service span under it), and splits the measured round trip into
    gateway service time (returned on the RESULT frame) and wire/loop
    overhead.  All of it is keyed off ``tracer is None`` — untraced
    connections send the exact pre-existing frames and allocate
    nothing extra.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.send_lock = threading.Lock()
        self._op_seq = 0
        # Tracing / telemetry hooks (assigned by worker_main when the
        # plane runs with observability on; all default off).
        self.tracer: Any = None
        self.now_fn: Optional[Callable[[], float]] = None
        self.proc: Optional[str] = None
        self.scope_trace_id: Optional[str] = None
        self.scope_parent: Any = None
        self.rpc_roundtrip: Any = None   # LatencyRecorder or None
        self.rpc_wire: Any = None        # LatencyRecorder or None

    def set_scope(self, trace_id: Optional[str], parent: Any) -> None:
        """Declare the invocation whose spans future RPCs belong to.

        Only the worker main thread issues RPCs (the heartbeat thread
        never calls :meth:`call`), so a plain attribute is race-free.
        """
        self.scope_trace_id = trace_id
        self.scope_parent = parent

    def send(self, frame: Any) -> None:
        with self.send_lock:
            rpc.send_frame(self.sock, frame)

    def call(self, target: str, method: str, args: tuple,
             kwargs: Dict[str, Any]) -> Any:
        """One storage RPC: send the op, block for its result.

        A torn connection surfaces as the retryable
        :class:`ServiceUnavailableError` — the same class an in-process
        substrate outage raises — so the worker's existing resilience
        loop owns the failure policy.
        """
        self._op_seq += 1
        seq = self._op_seq
        span = None
        ctx = None
        t_start = self.now_fn() if self.now_fn is not None else None
        if self.tracer is not None and self.scope_trace_id is not None:
            span = self.tracer.start_span(
                f"rpc:{target}.{method}", CAT_SERVICE, t_start,
                trace_id=self.scope_trace_id, parent=self.scope_parent,
                proc=self.proc,
            )
            ctx = (self.scope_trace_id, span.span_id)
        try:
            op = (rpc.OP, seq, target, method,
                  rpc.encode_value(args), rpc.encode_value(kwargs))
            self.send(op if ctx is None else op + (ctx,))
            frame = rpc.recv_frame(self.sock)
        except (OSError, rpc.RpcFrameError) as exc:
            if span is not None:
                now = self.now_fn()
                span.annotate("error", now, error=type(exc).__name__)
                span.finish(now)
            raise ServiceUnavailableError(
                f"gateway connection lost during {target}.{method}",
                service=target, op=method,
            ) from exc
        if frame is None:
            if span is not None:
                span.finish(self.now_fn())
            raise ServiceUnavailableError(
                f"gateway closed during {target}.{method}",
                service=target, op=method,
            )
        kind = frame[0]
        if kind == rpc.SHUTDOWN:
            raise SystemExit(0)
        if kind != rpc.RESULT or frame[1] != seq:
            raise ServiceUnavailableError(
                f"protocol desync on {target}.{method}: {frame[:2]!r}",
                service=target, op=method,
            )
        ok, payload = frame[2], frame[3]
        service_ms = frame[4] if len(frame) > 4 else None
        if t_start is not None:
            now = self.now_fn()
            wall_ms = now - t_start
            if self.rpc_roundtrip is not None:
                self.rpc_roundtrip.record(wall_ms)
            wire_ms = None
            if service_ms is not None:
                wire_ms = max(0.0, wall_ms - service_ms)
                if self.rpc_wire is not None:
                    self.rpc_wire.record(wire_ms)
            if span is not None:
                if service_ms is not None:
                    span.args["service_ms"] = round(service_ms, 4)
                    span.args["wire_ms"] = round(wire_ms, 4)
                span.finish(now)
        if not ok:
            raise rpc.decode_error(payload)
        return rpc.decode_value(payload)


class _ProxySubstrate:
    """Generic method-forwarding proxy for one substrate name."""

    _LOCAL_NOOPS = ("add_storage_listener", "add_shard_storage_listener")

    def __init__(self, conn: GatewayConnection, target: str):
        self._conn = conn
        self._target = target

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("__"):
            raise AttributeError(method)
        if method in self._LOCAL_NOOPS:
            return lambda *a, **k: None
        conn, target = self._conn, self._target

        def remote(*args: Any, **kwargs: Any) -> Any:
            return conn.call(target, method, args, kwargs)

        # Cache the bound forwarder so hot paths skip __getattr__.
        setattr(self, method, remote)
        return remote


class ProxyLog(_ProxySubstrate):
    def __init__(self, conn: GatewayConnection):
        super().__init__(conn, "log")

    # Property on the real log; a method proxy would return a callable.
    @property
    def tail_seqnum(self) -> int:
        return self._conn.call("log", "tail_seqnum", (), {})

    @property
    def next_seqnum(self) -> int:
        return self._conn.call("log", "next_seqnum", (), {})


class ProxyKV(_ProxySubstrate):
    def __init__(self, conn: GatewayConnection):
        super().__init__(conn, "kv")


class ProxyMV(_ProxySubstrate):
    def __init__(self, conn: GatewayConnection):
        super().__init__(conn, "mv")


class ProxyPlane:
    """`StoragePlane` duck type backed by the gateway's real plane.

    Topology (shard/partition counts, labelling) is fetched once at
    connect time; per-key placement queries are memoized so a tag costs
    one routing RPC ever — placement is stable for a plane's lifetime.
    """

    name = "proxy"

    def __init__(self, conn: GatewayConnection):
        self._conn = conn
        self.log = ProxyLog(conn)
        self.kv = ProxyKV(conn)
        self.mv = ProxyMV(conn)
        topo = conn.call("plane", "describe", (), {})
        self._describe = dict(topo)
        self.num_log_shards = int(topo.get("log_shards", 1))
        self.num_kv_partitions = int(topo.get("kv_partitions", 1))
        self.labelled = bool(topo.get("labelled", False))
        self._log_routes: Dict[str, int] = {}
        self._kv_routes: Dict[str, int] = {}

    def log_shard_of(self, tag: str) -> int:
        shard = self._log_routes.get(tag)
        if shard is None:
            shard = self._conn.call("plane", "log_shard_of", (tag,), {})
            self._log_routes[tag] = shard
        return shard

    def kv_partition_of(self, key: str) -> int:
        part = self._kv_routes.get(key)
        if part is None:
            part = self._conn.call("plane", "kv_partition_of", (key,), {})
            self._kv_routes[key] = part
        return part

    def describe(self) -> Dict[str, Any]:
        return dict(self._describe)
