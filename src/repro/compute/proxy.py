"""Worker-side RPC proxies over the gateway's real storage plane.

A live worker runs the full runtime stack — protocols,
:class:`~repro.runtime.services.InstanceServices`, retries, breakers —
unchanged; only the substrate duck types are swapped for proxies that
forward each call over the worker's socket to the gateway, which
applies it to the one true :class:`~repro.storageplane.StoragePlane`
and replies.  The gateway's event loop applies operations one at a
time, so cross-worker races serialize exactly where they would in a
real deployment: at the storage service, not inside the workers.

Forwarding is generic (``__getattr__`` → named RPC), so the proxies
track the substrate surface automatically; only non-picklable edges
are special-cased (listener registration is a local no-op, log-record
results travel through the :mod:`repro.compute.rpc` codec).  The
worker's :class:`~repro.sharedlog.RecordCache` stays real and local —
node-local caching is part of the system under test.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable, Dict

from ..errors import ServiceUnavailableError
from . import rpc


class GatewayConnection:
    """One worker's socket to the gateway, shared with its heartbeat
    thread (sends are locked; the worker main thread is the only
    reader, so replies never interleave)."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.send_lock = threading.Lock()
        self._op_seq = 0

    def send(self, frame: Any) -> None:
        with self.send_lock:
            rpc.send_frame(self.sock, frame)

    def call(self, target: str, method: str, args: tuple,
             kwargs: Dict[str, Any]) -> Any:
        """One storage RPC: send the op, block for its result.

        A torn connection surfaces as the retryable
        :class:`ServiceUnavailableError` — the same class an in-process
        substrate outage raises — so the worker's existing resilience
        loop owns the failure policy.
        """
        self._op_seq += 1
        seq = self._op_seq
        try:
            self.send((rpc.OP, seq, target, method,
                       rpc.encode_value(args), rpc.encode_value(kwargs)))
            frame = rpc.recv_frame(self.sock)
        except OSError as exc:
            raise ServiceUnavailableError(
                f"gateway connection lost during {target}.{method}",
                service=target, op=method,
            ) from exc
        if frame is None:
            raise ServiceUnavailableError(
                f"gateway closed during {target}.{method}",
                service=target, op=method,
            )
        kind = frame[0]
        if kind == rpc.SHUTDOWN:
            raise SystemExit(0)
        if kind != rpc.RESULT or frame[1] != seq:
            raise ServiceUnavailableError(
                f"protocol desync on {target}.{method}: {frame[:2]!r}",
                service=target, op=method,
            )
        ok, payload = frame[2], frame[3]
        if not ok:
            raise rpc.decode_error(payload)
        return rpc.decode_value(payload)


class _ProxySubstrate:
    """Generic method-forwarding proxy for one substrate name."""

    _LOCAL_NOOPS = ("add_storage_listener", "add_shard_storage_listener")

    def __init__(self, conn: GatewayConnection, target: str):
        self._conn = conn
        self._target = target

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("__"):
            raise AttributeError(method)
        if method in self._LOCAL_NOOPS:
            return lambda *a, **k: None
        conn, target = self._conn, self._target

        def remote(*args: Any, **kwargs: Any) -> Any:
            return conn.call(target, method, args, kwargs)

        # Cache the bound forwarder so hot paths skip __getattr__.
        setattr(self, method, remote)
        return remote


class ProxyLog(_ProxySubstrate):
    def __init__(self, conn: GatewayConnection):
        super().__init__(conn, "log")

    # Property on the real log; a method proxy would return a callable.
    @property
    def tail_seqnum(self) -> int:
        return self._conn.call("log", "tail_seqnum", (), {})

    @property
    def next_seqnum(self) -> int:
        return self._conn.call("log", "next_seqnum", (), {})


class ProxyKV(_ProxySubstrate):
    def __init__(self, conn: GatewayConnection):
        super().__init__(conn, "kv")


class ProxyMV(_ProxySubstrate):
    def __init__(self, conn: GatewayConnection):
        super().__init__(conn, "mv")


class ProxyPlane:
    """`StoragePlane` duck type backed by the gateway's real plane.

    Topology (shard/partition counts, labelling) is fetched once at
    connect time; per-key placement queries are memoized so a tag costs
    one routing RPC ever — placement is stable for a plane's lifetime.
    """

    name = "proxy"

    def __init__(self, conn: GatewayConnection):
        self._conn = conn
        self.log = ProxyLog(conn)
        self.kv = ProxyKV(conn)
        self.mv = ProxyMV(conn)
        topo = conn.call("plane", "describe", (), {})
        self._describe = dict(topo)
        self.num_log_shards = int(topo.get("log_shards", 1))
        self.num_kv_partitions = int(topo.get("kv_partitions", 1))
        self.labelled = bool(topo.get("labelled", False))
        self._log_routes: Dict[str, int] = {}
        self._kv_routes: Dict[str, int] = {}

    def log_shard_of(self, tag: str) -> int:
        shard = self._log_routes.get(tag)
        if shard is None:
            shard = self._conn.call("plane", "log_shard_of", (tag,), {})
            self._log_routes[tag] = shard
        return shard

    def kv_partition_of(self, key: str) -> int:
        part = self._kv_routes.get(key)
        if part is None:
            part = self._conn.call("plane", "kv_partition_of", (key,), {})
            self._kv_routes[key] = part
        return part

    def describe(self) -> Dict[str, Any]:
        return dict(self._describe)
