"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harness::

    python -m repro table1
    python -m repro fig10  [--requests N]
    python -m repro fig11  [--apps travel-reservation retwis] [--duration MS]
    python -m repro fig12  [--size BYTES] [--gc MS]
    python -m repro fig13  [--rates 150 350]
    python -m repro fig14  [--rates 300 600]
    python -m repro recovery [--f 0.0 0.2 0.4]
    python -m repro chaos  [--fault-rates 0.0 0.05 0.1] [--brownout]
    python -m repro failover [--leases 250 1000 4000] [--crash-at MS]
    python -m repro storagechaos [--components metalog partition]
                                 [--replications 1 3] [--crash-at MS]
                                 [--sequencers monolith batched leased-ranges]
    python -m repro live   [--workers N] [--kills K] [--requests N]
                           [--admission N] [--flightrec-dir DIR]
                           [--no-telemetry] [--prom-out PATH]
    python -m repro top    [--gateway PATH] [--interval S] [--once]
    python -m repro trace  [--protocol P] [--crash-at MS] [--out PATH]
    python -m repro shards [--shards 1 2 4 8] [--rates 150 300 600]
    python -m repro scale  [--sequencers monolith batched leased-ranges]
                           [--rates 400 800 1200 1600] [--users 100000]
                           [--diurnal BASE_RATE]
    python -m repro profile [--target shards] [--top 25]
    python -m repro advise --read-ratio 0.8 --rate 300

Every experiment command additionally accepts ``--seed N`` (reseed the
whole run deterministically) and ``--fault-rate R`` (inject transient
infrastructure faults — errors, timeouts, gray failure — into every
log/store operation at rate ``R``; see :mod:`repro.faults`), plus the
storage-plane topology flags ``--storage-backend`` / ``--log-shards`` /
``--kv-partitions`` / ``--placement`` (see :mod:`repro.storageplane`;
the default 1×1 ``auto`` topology is bit-identical to the pre-plane
code, which the CI golden-run diff enforces), and the sequencing flags
``--sequencer`` / ``--sequencer-batch`` / ``--sequencer-hold`` /
``--sequencer-block`` (see :mod:`repro.storageplane.sequencer`; the
default ``monolith`` strategy is likewise bit-identical).

``--jobs N`` fans each sweep's independent cells out over N worker
processes (default: all cores but one).  Output is bit-identical at
every job count — cells are deterministically seeded and reassembled
in grid order — which the CI golden diff enforces.

``--trace-out PATH`` attaches a span tracer to the run and writes a
Chrome trace-event JSON file (loadable in https://ui.perfetto.dev or
``chrome://tracing``); supported by the commands that execute
invocations (fig10-13, chaos, failover, trace).  Tracing never changes
results: the same seed prints the same tables with or without it.

Each command prints the same table the corresponding benchmark saves.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from .analysis import ProtocolAdvisor, WorkloadProfile
from .config import SystemConfig
from .harness import (
    APP_FACTORIES,
    SweepInterrupted,
    audit_live_points,
    default_jobs,
    profile_report,
    run_brownout_comparison,
    run_chaos_sweep,
    run_failover_sweep,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_latency_breakdown,
    run_live,
    run_recovery_sweep,
    run_scale_sweep,
    run_shard_sweep,
    run_storagechaos_sweep,
    run_table1,
    run_trace,
    trace_breakdown_table,
    trace_summary_table,
)
from .observe import Tracer, breakdown_table, write_chrome_trace

#: Commands that execute invocations and accept an attached tracer.
_TRACEABLE = ("fig10", "fig11", "fig12", "fig13", "chaos", "failover",
              "storagechaos", "trace", "shards", "scale", "live")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Halfmoon (SOSP 2023) reproduction experiments",
    )
    # Shared experiment options, inherited by every subcommand so they
    # can be given after the command name.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--seed", type=int, default=None,
        help="master RNG seed (non-negative; default: config seed)",
    )
    common.add_argument(
        "--fault-rate", type=float, default=None,
        help="per-operation infrastructure fault rate in [0, 1)",
    )
    common.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep cells (default: cores - 1; "
             "output is bit-identical at every job count)",
    )
    common.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of the run to PATH "
             "(Perfetto-loadable; invocation-executing commands only)",
    )
    common.add_argument(
        "--storage-backend", type=str, default=None,
        metavar="NAME",
        help="storage-plane backend (auto, single, sharded, or a "
             "registered name; default: auto)",
    )
    common.add_argument(
        "--log-shards", type=int, default=None, metavar="N",
        help="number of log shards behind the metalog (default: 1)",
    )
    common.add_argument(
        "--kv-partitions", type=int, default=None, metavar="M",
        help="number of KV-store hash partitions (default: 1)",
    )
    common.add_argument(
        "--placement", type=str, default=None,
        choices=["hash", "first_seen"],
        help="tag/key placement policy for sharded planes",
    )
    common.add_argument(
        "--sequencer", type=str, default=None, metavar="NAME",
        help="sequencing strategy (monolith, batched, leased-ranges, "
             "or a registered name; default: monolith)",
    )
    common.add_argument(
        "--sequencer-batch", type=int, default=None, metavar="K",
        help="group-commit size for --sequencer batched (default: 8)",
    )
    common.add_argument(
        "--sequencer-hold", type=float, default=None, metavar="MS",
        help="group-commit hold window in ms for --sequencer batched "
             "(default: 0.2)",
    )
    common.add_argument(
        "--sequencer-block", type=int, default=None, metavar="B",
        help="leased seqnum block size for --sequencer leased-ranges "
             "(default: 64)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "table1", help="primitive op latencies", parents=[common]
    ).add_argument("--samples", type=int, default=10_000)

    fig10 = sub.add_parser("fig10", help="read/write latency, 4 systems",
                           parents=[common])
    fig10.add_argument("--requests", type=int, default=1_500)
    fig10.add_argument("--keys", type=int, default=2_000)

    fig11 = sub.add_parser("fig11", help="apps: latency vs throughput",
                           parents=[common])
    fig11.add_argument("--apps", nargs="+", default=list(APP_FACTORIES),
                       choices=list(APP_FACTORIES))
    fig11.add_argument("--duration", type=float, default=5_000.0)

    fig12 = sub.add_parser("fig12", help="storage vs read ratio",
                           parents=[common])
    fig12.add_argument("--size", type=int, default=256)
    fig12.add_argument("--gc", type=float, default=10_000.0)
    fig12.add_argument("--duration", type=float, default=25_000.0)

    fig13 = sub.add_parser("fig13", help="latency vs read ratio",
                           parents=[common])
    fig13.add_argument("--rates", nargs="+", type=float,
                       default=[150.0, 350.0])
    fig13.add_argument("--duration", type=float, default=8_000.0)

    fig14 = sub.add_parser("fig14", help="protocol switching delay",
                           parents=[common])
    fig14.add_argument("--rates", nargs="+", type=float,
                       default=[300.0, 600.0])

    recovery = sub.add_parser("recovery", help="cost under failures",
                              parents=[common])
    recovery.add_argument("--f", nargs="+", type=float,
                          default=[0.0, 0.1, 0.2, 0.3, 0.4])
    recovery.add_argument("--requests", type=int, default=300)

    chaos = sub.add_parser(
        "chaos",
        help="crashes × infra faults: goodput, p99, exactly-once audit",
        parents=[common],
    )
    chaos.add_argument("--fault-rates", nargs="+", type=float,
                       default=[0.0, 0.02, 0.05, 0.1])
    chaos.add_argument("--requests", type=int, default=200)
    chaos.add_argument("--crash-f", type=float, default=0.15)
    chaos.add_argument("--brownout", action="store_true",
                       help="also run the log brown-out fallback ablation")

    failover = sub.add_parser(
        "failover",
        help="node crash under load: lease detection, orphan takeover, "
             "exactly-once audit",
        parents=[common],
    )
    failover.add_argument("--leases", nargs="+", type=float,
                          default=[250.0, 1_000.0, 4_000.0],
                          help="lease durations (ms) to sweep")
    failover.add_argument("--crash-at", type=float, default=1_500.0,
                          help="simulated time (ms) of the node crash")
    failover.add_argument("--rate", type=float, default=600.0,
                          help="offered load (requests per second)")
    failover.add_argument("--duration", type=float, default=4_000.0,
                          help="arrival window (ms)")
    failover.add_argument(
        "--systems", nargs="+",
        default=["boki", "halfmoon-read", "halfmoon-write"],
        help="protocols to sweep",
    )

    storagechaos = sub.add_parser(
        "storagechaos",
        help="storage components killed under load: metalog failover, "
             "shard loss, partition rebuild; exactly-once + "
             "consistency audits",
        parents=[common],
    )
    storagechaos.add_argument(
        "--components", nargs="+",
        default=["metalog", "shard-replica", "partition", "netsplit"],
        choices=["metalog", "shard-replica", "partition", "netsplit"],
        help="storage components to kill (one cell each)",
    )
    storagechaos.add_argument(
        "--systems", nargs="+",
        default=["unsafe", "boki", "halfmoon-read", "halfmoon-write"],
        help="protocols to sweep",
    )
    storagechaos.add_argument(
        "--replications", nargs="+", type=int, default=[1, 3],
        help="log-shard replication factors to sweep "
             "(1 is the paper-faithful default)",
    )
    storagechaos.add_argument(
        "--sequencers", nargs="+", default=["monolith"],
        choices=["monolith", "batched", "leased-ranges"],
        help="metalog sequencing strategies to chaos-test (the default "
             "keeps the historical grid; add batched/leased-ranges to "
             "prove group commit and leased blocks survive failover)",
    )
    storagechaos.add_argument("--crash-at", type=float, default=1_000.0,
                              help="simulated time (ms) of the kill")
    storagechaos.add_argument(
        "--recover-after", type=float, default=400.0,
        help="delay (ms) from kill to failover/repair/rebuild",
    )
    storagechaos.add_argument("--rate", type=float, default=400.0,
                              help="offered load (requests per second)")
    storagechaos.add_argument("--duration", type=float, default=3_000.0,
                              help="arrival window (ms)")
    storagechaos.add_argument(
        "--crash-f", type=float, default=0.1,
        help="instance crash probability per operation boundary "
             "(the unsafe control needs it to violate)",
    )

    trace = sub.add_parser(
        "trace",
        help="one traced DES run: latency breakdown + Chrome trace "
             "export",
        parents=[common],
    )
    trace.add_argument(
        "--protocol", default="halfmoon-read",
        choices=["unsafe", "boki", "halfmoon-read", "halfmoon-write"],
    )
    trace.add_argument("--rate", type=float, default=150.0,
                       help="offered load (requests per second)")
    trace.add_argument("--duration", type=float, default=5_000.0,
                       help="arrival window (ms)")
    trace.add_argument("--read-ratio", type=float, default=0.5)
    trace.add_argument("--crash-node", type=int, default=None,
                       help="function node to crash (default 0 when "
                            "--crash-at is given)")
    trace.add_argument("--crash-at", type=float, default=None,
                       help="simulated time (ms) of a node crash; "
                            "enables lease-based recovery")
    trace.add_argument("--out", type=str, default=None, metavar="PATH",
                       help="write the Chrome trace-event JSON here "
                            "(same as --trace-out)")
    trace.add_argument("--no-trace", action="store_true",
                       help="run without a tracer attached (results "
                            "are identical; used by the determinism "
                            "check)")

    shards = sub.add_parser(
        "shards",
        help="storage-plane scaling: p99 vs load by log-shard count",
        parents=[common],
    )
    shards.add_argument("--shards", nargs="+", type=int,
                        default=[1, 2, 4, 8],
                        help="log-shard counts to sweep")
    shards.add_argument("--rates", nargs="+", type=float,
                        default=[150.0, 300.0, 600.0],
                        help="offered loads (requests per second)")
    shards.add_argument("--protocol", default="boki",
                        choices=["unsafe", "boki", "halfmoon-read",
                                 "halfmoon-write"])
    shards.add_argument("--read-ratio", type=float, default=0.5)
    shards.add_argument("--duration", type=float, default=8_000.0,
                        help="arrival window (ms)")

    scale = sub.add_parser(
        "scale",
        help="sequencer scaling: p99 + sequencer occupancy vs offered "
             "load per sequencing strategy, Zipf-skewed users",
        parents=[common],
    )
    scale.add_argument(
        "--sequencers", nargs="+",
        default=["monolith", "batched", "leased-ranges"],
        help="sequencing strategies to sweep",
    )
    scale.add_argument("--rates", nargs="+", type=float,
                       default=[400.0, 800.0, 1200.0, 1600.0],
                       help="offered loads (requests per second)")
    scale.add_argument("--users", type=int, default=100_000,
                       help="Zipf user population (10^5-10^6)")
    scale.add_argument("--ops", type=int, default=4,
                       help="write+read pairs per request")
    scale.add_argument("--protocol", default="boki",
                       choices=["unsafe", "boki", "halfmoon-read",
                                "halfmoon-write"])
    scale.add_argument("--duration", type=float, default=3_000.0,
                       help="arrival window (ms)")
    scale.add_argument(
        "--diurnal", type=float, default=None, metavar="BASE_RATE",
        help="replace --rates with samples of a day-shaped load curve "
             "around BASE_RATE req/s",
    )
    scale.add_argument("--diurnal-points", type=int, default=6,
                       help="rate samples along the diurnal curve")

    live = sub.add_parser(
        "live",
        help="live compute plane: real worker processes over a unix "
             "socket, seeded mid-invocation SIGKILLs, wall-clock lease "
             "recovery, exactly-once audit (exits nonzero on failure)",
        parents=[common],
    )
    live.add_argument("--workers", type=int, default=4,
                      help="worker processes in the pool")
    live.add_argument("--kills", type=int, default=3,
                      help="mid-invocation SIGKILLs to deliver")
    live.add_argument("--rate", type=float, default=400.0,
                      help="offered load (requests per second)")
    live.add_argument("--requests", type=int, default=250,
                      help="total invocations to issue")
    live.add_argument("--lease", type=float, default=400.0,
                      help="wall-clock lease duration (ms)")
    live.add_argument("--crash-f", type=float, default=0.0,
                      help="worker-internal instance crash probability "
                           "(soft failures, composable with SIGKILLs)")
    live.add_argument(
        "--admission", type=int, default=None, metavar="N",
        help="bound gateway admission at N in-flight invocations; "
             "excess arrivals are shed deterministically and counted "
             "in the admission_rejections metric (default: unbounded)",
    )
    live.add_argument("--deadline", type=float, default=120.0,
                      help="abort the run after this many wall seconds")
    live.add_argument(
        "--systems", nargs="+",
        default=["unsafe", "boki", "halfmoon-read", "halfmoon-write"],
        help="protocols to audit (unsafe is the must-violate control)",
    )
    live.add_argument(
        "--no-telemetry", action="store_true",
        help="disable worker telemetry shipping even when traced "
             "(default: telemetry is on iff --trace-out is given)",
    )
    live.add_argument(
        "--flightrec-dir", type=str, default=None, metavar="DIR",
        help="directory for flight-recorder dumps and the repro-top "
             "discovery file (default: none — no artifacts)",
    )
    live.add_argument(
        "--prom-out", type=str, default=None, metavar="PATH",
        help="write the final metrics snapshot in Prometheus text "
             "format (one file per audited system: PATH.<system>)",
    )

    top = sub.add_parser(
        "top",
        help="poll a running live gateway's STATUS endpoint and render "
             "run state (workers, chaos, latency) until it exits",
    )
    top.add_argument(
        "--gateway", type=str, default="results", metavar="PATH",
        help="gateway socket, discovery file, or the --flightrec-dir "
             "of the run (default: results/)",
    )
    top.add_argument("--interval", type=float, default=1.0,
                     help="poll interval in seconds")
    top.add_argument("--once", action="store_true",
                     help="take one snapshot and exit (scriptable)")

    profile = sub.add_parser(
        "profile",
        help="cProfile hotspot report for one canonical cell",
        parents=[common],
    )
    profile.add_argument("--target", default="shards",
                         choices=["shards", "fig10", "chaos"])
    profile.add_argument("--top", type=int, default=25,
                         help="number of hotspots to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime", "ncalls"])

    advise = sub.add_parser("advise", help="recommend a protocol")
    advise.add_argument("--read-ratio", type=float, required=True)
    advise.add_argument("--rate", type=float, default=100.0)
    advise.add_argument("--value-bytes", type=int, default=256)
    return parser


def _experiment_config(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> Optional[SystemConfig]:
    """Build the shared config from ``--seed`` / ``--fault-rate``.

    Returns ``None`` when neither flag was given so each experiment keeps
    its own defaults; rejects invalid values with a parser error.
    """
    seed = getattr(args, "seed", None)
    fault_rate = getattr(args, "fault_rate", None)
    backend = getattr(args, "storage_backend", None)
    log_shards = getattr(args, "log_shards", None)
    kv_partitions = getattr(args, "kv_partitions", None)
    placement = getattr(args, "placement", None)
    sequencer = getattr(args, "sequencer", None)
    sequencer_batch = getattr(args, "sequencer_batch", None)
    sequencer_hold = getattr(args, "sequencer_hold", None)
    sequencer_block = getattr(args, "sequencer_block", None)
    if seed is not None and seed < 0:
        parser.error(f"--seed must be non-negative, got {seed}")
    if fault_rate is not None and not (0.0 <= fault_rate < 1.0):
        parser.error(
            f"--fault-rate must be in [0, 1), got {fault_rate}"
        )
    if log_shards is not None and log_shards <= 0:
        parser.error(f"--log-shards must be positive, got {log_shards}")
    if kv_partitions is not None and kv_partitions <= 0:
        parser.error(
            f"--kv-partitions must be positive, got {kv_partitions}"
        )
    if backend is not None and backend != "auto":
        from .storageplane import available_backends

        if backend not in available_backends():
            parser.error(
                f"unknown --storage-backend {backend!r}; available: "
                f"{['auto'] + available_backends()}"
            )
    if sequencer is not None:
        from .storageplane import available_sequencers

        if sequencer not in available_sequencers():
            parser.error(
                f"unknown --sequencer {sequencer!r}; available: "
                f"{available_sequencers()}"
            )
    if sequencer_batch is not None and sequencer_batch < 1:
        parser.error(
            f"--sequencer-batch must be >= 1, got {sequencer_batch}"
        )
    if sequencer_block is not None and sequencer_block < 1:
        parser.error(
            f"--sequencer-block must be >= 1, got {sequencer_block}"
        )
    if sequencer_hold is not None and sequencer_hold < 0:
        parser.error(
            f"--sequencer-hold must be >= 0, got {sequencer_hold}"
        )
    storage_flags = (backend, log_shards, kv_partitions, placement,
                     sequencer, sequencer_batch, sequencer_hold,
                     sequencer_block)
    if seed is None and fault_rate is None and all(
        flag is None for flag in storage_flags
    ):
        return None
    config = SystemConfig()
    if seed is not None:
        config = config.with_seed(seed)
    if fault_rate is not None:
        config = config.with_fault_rate(fault_rate)
    if any(flag is not None for flag in storage_flags):
        config = config.with_storage_plane(
            log_shards=log_shards, kv_partitions=kv_partitions,
            backend=backend, placement=placement,
            sequencer=sequencer, sequencer_batch=sequencer_batch,
            sequencer_hold_ms=sequencer_hold,
            sequencer_block=sequencer_block,
        )
    return config.validate()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: dispatch plus graceful SIGINT/SIGTERM.

    An interrupt mid-sweep drains in-flight cells, prints a
    partial-result summary instead of a stacked traceback, and exits
    nonzero (130, the conventional fatal-signal code).
    """
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(
            signal.SIGTERM, _sigterm_to_interrupt
        )
    except ValueError:  # not the main thread: leave handlers alone
        pass
    try:
        return _dispatch(argv)
    except SweepInterrupted as exc:
        print(f"\n{exc}; partial results above", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("\ninterrupted before results were ready", file=sys.stderr)
        return 130
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)


def _sigterm_to_interrupt(signum, frame):
    """Route SIGTERM through the same drain path as ctrl-C."""
    raise KeyboardInterrupt


def _dispatch(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    config = _experiment_config(parser, args)
    exit_code = 0

    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None and args.command not in _TRACEABLE:
        parser.error(
            f"--trace-out is not supported by {args.command!r} "
            "(it executes no invocations)"
        )
    tracer = Tracer() if trace_out is not None else None

    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    admission = getattr(args, "admission", None)
    if admission is not None and admission < 1:
        parser.error(f"--admission must be >= 1, got {admission}")
    if jobs is None:
        jobs = default_jobs()

    if args.command == "table1":
        print(run_table1(config=config, samples=args.samples).render())
    elif args.command == "fig10":
        tables = run_fig10(config=config, requests=args.requests,
                           num_keys=args.keys, tracer=tracer, jobs=jobs)
        print(tables["read"].render())
        print()
        print(tables["write"].render())
    elif args.command == "fig11":
        tables = run_fig11(apps=args.apps, config=config,
                           duration_ms=args.duration, tracer=tracer,
                           jobs=jobs)
        for table in tables.values():
            print(table.render())
            print()
    elif args.command == "fig12":
        print(
            run_fig12(
                value_bytes=args.size, gc_interval_ms=args.gc,
                config=config, duration_ms=args.duration,
                tracer=tracer, jobs=jobs,
            ).render()
        )
    elif args.command == "fig13":
        for table in run_fig13(
            rates=args.rates, config=config, duration_ms=args.duration,
            tracer=tracer, jobs=jobs,
        ).values():
            print(table.render())
            print()
        # Where the milliseconds go at the first swept rate: the
        # mechanism behind the crossover the tables above show.
        print(
            run_latency_breakdown(
                config=config, rate_per_s=args.rates[0],
                duration_ms=args.duration, tracer=tracer, jobs=jobs,
            ).render()
        )
    elif args.command == "fig14":
        print(run_fig14(rates=args.rates, config=config).render())
    elif args.command == "recovery":
        print(
            run_recovery_sweep(
                f_values=args.f, config=config, requests=args.requests
            ).render()
        )
    elif args.command == "chaos":
        chaos_breakdowns: dict = {}
        print(
            run_chaos_sweep(
                fault_rates=args.fault_rates, config=config,
                requests=args.requests, crash_f=args.crash_f,
                seed=getattr(args, "seed", None),
                tracer=tracer, breakdowns=chaos_breakdowns,
                jobs=jobs,
            ).render()
        )
        print()
        print(
            breakdown_table(
                chaos_breakdowns,
                "Latency breakdown at fault rate "
                f"{max(args.fault_rates)}",
            ).render()
        )
        if args.brownout:
            print()
            print(
                run_brownout_comparison(
                    config=config, seed=getattr(args, "seed", None)
                ).render()
            )
    elif args.command == "failover":
        fault_rate = getattr(args, "fault_rate", None)
        failover_breakdowns: dict = {}
        print(
            run_failover_sweep(
                lease_values=args.leases, systems=args.systems,
                crash_at_ms=args.crash_at, rate_per_s=args.rate,
                duration_ms=args.duration,
                seed=getattr(args, "seed", None),
                # Compose node crashes with infra faults by default; an
                # explicit --fault-rate (including 0) overrides.
                fault_rate=(0.05 if fault_rate is None else fault_rate),
                tracer=tracer, breakdowns=failover_breakdowns,
                jobs=jobs,
            ).render()
        )
        print()
        print(
            breakdown_table(
                failover_breakdowns,
                f"Latency breakdown at lease {args.leases[0]:.0f}ms",
            ).render()
        )
    elif args.command == "storagechaos":
        print(
            run_storagechaos_sweep(
                components=args.components, systems=args.systems,
                replications=args.replications,
                sequencers=args.sequencers,
                crash_at_ms=args.crash_at,
                recover_after_ms=args.recover_after,
                rate_per_s=args.rate, duration_ms=args.duration,
                config=config, seed=getattr(args, "seed", None),
                crash_f=args.crash_f, tracer=tracer, jobs=jobs,
            ).render()
        )
    elif args.command == "trace":
        result, run_tracer = run_trace(
            protocol=args.protocol,
            rate_per_s=args.rate,
            duration_ms=args.duration,
            read_ratio=args.read_ratio,
            crash_node=args.crash_node,
            crash_at_ms=args.crash_at,
            config=config,
            tracing=not args.no_trace,
        )
        print(trace_summary_table(result).render())
        print()
        print(trace_breakdown_table(result).render())
        out = args.out if args.out is not None else trace_out
        if run_tracer is not None and out is not None:
            trace_json = write_chrome_trace(run_tracer, out)
            print(
                f"trace written to {out} "
                f"({trace_json['otherData']['spans']} spans, "
                f"{len(trace_json['traceEvents'])} events)"
            )
    elif args.command == "shards":
        print(
            run_shard_sweep(
                shard_counts=args.shards, rates=args.rates,
                protocol=args.protocol, read_ratio=args.read_ratio,
                config=config, duration_ms=args.duration,
                tracer=tracer, jobs=jobs,
            ).render()
        )
    elif args.command == "scale":
        print(
            run_scale_sweep(
                sequencers=args.sequencers, rates=args.rates,
                protocol=args.protocol, num_users=args.users,
                ops_per_request=args.ops, config=config,
                duration_ms=args.duration, diurnal_base=args.diurnal,
                diurnal_points=args.diurnal_points,
                tracer=tracer, jobs=jobs,
            ).render()
        )
    elif args.command == "live":
        fault_rate = getattr(args, "fault_rate", None)
        points: dict = {}
        print(
            run_live(
                systems=args.systems, workers=args.workers,
                kills=args.kills, rate_per_s=args.rate,
                requests=args.requests, lease_ms=args.lease,
                config=config, seed=getattr(args, "seed", None),
                fault_rate=(0.0 if fault_rate is None else fault_rate),
                crash_f=args.crash_f, deadline_s=args.deadline,
                tracer=tracer,
                telemetry=(False if args.no_telemetry else None),
                flightrec_dir=args.flightrec_dir,
                points_out=points,
                max_inflight=args.admission,
            ).render()
        )
        if args.prom_out is not None:
            from .observe import write_prom_text

            for system, point in points.items():
                path = f"{args.prom_out}.{system}"
                write_prom_text(point.result.metrics, path)
                print(f"prometheus snapshot written to {path}")
        failures = audit_live_points(points)
        if failures:
            for failure in failures:
                print(f"AUDIT FAILURE: {failure}")
            exit_code = 1
        else:
            delivered = sum(p.kills_delivered for p in points.values())
            print(
                "exactly-once audit: PASS "
                f"({delivered} SIGKILLs delivered across "
                f"{len(points)} systems)"
            )
    elif args.command == "top":
        from .compute.status import top_loop

        return top_loop(
            args.gateway, interval_s=args.interval, once=args.once
        )
    elif args.command == "profile":
        print(
            profile_report(
                target=args.target, top=args.top, sort=args.sort,
                config=config,
            )
        )
    elif args.command == "advise":
        profile = WorkloadProfile(
            p_read=args.read_ratio,
            p_write=1.0 - args.read_ratio,
            arrival_rate_per_s=args.rate,
        )
        advisor = ProtocolAdvisor(value_bytes=args.value_bytes)
        recommendation = advisor.recommend(profile)
        print(recommendation.explain())
        print(f"recommended protocol: {recommendation.protocol}")

    if tracer is not None and args.command != "trace":
        trace_json = write_chrome_trace(tracer, trace_out)
        print(
            f"trace written to {trace_out} "
            f"({trace_json['otherData']['spans']} spans, "
            f"{len(trace_json['traceEvents'])} events)"
        )
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
