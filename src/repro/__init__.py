"""Halfmoon: log-optimal fault-tolerant stateful serverless computing.

A full reproduction of the SOSP 2023 paper by Qi, Liu, and Jin: the two
asymmetric logging protocols (log-free reads / log-free writes), the
symmetric Boki-style baseline, exactly-once crash/retry semantics, garbage
collection, pauseless protocol switching, the protocol-choice advisor, and
a calibrated discrete-event simulation of the serverless platform the
paper evaluates on.

Quickstart::

    from repro import LocalRuntime

    runtime = LocalRuntime(protocol="halfmoon-read")
    runtime.populate("counter", 0)

    def bump(ctx, inp):
        value = ctx.read("counter")
        ctx.write("counter", value + inp)
        return value + inp

    runtime.register("bump", bump)
    result = runtime.invoke("bump", 5)
    assert result.output == 5
"""

from .config import (
    ClusterConfig,
    DEFAULT_CONFIG,
    FailureConfig,
    FaultConfig,
    GCConfig,
    LatencyConfig,
    ProtocolConfig,
    RecoveryConfig,
    ResilienceConfig,
    StorageSizeConfig,
    SystemConfig,
)
from .errors import (
    ConditionalAppendError,
    ConditionFailedError,
    ConfigError,
    ConsistencyViolation,
    CrashError,
    InvocationError,
    KeyMissingError,
    LogError,
    PermanentServiceError,
    ProtocolError,
    ReproError,
    RetriesExhaustedError,
    ServiceFaultError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    SimulationError,
    StoreError,
    SwitchError,
    TransientServiceError,
    TrimmedError,
)
from .faults import (
    CircuitBreaker,
    FaultDecision,
    FaultInjector,
    RetryPolicy,
)
from .protocols import (
    BokiProtocol,
    HalfmoonReadProtocol,
    HalfmoonWriteProtocol,
    Protocol,
    TransitionalProtocol,
    UnsafeProtocol,
    build_protocol,
    protocol_names,
)
from .runtime import (
    BernoulliCrashes,
    ComputeOp,
    Context,
    CrashOnceAtEvery,
    InvocationResult,
    InvokeOp,
    LocalRuntime,
    NoCrashes,
    ReadOp,
    ScriptedCrashes,
    Session,
    SyncOp,
    TxnOp,
    WriteOp,
)
from .sharedlog import LogRecord, SharedLog
from .store import KVStore, MultiVersionStore

__version__ = "1.0.0"

__all__ = [
    "BernoulliCrashes",
    "BokiProtocol",
    "CircuitBreaker",
    "ClusterConfig",
    "ComputeOp",
    "ConditionFailedError",
    "ConditionalAppendError",
    "ConfigError",
    "ConsistencyViolation",
    "Context",
    "CrashError",
    "CrashOnceAtEvery",
    "DEFAULT_CONFIG",
    "FailureConfig",
    "FaultConfig",
    "FaultDecision",
    "FaultInjector",
    "GCConfig",
    "HalfmoonReadProtocol",
    "HalfmoonWriteProtocol",
    "InvocationError",
    "InvocationResult",
    "InvokeOp",
    "KVStore",
    "KeyMissingError",
    "LatencyConfig",
    "LocalRuntime",
    "LogError",
    "LogRecord",
    "MultiVersionStore",
    "NoCrashes",
    "Protocol",
    "ProtocolConfig",
    "RecoveryConfig",
    "PermanentServiceError",
    "ProtocolError",
    "ReadOp",
    "ReproError",
    "ResilienceConfig",
    "RetriesExhaustedError",
    "RetryPolicy",
    "ScriptedCrashes",
    "ServiceFaultError",
    "ServiceTimeoutError",
    "ServiceUnavailableError",
    "Session",
    "SharedLog",
    "SimulationError",
    "StorageSizeConfig",
    "StoreError",
    "SwitchError",
    "SyncOp",
    "SystemConfig",
    "TxnOp",
    "TransientServiceError",
    "TransitionalProtocol",
    "TrimmedError",
    "UnsafeProtocol",
    "WriteOp",
    "build_protocol",
    "protocol_names",
    "__version__",
]
