"""FIFO resources for the DES kernel.

A :class:`Resource` models a pool of identical servers (e.g. the worker
slots of the function nodes).  Requests are granted strictly in FIFO order,
which keeps simulations deterministic and matches how a serverless gateway
dispatches queued invocations.

:class:`NodeWorkerPool` refines the model for node-failure experiments:
the same single gateway FIFO, but every grant names the *function node*
whose slot it occupies, and nodes can crash (wiping their occupied
slots) and restart.  With all nodes alive it is grant-for-grant
identical to a pooled :class:`Resource` of the same total capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, List, Optional

from ..errors import SimulationError
from .kernel import Event, Simulator


class Resource:
    """A counted FIFO resource."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._peak_in_use = 0
        self._grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def peak_in_use(self) -> int:
        return self._peak_in_use

    @property
    def grants(self) -> int:
        return self._grants

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        self._in_use += 1
        self._peak_in_use = max(self._peak_in_use, self._in_use)
        self._grants += 1
        event.succeed(self)

    def use(self, duration: float) -> Generator[Event, None, None]:
        """Process helper: acquire, hold for ``duration``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


@dataclass(frozen=True)
class WorkerGrant:
    """A worker slot granted by :class:`NodeWorkerPool`.

    ``epoch`` identifies the node incarnation that granted the slot;
    releases carrying a stale epoch (the node crashed in between) are
    ignored, because the crash already reclaimed every slot.
    """

    node_id: int
    epoch: int


class _NodeSlots:
    __slots__ = ("capacity", "in_use", "alive", "epoch")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.in_use = 0
        self.alive = True
        self.epoch = 0


class NodeWorkerPool:
    """Worker slots of the function nodes behind one gateway FIFO.

    Requests queue at the gateway; a grant assigns the invocation to an
    alive node with a free slot, round-robin across nodes so in-flight
    work spreads evenly (and a single node crash orphans ~1/N of it).
    Crashing a node zeroes its occupied slots — the holders are
    interrupted separately by the platform — and bumps its epoch so
    their late releases become no-ops.  Restarting re-admits the node
    and immediately drains the gateway queue into its free slots.
    """

    def __init__(self, sim: Simulator, function_nodes: int,
                 workers_per_node: int, name: str = "workers"):
        if function_nodes <= 0 or workers_per_node <= 0:
            raise SimulationError("pool dimensions must be positive")
        self.sim = sim
        self.name = name
        self._nodes = [_NodeSlots(workers_per_node)
                       for _ in range(function_nodes)]
        self._waiters: Deque[Event] = deque()
        self._rr = 0
        self._grants = 0

    # -- sizing / introspection ------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def in_use(self) -> int:
        return sum(n.in_use for n in self._nodes if n.alive)

    @property
    def grants(self) -> int:
        return self._grants

    def is_alive(self, node_id: int) -> bool:
        return self._nodes[node_id].alive

    def alive_nodes(self) -> List[int]:
        return [i for i, n in enumerate(self._nodes) if n.alive]

    def node_in_use(self, node_id: int) -> int:
        return self._nodes[node_id].in_use

    # -- request / release -----------------------------------------------

    def request(self) -> Event:
        """Return an event that fires with a :class:`WorkerGrant`."""
        event = self.sim.event()
        node_id = self._free_node()
        if node_id is None:
            self._waiters.append(event)
        else:
            self._grant(event, node_id)
        return event

    def release(self, grant: WorkerGrant) -> None:
        node = self._nodes[grant.node_id]
        if not node.alive or node.epoch != grant.epoch:
            # The node crashed after this grant: its slots were already
            # reclaimed wholesale.
            return
        if node.in_use <= 0:
            raise SimulationError(
                f"release of idle node {grant.node_id} in {self.name!r}"
            )
        node.in_use -= 1
        self._drain_waiters()

    def _free_node(self) -> Optional[int]:
        count = len(self._nodes)
        for offset in range(count):
            idx = (self._rr + offset) % count
            node = self._nodes[idx]
            if node.alive and node.in_use < node.capacity:
                self._rr = (idx + 1) % count
                return idx
        return None

    def _grant(self, event: Event, node_id: int) -> None:
        node = self._nodes[node_id]
        node.in_use += 1
        self._grants += 1
        event.succeed(WorkerGrant(node_id, node.epoch))

    def _drain_waiters(self) -> None:
        while self._waiters:
            node_id = self._free_node()
            if node_id is None:
                return
            self._grant(self._waiters.popleft(), node_id)

    # -- failure events ----------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Take a node down *now*: its occupied slots vanish."""
        node = self._nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        node.in_use = 0
        node.epoch += 1

    def restart(self, node_id: int) -> None:
        """Bring a crashed node back with a cold cache and empty slots."""
        node = self._nodes[node_id]
        if node.alive:
            return
        node.alive = True
        node.in_use = 0
        node.epoch += 1
        self._drain_waiters()


# ---------------------------------------------------------------------------
# Sequencer stations (analytic FIFO bookkeeping, not kernel resources)
# ---------------------------------------------------------------------------
#
# The platform's ``_drain`` models the metalog sequencer as an analytic
# FIFO: appends visit it in nondecreasing simulation time, each charging
# the queue *wait* it would have suffered (service time itself is already
# inside the calibrated append latency).  The monolith arithmetic stays
# inlined in the hot loop; the batched and leased strategies get their
# own station objects here because their visit logic carries state the
# inline form can't.


class SequencerBatchStation:
    """Group-commit station: ``batch`` appends share one service quantum.

    An append arriving while a batch is open (within ``hold_ms`` of its
    opener, fewer than ``batch`` members) joins it and waits only until
    the batch's service begins.  The opener pays the busy-wait plus the
    full hold window — the price of amortization.  With ``batch=1`` and
    ``hold_ms=0`` every visit opens (and instantly closes) its own
    batch, which reduces bit-exactly to the monolith arithmetic.
    """

    __slots__ = ("service_ms", "hold_ms", "batch", "next_free",
                 "_batch_close", "_batch_start", "_batch_count",
                 "busy_ms", "visits", "batches")

    def __init__(self, service_ms: float, hold_ms: float, batch: int):
        if batch < 1:
            raise SimulationError("batch must be >= 1")
        self.service_ms = float(service_ms)
        self.hold_ms = float(hold_ms)
        self.batch = int(batch)
        self.next_free = 0.0
        #: Close instant of the currently open batch (opener + hold).
        self._batch_close = -1.0
        #: Instant the open batch's service begins (== its close).
        self._batch_start = 0.0
        self._batch_count = 0
        self.busy_ms = 0.0
        self.visits = 0
        self.batches = 0

    def visit(self, now: float) -> float:
        """One append arrives; returns the extra wait it suffers."""
        self.visits += 1
        if (self._batch_count != 0
                and self._batch_count < self.batch
                and now <= self._batch_close):
            self._batch_count += 1
            wait = self._batch_start - now
            return wait if wait > 0.0 else 0.0
        # Open a new batch: wait for the sequencer to free up, then sit
        # out the hold window collecting joiners.
        open_at = now if now > self.next_free else self.next_free
        start = open_at + self.hold_ms
        self._batch_close = start
        self._batch_start = start
        self._batch_count = 1
        self.next_free = start + self.service_ms
        self.batches += 1
        self.busy_ms += self.service_ms
        return start - now

    @property
    def mean_batch_size(self) -> float:
        return self.visits / self.batches if self.batches else 0.0


class SequencerLeaseStation:
    """Leased-range station: one sequencer visit per ``block`` appends.

    The first append of every block pays the monolith queue wait (the
    refill round trip); the next ``block - 1`` draw from the local lease
    and never touch the sequencer.  With ``block=1`` every append
    refills, which reduces bit-exactly to the monolith arithmetic.
    """

    __slots__ = ("service_ms", "block", "next_free", "_lease_left",
                 "busy_ms", "visits", "refills")

    def __init__(self, service_ms: float, block: int):
        if block < 1:
            raise SimulationError("block must be >= 1")
        self.service_ms = float(service_ms)
        self.block = int(block)
        self.next_free = 0.0
        self._lease_left = 0
        self.busy_ms = 0.0
        self.visits = 0
        self.refills = 0

    def visit(self, now: float) -> float:
        """One append arrives; returns the extra wait it suffers."""
        self.visits += 1
        if self._lease_left > 0:
            self._lease_left -= 1
            return 0.0
        wait = self.next_free - now
        if wait < 0.0:
            wait = 0.0
        self.next_free = now + wait + self.service_ms
        self._lease_left = self.block - 1
        self.refills += 1
        self.busy_ms += self.service_ms
        return wait
