"""FIFO resources for the DES kernel.

A :class:`Resource` models a pool of identical servers (e.g. the worker
slots of the function nodes).  Requests are granted strictly in FIFO order,
which keeps simulations deterministic and matches how a serverless gateway
dispatches queued invocations.

:class:`NodeWorkerPool` refines the model for node-failure experiments:
the same single gateway FIFO, but every grant names the *function node*
whose slot it occupies, and nodes can crash (wiping their occupied
slots) and restart.  With all nodes alive it is grant-for-grant
identical to a pooled :class:`Resource` of the same total capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, List, Optional

from ..errors import SimulationError
from .kernel import Event, Simulator


class Resource:
    """A counted FIFO resource."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._peak_in_use = 0
        self._grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def peak_in_use(self) -> int:
        return self._peak_in_use

    @property
    def grants(self) -> int:
        return self._grants

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        self._in_use += 1
        self._peak_in_use = max(self._peak_in_use, self._in_use)
        self._grants += 1
        event.succeed(self)

    def use(self, duration: float) -> Generator[Event, None, None]:
        """Process helper: acquire, hold for ``duration``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


@dataclass(frozen=True)
class WorkerGrant:
    """A worker slot granted by :class:`NodeWorkerPool`.

    ``epoch`` identifies the node incarnation that granted the slot;
    releases carrying a stale epoch (the node crashed in between) are
    ignored, because the crash already reclaimed every slot.
    """

    node_id: int
    epoch: int


class _NodeSlots:
    __slots__ = ("capacity", "in_use", "alive", "epoch")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.in_use = 0
        self.alive = True
        self.epoch = 0


class NodeWorkerPool:
    """Worker slots of the function nodes behind one gateway FIFO.

    Requests queue at the gateway; a grant assigns the invocation to an
    alive node with a free slot, round-robin across nodes so in-flight
    work spreads evenly (and a single node crash orphans ~1/N of it).
    Crashing a node zeroes its occupied slots — the holders are
    interrupted separately by the platform — and bumps its epoch so
    their late releases become no-ops.  Restarting re-admits the node
    and immediately drains the gateway queue into its free slots.
    """

    def __init__(self, sim: Simulator, function_nodes: int,
                 workers_per_node: int, name: str = "workers"):
        if function_nodes <= 0 or workers_per_node <= 0:
            raise SimulationError("pool dimensions must be positive")
        self.sim = sim
        self.name = name
        self._nodes = [_NodeSlots(workers_per_node)
                       for _ in range(function_nodes)]
        self._waiters: Deque[Event] = deque()
        self._rr = 0
        self._grants = 0

    # -- sizing / introspection ------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def in_use(self) -> int:
        return sum(n.in_use for n in self._nodes if n.alive)

    @property
    def grants(self) -> int:
        return self._grants

    def is_alive(self, node_id: int) -> bool:
        return self._nodes[node_id].alive

    def alive_nodes(self) -> List[int]:
        return [i for i, n in enumerate(self._nodes) if n.alive]

    def node_in_use(self, node_id: int) -> int:
        return self._nodes[node_id].in_use

    # -- request / release -----------------------------------------------

    def request(self) -> Event:
        """Return an event that fires with a :class:`WorkerGrant`."""
        event = self.sim.event()
        node_id = self._free_node()
        if node_id is None:
            self._waiters.append(event)
        else:
            self._grant(event, node_id)
        return event

    def release(self, grant: WorkerGrant) -> None:
        node = self._nodes[grant.node_id]
        if not node.alive or node.epoch != grant.epoch:
            # The node crashed after this grant: its slots were already
            # reclaimed wholesale.
            return
        if node.in_use <= 0:
            raise SimulationError(
                f"release of idle node {grant.node_id} in {self.name!r}"
            )
        node.in_use -= 1
        self._drain_waiters()

    def _free_node(self) -> Optional[int]:
        count = len(self._nodes)
        for offset in range(count):
            idx = (self._rr + offset) % count
            node = self._nodes[idx]
            if node.alive and node.in_use < node.capacity:
                self._rr = (idx + 1) % count
                return idx
        return None

    def _grant(self, event: Event, node_id: int) -> None:
        node = self._nodes[node_id]
        node.in_use += 1
        self._grants += 1
        event.succeed(WorkerGrant(node_id, node.epoch))

    def _drain_waiters(self) -> None:
        while self._waiters:
            node_id = self._free_node()
            if node_id is None:
                return
            self._grant(self._waiters.popleft(), node_id)

    # -- failure events ----------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Take a node down *now*: its occupied slots vanish."""
        node = self._nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        node.in_use = 0
        node.epoch += 1

    def restart(self, node_id: int) -> None:
        """Bring a crashed node back with a cold cache and empty slots."""
        node = self._nodes[node_id]
        if node.alive:
            return
        node.alive = True
        node.in_use = 0
        node.epoch += 1
        self._drain_waiters()
