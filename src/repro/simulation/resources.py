"""FIFO resources for the DES kernel.

A :class:`Resource` models a pool of identical servers (e.g. the worker
slots of the function nodes).  Requests are granted strictly in FIFO order,
which keeps simulations deterministic and matches how a serverless gateway
dispatches queued invocations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from ..errors import SimulationError
from .kernel import Event, Simulator


class Resource:
    """A counted FIFO resource."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._peak_in_use = 0
        self._grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    @property
    def peak_in_use(self) -> int:
        return self._peak_in_use

    @property
    def grants(self) -> int:
        return self._grants

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, event: Event) -> None:
        self._in_use += 1
        self._peak_in_use = max(self._peak_in_use, self._in_use)
        self._grants += 1
        event.succeed(self)

    def use(self, duration: float) -> Generator[Event, None, None]:
        """Process helper: acquire, hold for ``duration``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()
