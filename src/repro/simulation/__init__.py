"""Discrete-event simulation substrate: kernel, resources, RNG, latency,
and measurement primitives.

``Simulator`` / ``Event`` / ``Timeout`` / ``Process`` are bound to the
*active* kernel — the pure-Python reference or its compiled C twin —
selected by the ``REPRO_SIM_KERNEL`` environment variable (see
:mod:`repro.simulation.select`).  ``Interrupt`` is always the pure
kernel's class so ``except Interrupt`` works across kernels.
"""

from .kernel import Event, Interrupt, Process, Simulator, Timeout
from .latency import (
    ConstantLatency,
    EmpiricalLatency,
    LatencyModel,
    LogNormalLatency,
    MixtureLatency,
    NormalDrawBatch,
    ScaledLatency,
    UniformLatency,
)
from .metrics import (
    Counter,
    LatencyRecorder,
    LatencySummary,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)
from .resources import NodeWorkerPool, Resource, WorkerGrant
from .rng import RngRegistry, derive_seed
from .select import (
    KERNEL_CHOICES,
    KERNEL_ENV,
    active_kernel,
    compiled_available,
    init_from_env as _init_kernel_from_env,
    requested_kernel,
    select_kernel,
)

# Apply REPRO_SIM_KERNEL: may rebind Simulator/Event/Timeout/Process
# above to the compiled twin.
_init_kernel_from_env()

__all__ = [
    "KERNEL_CHOICES",
    "KERNEL_ENV",
    "ConstantLatency",
    "Counter",
    "EmpiricalLatency",
    "Event",
    "Interrupt",
    "LatencyModel",
    "LatencyRecorder",
    "LatencySummary",
    "LogNormalLatency",
    "MixtureLatency",
    "NodeWorkerPool",
    "NormalDrawBatch",
    "Process",
    "Resource",
    "RngRegistry",
    "ScaledLatency",
    "Simulator",
    "ThroughputMeter",
    "TimeSeries",
    "TimeWeightedGauge",
    "Timeout",
    "UniformLatency",
    "WorkerGrant",
    "active_kernel",
    "compiled_available",
    "derive_seed",
    "requested_kernel",
    "select_kernel",
]
