"""Discrete-event simulation substrate: kernel, resources, RNG, latency,
and measurement primitives.
"""

from .kernel import Event, Interrupt, Process, Simulator, Timeout
from .latency import (
    ConstantLatency,
    EmpiricalLatency,
    LatencyModel,
    LogNormalLatency,
    MixtureLatency,
    ScaledLatency,
    UniformLatency,
)
from .metrics import (
    Counter,
    LatencyRecorder,
    LatencySummary,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)
from .resources import NodeWorkerPool, Resource, WorkerGrant
from .rng import RngRegistry, derive_seed

__all__ = [
    "ConstantLatency",
    "Counter",
    "EmpiricalLatency",
    "Event",
    "Interrupt",
    "LatencyModel",
    "LatencyRecorder",
    "LatencySummary",
    "LogNormalLatency",
    "MixtureLatency",
    "NodeWorkerPool",
    "Process",
    "Resource",
    "RngRegistry",
    "ScaledLatency",
    "Simulator",
    "ThroughputMeter",
    "TimeSeries",
    "TimeWeightedGauge",
    "Timeout",
    "UniformLatency",
    "WorkerGrant",
    "derive_seed",
]
