"""Deterministic random-number streams.

Every stochastic component of the simulation (arrival process, latency
sampling, crash injection, key selection, ...) draws from its own named
stream, derived from a single root seed.  Two runs with the same root seed
and the same stream names therefore produce identical results regardless of
the order in which components are constructed, which keeps experiments and
property tests reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Streams are memoised: asking for the same name twice returns the same
    generator object (so its internal state advances continuously), while
    distinct names yield statistically independent streams.
    """

    def __init__(self, root_seed: int):
        self._root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._root_seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Return a new registry whose root seed is derived from ``name``.

        Useful for giving repeated experiment trials independent-but-
        reproducible randomness.
        """
        return RngRegistry(derive_seed(self._root_seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RngRegistry(root_seed={self._root_seed!r}, "
            f"streams={sorted(self._streams)})"
        )
