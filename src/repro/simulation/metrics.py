"""Measurement primitives: latency recorders, counters, time-weighted gauges.

These are deliberately simulation-agnostic — they take explicit timestamps —
so the same classes serve direct-mode tests and DES-mode benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError


class LatencyRecorder:
    """Accumulates latency samples and reports summary statistics."""

    __slots__ = ("name", "_samples")

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples: List[float] = []

    def record(self, value_ms: float) -> None:
        if value_ms < 0:
            raise SimulationError(f"negative latency sample: {value_ms}")
        self._samples.append(float(value_ms))

    def extend(self, values_ms) -> None:
        for v in values_ms:
            self.record(v)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """``q`` in [0, 100]; raises if no samples were recorded."""
        if not self._samples:
            raise SimulationError(f"recorder {self.name!r} is empty")
        return float(np.percentile(self._samples, q))

    def median(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._samples:
            raise SimulationError(f"recorder {self.name!r} is empty")
        return float(np.mean(self._samples))

    def summary(self) -> "LatencySummary":
        return LatencySummary(
            name=self.name,
            count=self.count,
            mean_ms=self.mean(),
            median_ms=self.median(),
            p99_ms=self.p99(),
        )

    def merged(self, other: "LatencyRecorder") -> "LatencyRecorder":
        out = LatencyRecorder(self.name)
        out._samples = self._samples + other._samples
        return out


@dataclass(frozen=True)
class LatencySummary:
    name: str
    count: int
    mean_ms: float
    median_ms: float
    p99_ms: float

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.count} mean={self.mean_ms:.2f}ms "
            f"median={self.median_ms:.2f}ms p99={self.p99_ms:.2f}ms"
        )


class Counter:
    """Named monotonically increasing counters."""

    __slots__ = ("_counts",)

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise SimulationError("counter increments must be non-negative")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def merged(self, other: "Counter") -> "Counter":
        """Sum two counter sets (parity with ``LatencyRecorder.merged``)
        so per-node counts combine into fleet-level summaries."""
        out = Counter()
        out._counts = dict(self._counts)
        for name, amount in other._counts.items():
            out._counts[name] = out._counts.get(name, 0) + amount
        return out


class TimeWeightedGauge:
    """Tracks a piecewise-constant value and reports its time average.

    Used for the storage-overhead experiments (Figure 12), where the metric
    is *time-averaged* bytes in the log and the database.
    """

    __slots__ = ("name", "_last_time", "_value", "_area", "_start_time",
                 "_max_value", "_pending")

    def __init__(self, name: str, start_time_ms: float = 0.0,
                 initial_value: float = 0.0):
        self.name = name
        self._last_time = float(start_time_ms)
        self._value = float(initial_value)
        self._area = 0.0
        self._start_time = float(start_time_ms)
        self._max_value = float(initial_value)
        #: Deferred (time, value) updates from :meth:`feed`, integrated
        #: lazily on the next read (or eager :meth:`set`/:meth:`add`).
        self._pending: Optional[list] = None

    def feed(self, value: float, now_ms: float) -> None:
        """Hot-path :meth:`set`: record the update, integrate later.

        Storage listeners fire on every append/trim; buffering the
        (time, value) pair costs one list append, and the piecewise
        integration happens once, on the next read.  Ordering and
        results are identical to eager ``set`` calls — including the
        backwards-time rejection, which just surfaces at read time.
        """
        pending = self._pending
        if pending is None:
            pending = self._pending = []
        pending.append((now_ms, value))

    def _integrate_pending(self) -> None:
        pending = self._pending
        last = self._last_time
        value = self._value
        area = self._area
        max_value = self._max_value
        for now_ms, fed in pending:
            if now_ms < last:
                raise SimulationError(
                    f"gauge {self.name!r} driven backwards in time "
                    f"({now_ms} < {last})"
                )
            if now_ms > last:
                area += value * (now_ms - last)
                last = now_ms
            value = float(fed)
            if value > max_value:
                max_value = value
        self._last_time = last
        self._value = value
        self._area = area
        self._max_value = max_value
        pending.clear()

    @property
    def value(self) -> float:
        if self._pending:
            self._integrate_pending()
        return self._value

    @property
    def max_value(self) -> float:
        if self._pending:
            self._integrate_pending()
        return self._max_value

    def set(self, value: float, now_ms: float) -> None:
        if self._pending:
            self._integrate_pending()
        last = self._last_time
        if now_ms < last:
            raise SimulationError(
                f"gauge {self.name!r} driven backwards in time "
                f"({now_ms} < {last})"
            )
        value = float(value)
        if now_ms > last:
            # Same-instant updates contribute zero area; skipping the
            # arithmetic keeps repeated sets within one DES instant cheap.
            self._area += self._value * (now_ms - last)
            self._last_time = now_ms
        self._value = value
        if value > self._max_value:
            self._max_value = value

    def add(self, delta: float, now_ms: float) -> None:
        if self._pending:
            self._integrate_pending()
        self.set(self._value + delta, now_ms)

    def time_average(self, now_ms: Optional[float] = None) -> float:
        if self._pending:
            self._integrate_pending()
        end = self._last_time if now_ms is None else float(now_ms)
        if end < self._last_time:
            raise SimulationError("time_average asked before last update")
        area = self._area + self._value * (end - self._last_time)
        elapsed = end - self._start_time
        if elapsed <= 0:
            return self._value
        return area / elapsed

    def area_until(self, now_ms: float) -> float:
        """Integrated value·time up to ``now_ms`` (≥ the last update)."""
        if self._pending:
            self._integrate_pending()
        if now_ms < self._last_time:
            raise SimulationError(
                f"gauge {self.name!r}: area_until({now_ms}) precedes "
                f"last update at {self._last_time}"
            )
        return self._area + self._value * (now_ms - self._last_time)

    def merged(self, other: "TimeWeightedGauge",
               horizon_ms: Optional[float] = None
               ) -> "TimeWeightedGauge":
        """Combine two gauges over one shared *merge horizon*.

        Wall-clock snapshots from different workers stop updating at
        different instants; summing their individual ``time_average``
        values would weight each worker's area by its own window,
        over-counting whichever tail window the other never observed.
        The merge instead integrates both gauges to a single horizon —
        ``horizon_ms``, clamped up so no gauge's already-integrated
        area is rewound (history before the last update is not
        recoverable) and defaulting to the later of the two last
        updates — then divides once by the shared elapsed window, so
        ``merged.time_average()`` is the true combined average.
        """
        if self._pending:
            self._integrate_pending()
        if other._pending:
            other._integrate_pending()
        horizon = max(self._last_time, other._last_time)
        if horizon_ms is not None:
            horizon = max(horizon, float(horizon_ms))
        start = min(self._start_time, other._start_time)
        out = TimeWeightedGauge(self.name, start)
        out._area = self.area_until(horizon) + other.area_until(horizon)
        out._last_time = horizon
        out._value = self._value + other._value
        # Upper bound: the components' maxima need not have coincided.
        out._max_value = self._max_value + other._max_value
        return out


class ThroughputMeter:
    """Counts completions and reports a rate per second.

    ``min_window_ms`` floors the measurement window: a meter that has
    seen a single completion (or several at the same instant) has an
    observed span of zero, which used to yield a silent ``0.0`` rate.
    The floor (default 1 ms) makes the degenerate case report
    ``count / min_window`` instead; callers measuring over a known
    interval should pass it explicitly via ``window_ms``.
    """

    __slots__ = ("name", "min_window_ms", "_count", "_first_ms",
                 "_last_ms")

    def __init__(self, name: str = "throughput",
                 min_window_ms: float = 1.0):
        if min_window_ms <= 0:
            raise SimulationError(
                f"min_window_ms must be positive, got {min_window_ms}"
            )
        self.name = name
        self.min_window_ms = float(min_window_ms)
        self._count = 0
        self._first_ms: Optional[float] = None
        self._last_ms: Optional[float] = None

    def record(self, now_ms: float) -> None:
        if self._first_ms is None:
            self._first_ms = now_ms
        self._count += 1
        self._last_ms = now_ms

    @property
    def count(self) -> int:
        return self._count

    def rate_per_sec(self, window_ms: Optional[float] = None) -> float:
        if self._count == 0 or self._first_ms is None:
            return 0.0
        elapsed = (
            window_ms
            if window_ms is not None
            else (self._last_ms - self._first_ms)  # type: ignore[operator]
        )
        elapsed = max(elapsed, self.min_window_ms)
        return self._count * 1000.0 / elapsed

    def merged(self, other: "ThroughputMeter",
               horizon_ms: Optional[float] = None
               ) -> "ThroughputMeter":
        """Combine two meters over one shared *merge horizon*.

        Per-worker wall-clock meters end their observation window at
        their own last completion; merging them naively (or summing
        their individual rates) double-counts the tail window one
        worker observed and the other had already left — a meter that
        went quiet at 500 ms contributes its count over a 500 ms
        window even though the fleet kept running to 1000 ms, inflating
        the merged rate.  ``horizon_ms`` (the shared snapshot instant)
        extends the merged window to the horizon, clamped down to no
        earlier than the latest recorded event, so
        ``merged.rate_per_sec()`` is ``total / (horizon - first)``.
        """
        out = ThroughputMeter(
            self.name, min(self.min_window_ms, other.min_window_ms)
        )
        out._count = self._count + other._count
        firsts = [m._first_ms for m in (self, other)
                  if m._first_ms is not None]
        lasts = [m._last_ms for m in (self, other)
                 if m._last_ms is not None]
        if firsts:
            out._first_ms = min(firsts)
            last = max(lasts)
            if horizon_ms is not None:
                last = max(last, float(horizon_ms))
            out._last_ms = last
        return out


@dataclass
class TimeSeries:
    """(time, value) samples, e.g. per-request latency over time (Fig. 14)."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, now_ms: float, value: float) -> None:
        self.points.append((now_ms, value))

    def window(self, start_ms: float, end_ms: float) -> List[Tuple[float, float]]:
        return [(t, v) for t, v in self.points if start_ms <= t < end_ms]

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def merged(self, other: "TimeSeries") -> "TimeSeries":
        """Interleave two series by timestamp (stable on ties: self's
        points first), so per-node series combine into one fleet
        timeline."""
        out = TimeSeries(self.name)
        out.points = sorted(
            self.points + other.points, key=lambda point: point[0]
        )
        return out
