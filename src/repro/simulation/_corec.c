/* Compiled twin of the pure-Python DES kernel (repro.simulation.kernel).
 *
 * Implements Simulator / Event / Timeout / Process as C types with
 * bit-identical semantics: the same (time, eid) heap discipline, the
 * same schedule-counter allocation on every operation, the same
 * wait-token invalidation rules for interrupts and bare-delay yields,
 * and the same exception taxonomy (SimulationError / DeadlockError /
 * Interrupt are imported from the Python modules, so `except` clauses
 * work unchanged across kernels).
 *
 * Any change to the scheduling contract in kernel.py MUST be mirrored
 * here; tests/simulation/test_kernel_parity.py and the golden
 * end-to-end diffs (fig10 / shards / chaos / failover) enforce the
 * twin-ship.
 *
 * Built optionally by setup.py (plain C99, no Cython/mypyc needed);
 * when the module is absent the pure kernel serves transparently.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Module state (exception classes borrowed from the Python side)      */
/* ------------------------------------------------------------------ */

static PyObject *SimulationError;  /* repro.errors.SimulationError */
static PyObject *DeadlockError;    /* repro.errors.DeadlockError */
static PyObject *InterruptClass;   /* repro.simulation.kernel.Interrupt */

/* Heap entry kinds. */
enum {
    K_EVENT = 0,         /* a = event: run its callbacks             */
    K_CALL = 1,          /* a = fn, b = arg: fn(arg)                 */
    K_TOKEN_RESUME = 2,  /* a = proc: resume with None if token live */
    K_DEFER_RESUME = 3,  /* a = proc, b = event: resume with value   */
    K_DEFER_INTERRUPT = 4/* a = proc, b = cause: throw Interrupt     */
};

typedef struct {
    double time;
    unsigned long long eid;
    int kind;
    unsigned long long token;
    PyObject *a;  /* owned */
    PyObject *b;  /* owned or NULL */
} Entry;

typedef struct {
    PyObject_HEAD
    double now;
    unsigned long long eid;
    unsigned long long events_processed;
    Entry *heap;
    Py_ssize_t len;
    Py_ssize_t cap;
} SimulatorObject;

typedef struct {
    PyObject_HEAD
    PyObject *sim;        /* Simulator (owned) */
    PyObject *callbacks;  /* list (owned) */
    int triggered;
    PyObject *value;      /* owned */
} EventObject;

typedef struct {
    EventObject base;
    double delay;
} TimeoutObject;

typedef struct ProcessObject ProcessObject;

typedef struct {
    PyObject_HEAD
    ProcessObject *proc;  /* owned */
} ResumeCbObject;

struct ProcessObject {
    EventObject base;
    PyObject *generator;   /* owned */
    PyObject *name;        /* owned str */
    PyObject *send;        /* owned bound gen.send */
    PyObject *gthrow;      /* owned bound gen.throw */
    PyObject *waiting_on;  /* owned Event or NULL */
    PyObject *waiting_cb;  /* owned ResumeCb or NULL */
    PyObject *resume_cb;   /* owned cached ResumeCb */
    unsigned long long wait_token;
};

static PyTypeObject SimulatorType;
static PyTypeObject EventType;
static PyTypeObject TimeoutType;
static PyTypeObject ProcessType;
static PyTypeObject ResumeCbType;

/* Forward decls. */
static int proc_advance_send(ProcessObject *p, PyObject *value);
static int proc_advance_throw(ProcessObject *p, PyObject *exc);
static int event_fire(EventObject *ev);

/* ------------------------------------------------------------------ */
/* Binary heap keyed on (time, eid)                                    */
/* ------------------------------------------------------------------ */

static inline int entry_lt(const Entry *x, const Entry *y)
{
    if (x->time != y->time)
        return x->time < y->time;
    return x->eid < y->eid;
}

static int heap_reserve(SimulatorObject *sim)
{
    if (sim->len < sim->cap)
        return 0;
    Py_ssize_t cap = sim->cap ? sim->cap * 2 : 64;
    Entry *heap = PyMem_Realloc(sim->heap, (size_t)cap * sizeof(Entry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    sim->heap = heap;
    sim->cap = cap;
    return 0;
}

/* Push an entry; steals nothing (increfs its refs itself). */
static int heap_push(SimulatorObject *sim, double time, int kind,
                     unsigned long long token, PyObject *a, PyObject *b)
{
    if (heap_reserve(sim) < 0)
        return -1;
    Entry e;
    e.time = time;
    e.eid = ++sim->eid;
    e.kind = kind;
    e.token = token;
    Py_XINCREF(a);
    Py_XINCREF(b);
    e.a = a;
    e.b = b;
    Entry *heap = sim->heap;
    Py_ssize_t pos = sim->len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&e, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = e;
    return 0;
}

/* Pop the root into *out (ownership of refs transfers to caller). */
static void heap_pop(SimulatorObject *sim, Entry *out)
{
    Entry *heap = sim->heap;
    *out = heap[0];
    Entry last = heap[--sim->len];
    Py_ssize_t len = sim->len;
    if (len == 0)
        return;
    Py_ssize_t pos = 0;
    Py_ssize_t child;
    while ((child = 2 * pos + 1) < len) {
        if (child + 1 < len && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!entry_lt(&heap[child], &last))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = last;
}

static void entry_clear(Entry *e)
{
    Py_CLEAR(e->a);
    Py_CLEAR(e->b);
}

/* ------------------------------------------------------------------ */
/* ResumeCb: the cached per-process resume callback                    */
/* ------------------------------------------------------------------ */

static int proc_resume(ProcessObject *p, EventObject *ev)
{
    if (p->base.triggered)
        return 0;
    Py_CLEAR(p->waiting_on);
    Py_CLEAR(p->waiting_cb);
    return proc_advance_send(p, ev->value);
}

static PyObject *
resumecb_call(ResumeCbObject *self, PyObject *args, PyObject *kwargs)
{
    PyObject *event;
    if (kwargs != NULL && PyDict_GET_SIZE(kwargs) != 0) {
        PyErr_SetString(PyExc_TypeError, "no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O", &event))
        return NULL;
    if (!PyObject_TypeCheck(event, &EventType)) {
        PyErr_SetString(PyExc_TypeError, "expected Event");
        return NULL;
    }
    if (proc_resume(self->proc, (EventObject *)event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int resumecb_traverse(ResumeCbObject *self, visitproc visit,
                             void *arg)
{
    Py_VISIT(self->proc);
    return 0;
}

static int resumecb_clear(ResumeCbObject *self)
{
    Py_CLEAR(self->proc);
    return 0;
}

static void resumecb_dealloc(ResumeCbObject *self)
{
    PyObject_GC_UnTrack(self);
    resumecb_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject ResumeCbType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simulation._corec._ResumeCallback",
    .tp_basicsize = sizeof(ResumeCbObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_call = (ternaryfunc)resumecb_call,
    .tp_traverse = (traverseproc)resumecb_traverse,
    .tp_clear = (inquiry)resumecb_clear,
    .tp_dealloc = (destructor)resumecb_dealloc,
};

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

static int event_init_fields(EventObject *self, PyObject *sim)
{
    PyObject *callbacks = PyList_New(0);
    if (callbacks == NULL)
        return -1;
    Py_INCREF(sim);
    self->sim = sim;
    self->callbacks = callbacks;
    self->triggered = 0;
    Py_INCREF(Py_None);
    self->value = Py_None;
    return 0;
}

static int event_init(EventObject *self, PyObject *args, PyObject *kwargs)
{
    static char *kwlist[] = {"sim", NULL};
    PyObject *sim;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O!", kwlist,
                                     &SimulatorType, &sim))
        return -1;
    /* Re-init (tp_init can run twice): drop any prior refs. */
    Py_CLEAR(self->sim);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return event_init_fields(self, sim);
}

/* Schedule an already-triggered event's callbacks at the current
 * instant (Simulator._schedule_callbacks). */
static int event_schedule_callbacks(EventObject *ev)
{
    SimulatorObject *sim = (SimulatorObject *)ev->sim;
    return heap_push(sim, sim->now, K_EVENT, 0, (PyObject *)ev, NULL);
}

static int event_succeed_internal(EventObject *ev, PyObject *value)
{
    if (ev->triggered) {
        PyErr_SetString(SimulationError, "event already triggered");
        return -1;
    }
    ev->triggered = 1;
    Py_INCREF(value);
    Py_XSETREF(ev->value, value);
    return event_schedule_callbacks(ev);
}

static PyObject *
event_succeed(EventObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *value = Py_None;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "succeed() takes at most one argument");
        return NULL;
    }
    if (nargs == 1)
        value = args[0];
    if (event_succeed_internal(self, value) < 0)
        return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

/* Fire: run (and clear) the callbacks list, in append order. */
static int event_fire(EventObject *ev)
{
    PyObject *callbacks = ev->callbacks;
    PyObject *fresh = PyList_New(0);
    if (fresh == NULL)
        return -1;
    ev->callbacks = fresh;
    Py_ssize_t n = PyList_GET_SIZE(callbacks);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *cb = PyList_GET_ITEM(callbacks, i);
        if (Py_TYPE(cb) == &ResumeCbType) {
            if (proc_resume(((ResumeCbObject *)cb)->proc, ev) < 0) {
                Py_DECREF(callbacks);
                return -1;
            }
        }
        else {
            PyObject *res = PyObject_CallOneArg(cb, (PyObject *)ev);
            if (res == NULL) {
                Py_DECREF(callbacks);
                return -1;
            }
            Py_DECREF(res);
        }
    }
    Py_DECREF(callbacks);
    return 0;
}

static PyObject *event_run_callbacks(EventObject *self,
                                     PyObject *Py_UNUSED(ignored))
{
    if (event_fire(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *event_get_triggered(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->triggered);
}

static PyObject *event_get_value(EventObject *self, void *closure)
{
    if (!self->triggered) {
        PyErr_SetString(SimulationError, "event has not fired yet");
        return NULL;
    }
    Py_INCREF(self->value);
    return self->value;
}

static int event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    return 0;
}

static int event_clear(EventObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return 0;
}

static void event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    event_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef event_methods[] = {
    {"succeed", (PyCFunction)event_succeed, METH_FASTCALL,
     "Mark the event as fired *now* and schedule its callbacks."},
    {"_run_callbacks", (PyCFunction)event_run_callbacks, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef event_getset[] = {
    {"triggered", (getter)event_get_triggered, NULL, NULL, NULL},
    {"value", (getter)event_get_value, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef event_members[] = {
    {"sim", T_OBJECT, offsetof(EventObject, sim), READONLY, NULL},
    {"callbacks", T_OBJECT, offsetof(EventObject, callbacks), READONLY,
     NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simulation._corec.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_flags = (Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                 Py_TPFLAGS_BASETYPE),
    .tp_doc = "A one-shot occurrence that processes can wait on.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)event_init,
    .tp_methods = event_methods,
    .tp_getset = event_getset,
    .tp_members = event_members,
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_dealloc = (destructor)event_dealloc,
};

/* ------------------------------------------------------------------ */
/* Timeout                                                             */
/* ------------------------------------------------------------------ */

static int timeout_init(TimeoutObject *self, PyObject *args,
                        PyObject *kwargs)
{
    static char *kwlist[] = {"sim", "delay", "value", NULL};
    PyObject *sim;
    double delay;
    PyObject *value = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "O!d|O", kwlist,
                                     &SimulatorType, &sim, &delay, &value))
        return -1;
    if (delay < 0) {
        PyErr_Format(SimulationError, "negative timeout: %g", delay);
        return -1;
    }
    Py_CLEAR(self->base.sim);
    Py_CLEAR(self->base.callbacks);
    Py_CLEAR(self->base.value);
    if (event_init_fields(&self->base, sim) < 0)
        return -1;
    /* Pre-armed; fires via the event heap. */
    self->base.triggered = 1;
    Py_INCREF(value);
    Py_XSETREF(self->base.value, value);
    self->delay = delay;
    SimulatorObject *s = (SimulatorObject *)sim;
    return heap_push(s, s->now + delay, K_EVENT, 0, (PyObject *)self,
                     NULL);
}

static PyMemberDef timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(TimeoutObject, delay), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject TimeoutType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simulation._corec.Timeout",
    .tp_basicsize = sizeof(TimeoutObject),
    .tp_flags = (Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                 Py_TPFLAGS_BASETYPE),
    .tp_doc = "An event that fires after a fixed simulated delay.",
    .tp_base = &EventType,
    .tp_init = (initproc)timeout_init,
    .tp_members = timeout_members,
    /* No extra object fields beyond Event (delay is a double). */
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_dealloc = (destructor)event_dealloc,
};

/* ------------------------------------------------------------------ */
/* Process                                                             */
/* ------------------------------------------------------------------ */

/* Handle the object a generator just yielded. */
static int proc_handle_yield(ProcessObject *p, PyObject *target)
{
    SimulatorObject *sim = (SimulatorObject *)p->base.sim;
    double delay;

    if (PyFloat_CheckExact(target)) {
        delay = PyFloat_AS_DOUBLE(target);
    }
    else if (PyLong_CheckExact(target)) {
        delay = PyLong_AsDouble(target);
        if (delay == -1.0 && PyErr_Occurred())
            return -1;
    }
    else if (PyObject_TypeCheck(target, &EventType)) {
        EventObject *ev = (EventObject *)target;
        if (Py_TYPE(target) == &TimeoutType || !ev->triggered) {
            /* Wait for the event: register the cached resume callback. */
            if (PyList_Append(ev->callbacks, p->resume_cb) < 0)
                return -1;
            Py_INCREF(target);
            Py_XSETREF(p->waiting_on, target);
            Py_INCREF(p->resume_cb);
            Py_XSETREF(p->waiting_cb, p->resume_cb);
            return 0;
        }
        /* Already-fired event: resume on the next tick. */
        p->wait_token += 1;
        return heap_push(sim, sim->now, K_DEFER_RESUME, p->wait_token,
                         (PyObject *)p, target);
    }
    else {
        PyErr_Format(SimulationError,
                     "process %R yielded %R, expected Event or delay",
                     p->name, target);
        return -1;
    }

    /* Bare-delay yield: schedule a token-guarded direct resume. */
    if (delay < 0) {
        PyErr_Format(SimulationError, "negative timeout: %R", target);
        return -1;
    }
    return heap_push(sim, sim->now + delay, K_TOKEN_RESUME, p->wait_token,
                     (PyObject *)p, NULL);
}

/* Step the generator with gen.send(value). */
static int proc_advance_send(ProcessObject *p, PyObject *value)
{
    PyObject *res = NULL;
    PySendResult sr = PyIter_Send(p->generator, value, &res);
    if (sr == PYGEN_RETURN) {
        int rc = event_succeed_internal(&p->base, res);
        Py_DECREF(res);
        return rc;
    }
    if (sr == PYGEN_ERROR) {
        if (PyErr_ExceptionMatches(InterruptClass)) {
            /* Unhandled interrupt: the process dies at this instant. */
            PyErr_Clear();
            return event_succeed_internal(&p->base, Py_None);
        }
        return -1;
    }
    int rc = proc_handle_yield(p, res);
    Py_DECREF(res);
    return rc;
}

/* Step the generator with gen.throw(exc). */
static int proc_advance_throw(ProcessObject *p, PyObject *exc)
{
    PyObject *res = PyObject_CallOneArg(p->gthrow, exc);
    if (res == NULL) {
        if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
            /* Generator caught the interrupt and returned. */
            PyObject *type, *val, *tb;
            PyErr_Fetch(&type, &val, &tb);
            PyErr_NormalizeException(&type, &val, &tb);
            PyObject *retval = NULL;
            if (val != NULL) {
                retval = PyObject_GetAttrString(val, "value");
            }
            Py_XDECREF(type);
            Py_XDECREF(val);
            Py_XDECREF(tb);
            if (retval == NULL)
                return -1;
            int rc = event_succeed_internal(&p->base, retval);
            Py_DECREF(retval);
            return rc;
        }
        if (PyErr_ExceptionMatches(InterruptClass)) {
            PyErr_Clear();
            return event_succeed_internal(&p->base, Py_None);
        }
        return -1;
    }
    int rc = proc_handle_yield(p, res);
    Py_DECREF(res);
    return rc;
}

static int proc_throw_interrupt(ProcessObject *p, PyObject *cause)
{
    if (p->base.triggered)
        return 0;
    Py_CLEAR(p->waiting_on);
    Py_CLEAR(p->waiting_cb);
    PyObject *exc = PyObject_CallOneArg(InterruptClass, cause);
    if (exc == NULL)
        return -1;
    int rc = proc_advance_throw(p, exc);
    Py_DECREF(exc);
    return rc;
}

static PyObject *
proc_interrupt(ProcessObject *self, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    PyObject *cause = Py_None;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs + nkw > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "interrupt() takes at most one argument");
        return NULL;
    }
    if (nargs == 1)
        cause = args[0];
    else if (nkw == 1) {
        const char *s = PyUnicode_AsUTF8(PyTuple_GET_ITEM(kwnames, 0));
        if (s == NULL)
            return NULL;
        if (strcmp(s, "cause") != 0) {
            PyErr_SetString(PyExc_TypeError,
                            "interrupt() got an unexpected keyword");
            return NULL;
        }
        cause = args[0];
    }
    if (self->base.triggered)
        Py_RETURN_NONE;
    if (self->waiting_on != NULL && self->waiting_cb != NULL) {
        /* Detach: the event may still fire, but resumes nobody. */
        EventObject *ev = (EventObject *)self->waiting_on;
        Py_ssize_t n = PyList_GET_SIZE(ev->callbacks);
        for (Py_ssize_t i = 0; i < n; i++) {
            if (PyList_GET_ITEM(ev->callbacks, i) == self->waiting_cb) {
                if (PyList_SetSlice(ev->callbacks, i, i + 1, NULL) < 0)
                    return NULL;
                break;
            }
        }
    }
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->waiting_cb);
    self->wait_token += 1;
    SimulatorObject *sim = (SimulatorObject *)self->base.sim;
    if (heap_push(sim, sim->now, K_DEFER_INTERRUPT, 0, (PyObject *)self,
                  cause) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int proc_traverse(ProcessObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->generator);
    Py_VISIT(self->name);
    Py_VISIT(self->send);
    Py_VISIT(self->gthrow);
    Py_VISIT(self->waiting_on);
    Py_VISIT(self->waiting_cb);
    Py_VISIT(self->resume_cb);
    return event_traverse(&self->base, visit, arg);
}

static int proc_clear(ProcessObject *self)
{
    Py_CLEAR(self->generator);
    Py_CLEAR(self->name);
    Py_CLEAR(self->send);
    Py_CLEAR(self->gthrow);
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->waiting_cb);
    Py_CLEAR(self->resume_cb);
    return event_clear(&self->base);
}

static void proc_dealloc(ProcessObject *self)
{
    PyObject_GC_UnTrack(self);
    proc_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef proc_methods[] = {
    {"interrupt", (PyCFunction)proc_interrupt,
     METH_FASTCALL | METH_KEYWORDS,
     "Throw Interrupt into the process at the current instant."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef proc_members[] = {
    {"generator", T_OBJECT, offsetof(ProcessObject, generator), READONLY,
     NULL},
    {"name", T_OBJECT, offsetof(ProcessObject, name), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyObject *proc_get_wait_token(ProcessObject *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->wait_token);
}

static PyGetSetDef proc_getset[] = {
    {"_wait_token", (getter)proc_get_wait_token, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject ProcessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simulation._corec.Process",
    .tp_basicsize = sizeof(ProcessObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Wraps a generator; the event fires when it returns.",
    .tp_base = &EventType,
    .tp_methods = proc_methods,
    .tp_members = proc_members,
    .tp_getset = proc_getset,
    .tp_traverse = (traverseproc)proc_traverse,
    .tp_clear = (inquiry)proc_clear,
    .tp_dealloc = (destructor)proc_dealloc,
};

/* ------------------------------------------------------------------ */
/* Simulator                                                           */
/* ------------------------------------------------------------------ */

static int sim_init(SimulatorObject *self, PyObject *args, PyObject *kwargs)
{
    if ((args != NULL && PyTuple_GET_SIZE(args) != 0) ||
        (kwargs != NULL && PyDict_GET_SIZE(kwargs) != 0)) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    self->now = 0.0;
    self->eid = 0;
    self->events_processed = 0;
    return 0;
}

static PyObject *sim_get_now(SimulatorObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static int sim_set_now(SimulatorObject *self, PyObject *value,
                       void *closure)
{
    double v = PyFloat_AsDouble(value);
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    self->now = v;
    return 0;
}

static PyObject *sim_get_eid(SimulatorObject *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->eid);
}

static PyObject *sim_get_events(SimulatorObject *self, void *closure)
{
    return PyLong_FromUnsignedLongLong(self->events_processed);
}

static int sim_set_events(SimulatorObject *self, PyObject *value,
                          void *closure)
{
    unsigned long long v = PyLong_AsUnsignedLongLong(value);
    if (v == (unsigned long long)-1 && PyErr_Occurred())
        return -1;
    self->events_processed = v;
    return 0;
}

static PyObject *
sim_timeout(SimulatorObject *self, PyObject *const *args, Py_ssize_t nargs,
            PyObject *kwnames)
{
    double delay;
    PyObject *value = Py_None;
    PyObject *delay_obj = NULL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs < 1 || nargs > 2 || nargs + nkw > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout(delay, value=None)");
        return NULL;
    }
    delay_obj = args[0];
    if (nargs == 2)
        value = args[1];
    for (Py_ssize_t i = 0; i < nkw; i++) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, i);
        const char *s = PyUnicode_AsUTF8(name);
        if (s == NULL)
            return NULL;
        if (strcmp(s, "value") == 0)
            value = args[nargs + i];
        else {
            PyErr_Format(PyExc_TypeError,
                         "unexpected keyword argument %R", name);
            return NULL;
        }
    }
    delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationError, "negative timeout: %R", delay_obj);
        return NULL;
    }
    TimeoutObject *t = PyObject_GC_New(TimeoutObject, &TimeoutType);
    if (t == NULL)
        return NULL;
    t->base.sim = NULL;
    t->base.callbacks = NULL;
    t->base.value = NULL;
    if (event_init_fields(&t->base, (PyObject *)self) < 0) {
        Py_DECREF(t);
        return NULL;
    }
    t->base.triggered = 1;
    Py_INCREF(value);
    Py_XSETREF(t->base.value, value);
    t->delay = delay;
    PyObject_GC_Track((PyObject *)t);
    if (heap_push(self, self->now + delay, K_EVENT, 0, (PyObject *)t,
                  NULL) < 0) {
        Py_DECREF(t);
        return NULL;
    }
    return (PyObject *)t;
}

static PyObject *sim_event(SimulatorObject *self,
                           PyObject *Py_UNUSED(ignored))
{
    EventObject *ev = PyObject_GC_New(EventObject, &EventType);
    if (ev == NULL)
        return NULL;
    ev->sim = NULL;
    ev->callbacks = NULL;
    ev->value = NULL;
    if (event_init_fields(ev, (PyObject *)self) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    PyObject_GC_Track((PyObject *)ev);
    return (PyObject *)ev;
}

static PyObject *
sim_process(SimulatorObject *self, PyObject *const *args, Py_ssize_t nargs,
            PyObject *kwnames)
{
    PyObject *generator;
    PyObject *name = NULL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs < 1 || nargs > 2 || nargs + nkw > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "process(generator, name=\"process\")");
        return NULL;
    }
    generator = args[0];
    if (nargs == 2)
        name = args[1];
    for (Py_ssize_t i = 0; i < nkw; i++) {
        PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
        const char *s = PyUnicode_AsUTF8(kw);
        if (s == NULL)
            return NULL;
        if (strcmp(s, "name") == 0)
            name = args[nargs + i];
        else {
            PyErr_Format(PyExc_TypeError,
                         "unexpected keyword argument %R", kw);
            return NULL;
        }
    }
    ProcessObject *p = PyObject_GC_New(ProcessObject, &ProcessType);
    if (p == NULL)
        return NULL;
    p->base.sim = NULL;
    p->base.callbacks = NULL;
    p->base.value = NULL;
    p->generator = NULL;
    p->name = NULL;
    p->send = NULL;
    p->gthrow = NULL;
    p->waiting_on = NULL;
    p->waiting_cb = NULL;
    p->resume_cb = NULL;
    p->wait_token = 0;
    if (event_init_fields(&p->base, (PyObject *)self) < 0)
        goto fail;
    Py_INCREF(generator);
    p->generator = generator;
    if (name != NULL) {
        Py_INCREF(name);
        p->name = name;
    }
    else {
        p->name = PyUnicode_FromString("process");
        if (p->name == NULL)
            goto fail;
    }
    p->send = PyObject_GetAttrString(generator, "send");
    if (p->send == NULL)
        goto fail;
    p->gthrow = PyObject_GetAttrString(generator, "throw");
    if (p->gthrow == NULL)
        goto fail;
    ResumeCbObject *cb = PyObject_GC_New(ResumeCbObject, &ResumeCbType);
    if (cb == NULL)
        goto fail;
    Py_INCREF(p);
    cb->proc = p;
    PyObject_GC_Track((PyObject *)cb);
    p->resume_cb = (PyObject *)cb;
    PyObject_GC_Track((PyObject *)p);
    /* Kick off the process at the current simulation time. */
    if (heap_push(self, self->now, K_TOKEN_RESUME, 0, (PyObject *)p,
                  NULL) < 0) {
        Py_DECREF(p);
        return NULL;
    }
    return (PyObject *)p;

fail:
    Py_DECREF(p);
    return NULL;
}

static PyObject *sim_schedule_at(SimulatorObject *self, PyObject *args)
{
    double time;
    PyObject *event;
    if (!PyArg_ParseTuple(args, "dO!", &time, &EventType, &event))
        return NULL;
    if (time < self->now) {
        PyErr_SetString(SimulationError, "cannot schedule into the past");
        return NULL;
    }
    if (heap_push(self, time, K_EVENT, 0, event, NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *sim_schedule_callbacks(SimulatorObject *self,
                                        PyObject *event)
{
    if (!PyObject_TypeCheck(event, &EventType)) {
        PyErr_SetString(PyExc_TypeError, "expected Event");
        return NULL;
    }
    if (heap_push(self, self->now, K_EVENT, 0, event, NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *sim_defer(SimulatorObject *self, PyObject *args)
{
    PyObject *fn, *arg;
    if (!PyArg_ParseTuple(args, "OO", &fn, &arg))
        return NULL;
    if (heap_push(self, self->now, K_CALL, 0, fn, arg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Dispatch one popped entry.  Consumes (decrefs) the entry's refs. */
static int dispatch(SimulatorObject *sim, Entry *e)
{
    int rc = 0;
    switch (e->kind) {
    case K_EVENT:
        rc = event_fire((EventObject *)e->a);
        break;
    case K_CALL: {
        PyObject *res = PyObject_CallOneArg(e->a, e->b);
        if (res == NULL)
            rc = -1;
        else
            Py_DECREF(res);
        break;
    }
    case K_TOKEN_RESUME: {
        ProcessObject *p = (ProcessObject *)e->a;
        if (e->token == p->wait_token && !p->base.triggered)
            rc = proc_advance_send(p, Py_None);
        break;
    }
    case K_DEFER_RESUME: {
        ProcessObject *p = (ProcessObject *)e->a;
        if (e->token == p->wait_token && !p->base.triggered)
            rc = proc_advance_send(p, ((EventObject *)e->b)->value);
        break;
    }
    case K_DEFER_INTERRUPT:
        rc = proc_throw_interrupt((ProcessObject *)e->a, e->b);
        break;
    }
    entry_clear(e);
    return rc;
}

static PyObject *
sim_run(SimulatorObject *self, PyObject *const *args, Py_ssize_t nargs,
        PyObject *kwnames)
{
    PyObject *until_obj = Py_None;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs + nkw > 1) {
        PyErr_SetString(PyExc_TypeError, "run(until=None)");
        return NULL;
    }
    if (nargs == 1)
        until_obj = args[0];
    else if (nkw == 1) {
        const char *s = PyUnicode_AsUTF8(PyTuple_GET_ITEM(kwnames, 0));
        if (s == NULL)
            return NULL;
        if (strcmp(s, "until") != 0) {
            PyErr_SetString(PyExc_TypeError, "run(until=None)");
            return NULL;
        }
        until_obj = args[0];
    }
    int have_until = (until_obj != Py_None);
    double until = 0.0;
    if (have_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    unsigned long long processed = 0;
    while (self->len > 0) {
        double time = self->heap[0].time;
        if (have_until && time > until)
            break;
        self->now = time;
        /* Drain this timestamp in one pass. */
        for (;;) {
            Entry e;
            heap_pop(self, &e);
            processed++;
            if (dispatch(self, &e) < 0)
                return NULL;
            if (self->len == 0 || self->heap[0].time != time)
                break;
        }
    }
    self->events_processed += processed;
    if (have_until && self->now < until)
        self->now = until;
    Py_RETURN_NONE;
}

static PyObject *
sim_run_until_complete(SimulatorObject *self, PyObject *const *args,
                       Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *proc_obj;
    PyObject *limit_obj = Py_None;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs < 1 || nargs + nkw > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "run_until_complete(process, limit=None)");
        return NULL;
    }
    proc_obj = args[0];
    if (nargs == 2)
        limit_obj = args[1];
    for (Py_ssize_t i = 0; i < nkw; i++) {
        const char *s = PyUnicode_AsUTF8(PyTuple_GET_ITEM(kwnames, i));
        if (s == NULL)
            return NULL;
        if (strcmp(s, "limit") == 0)
            limit_obj = args[nargs + i];
        else {
            PyErr_SetString(PyExc_TypeError,
                            "run_until_complete(process, limit=None)");
            return NULL;
        }
    }
    if (!PyObject_TypeCheck(proc_obj, &ProcessType)) {
        PyErr_SetString(PyExc_TypeError, "expected Process");
        return NULL;
    }
    ProcessObject *proc = (ProcessObject *)proc_obj;
    int have_limit = (limit_obj != Py_None);
    double limit = 0.0;
    if (have_limit) {
        limit = PyFloat_AsDouble(limit_obj);
        if (limit == -1.0 && PyErr_Occurred())
            return NULL;
    }
    while (!proc->base.triggered) {
        if (self->len == 0) {
            PyErr_Format(DeadlockError,
                         "event queue drained before %R finished",
                         proc->name);
            return NULL;
        }
        Entry e;
        heap_pop(self, &e);
        if (have_limit && e.time > limit) {
            entry_clear(&e);
            PyErr_Format(SimulationError,
                         "%R exceeded time limit %R", proc->name,
                         limit_obj);
            return NULL;
        }
        self->now = e.time;
        self->events_processed += 1;
        if (dispatch(self, &e) < 0)
            return NULL;
    }
    Py_INCREF(proc->base.value);
    return proc->base.value;
}

static PyObject *sim_peek(SimulatorObject *self,
                          PyObject *Py_UNUSED(ignored))
{
    if (self->len == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(self->heap[0].time);
}

static int sim_traverse(SimulatorObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->len; i++) {
        Py_VISIT(self->heap[i].a);
        Py_VISIT(self->heap[i].b);
    }
    return 0;
}

static int sim_clear_heap(SimulatorObject *self)
{
    Py_ssize_t len = self->len;
    self->len = 0;
    for (Py_ssize_t i = 0; i < len; i++)
        entry_clear(&self->heap[i]);
    return 0;
}

static void sim_dealloc(SimulatorObject *self)
{
    PyObject_GC_UnTrack(self);
    sim_clear_heap(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef sim_methods[] = {
    {"timeout", (PyCFunction)sim_timeout,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"event", (PyCFunction)sim_event, METH_NOARGS, NULL},
    {"process", (PyCFunction)sim_process,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"run", (PyCFunction)sim_run, METH_FASTCALL | METH_KEYWORDS,
     "Drain the event queue, optionally stopping at time ``until``."},
    {"run_until_complete", (PyCFunction)sim_run_until_complete,
     METH_FASTCALL | METH_KEYWORDS,
     "Run until ``process`` finishes; raise on deadlock or limit."},
    {"peek", (PyCFunction)sim_peek, METH_NOARGS,
     "Time of the next scheduled event, or None if idle."},
    {"_schedule_at", (PyCFunction)sim_schedule_at, METH_VARARGS, NULL},
    {"_schedule_callbacks", (PyCFunction)sim_schedule_callbacks, METH_O,
     NULL},
    {"_defer", (PyCFunction)sim_defer, METH_VARARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef sim_getset[] = {
    {"now", (getter)sim_get_now, NULL, NULL, NULL},
    /* Writable like the pure kernel's plain attribute (tests advance
     * the clock directly without running processes). */
    {"_now", (getter)sim_get_now, (setter)sim_set_now, NULL, NULL},
    {"_eid", (getter)sim_get_eid, NULL, NULL, NULL},
    {"events_processed", (getter)sim_get_events, (setter)sim_set_events,
     NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject SimulatorType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simulation._corec.Simulator",
    .tp_basicsize = sizeof(SimulatorObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled DES event loop (twin of kernel.Simulator).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)sim_init,
    .tp_methods = sim_methods,
    .tp_getset = sim_getset,
    .tp_traverse = (traverseproc)sim_traverse,
    .tp_clear = (inquiry)sim_clear_heap,
    .tp_dealloc = (destructor)sim_dealloc,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static int corec_exec(PyObject *module)
{
    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL)
        return -1;
    SimulationError = PyObject_GetAttrString(errors, "SimulationError");
    DeadlockError = PyObject_GetAttrString(errors, "DeadlockError");
    Py_DECREF(errors);
    if (SimulationError == NULL || DeadlockError == NULL)
        return -1;

    PyObject *kernel = PyImport_ImportModule("repro.simulation.kernel");
    if (kernel == NULL)
        return -1;
    InterruptClass = PyObject_GetAttrString(kernel, "Interrupt");
    Py_DECREF(kernel);
    if (InterruptClass == NULL)
        return -1;

    if (PyType_Ready(&SimulatorType) < 0 ||
        PyType_Ready(&EventType) < 0 ||
        PyType_Ready(&TimeoutType) < 0 ||
        PyType_Ready(&ProcessType) < 0 ||
        PyType_Ready(&ResumeCbType) < 0)
        return -1;

    if (PyModule_AddObjectRef(module, "Simulator",
                              (PyObject *)&SimulatorType) < 0 ||
        PyModule_AddObjectRef(module, "Event",
                              (PyObject *)&EventType) < 0 ||
        PyModule_AddObjectRef(module, "Timeout",
                              (PyObject *)&TimeoutType) < 0 ||
        PyModule_AddObjectRef(module, "Process",
                              (PyObject *)&ProcessType) < 0 ||
        PyModule_AddObjectRef(module, "Interrupt", InterruptClass) < 0)
        return -1;
    if (PyModule_AddStringConstant(module, "KERNEL_VARIANT",
                                   "compiled") < 0)
        return -1;
    return 0;
}

static PyModuleDef_Slot corec_slots[] = {
    {Py_mod_exec, corec_exec},
    {0, NULL},
};

static struct PyModuleDef corec_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.simulation._corec",
    .m_doc = "Compiled DES kernel (bit-identical twin of kernel.py).",
    .m_size = 0,
    .m_slots = corec_slots,
};

PyMODINIT_FUNC PyInit__corec(void)
{
    return PyModuleDef_Init(&corec_module);
}
