"""Kernel selection: pure-Python vs. compiled DES event loop.

Two interchangeable kernels implement the simulation contract:

- ``repro.simulation.kernel`` — the pure-Python reference (always
  available, no toolchain required);
- ``repro.simulation._corec`` — an optional C extension twin with
  bit-identical scheduling semantics (same ``(time, eid)`` heap
  discipline, same schedule-counter allocation, same wait-token rules).

Selection is controlled by the ``REPRO_SIM_KERNEL`` environment
variable, read once at package import:

- ``auto`` (default) — compiled if the extension imports, else the pure
  kernel, transparently;
- ``pure`` — force the reference kernel;
- ``compiled`` — require the extension; raise :class:`ConfigError` with
  build instructions if it is missing.

:func:`select_kernel` switches the active kernel in-process (tests and
benchmarks use it to A/B the two kernels inside one interpreter).  The
switch rebinds ``repro.simulation.Simulator`` & co. — it affects
simulators constructed *afterwards*, never live ones, and does **not**
propagate to process-pool children (those re-read the environment
variable), so differential runs must use in-process execution
(``jobs=1``).
"""

from __future__ import annotations

import os
import sys
from types import ModuleType
from typing import Optional

from ..errors import ConfigError
from . import kernel as pure_kernel

#: Environment variable consulted at import time.
KERNEL_ENV = "REPRO_SIM_KERNEL"

#: Accepted values for :data:`KERNEL_ENV` / :func:`select_kernel`.
KERNEL_CHOICES = ("pure", "compiled", "auto")

#: Names rebound on the package when the active kernel switches.
_REBOUND = ("Simulator", "Event", "Timeout", "Process")

_active: ModuleType = pure_kernel
_requested: str = "auto"


def compiled_kernel() -> Optional[ModuleType]:
    """The built extension module, or ``None`` if unavailable."""
    try:
        from . import _corec  # noqa: PLC0415 — probe, may be absent
    except ImportError:
        return None
    return _corec


def compiled_available() -> bool:
    """Whether the compiled kernel can be imported."""
    return compiled_kernel() is not None


def _resolve(requested: str) -> ModuleType:
    if requested == "pure":
        return pure_kernel
    if requested == "compiled":
        module = compiled_kernel()
        if module is None:
            raise ConfigError(
                f"{KERNEL_ENV}=compiled but repro.simulation._corec is not "
                "built; build it with `python setup.py build_ext --inplace` "
                "(requires a C compiler) or select pure/auto"
            )
        return module
    module = compiled_kernel()
    return module if module is not None else pure_kernel


def _rebind(module: ModuleType) -> None:
    package = sys.modules.get(__package__)
    if package is None:  # pragma: no cover — only during interpreter teardown
        return
    for name in _REBOUND:
        setattr(package, name, getattr(module, name))


def select_kernel(name: str) -> str:
    """Switch the active kernel; returns the resulting variant name.

    ``name`` is one of :data:`KERNEL_CHOICES`.  Only simulators
    constructed after the call are affected.
    """
    global _active, _requested
    requested = (name or "auto").strip().lower()
    if requested not in KERNEL_CHOICES:
        raise ConfigError(
            f"unknown simulation kernel {name!r}; "
            f"expected one of {', '.join(KERNEL_CHOICES)}"
        )
    _active = _resolve(requested)
    _requested = requested
    _rebind(_active)
    return _active.KERNEL_VARIANT


def active_kernel() -> str:
    """Variant name of the active kernel: ``"pure"`` or ``"compiled"``."""
    return _active.KERNEL_VARIANT


def active_module() -> ModuleType:
    """The module object of the active kernel."""
    return _active


def requested_kernel() -> str:
    """The selection request that produced the active kernel."""
    return _requested


def init_from_env() -> str:
    """Apply :data:`KERNEL_ENV` (called once from the package import)."""
    return select_kernel(os.environ.get(KERNEL_ENV, "auto"))
