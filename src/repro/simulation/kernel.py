"""A minimal deterministic discrete-event simulation kernel.

Processes are Python generators that ``yield`` :class:`Event` objects and
are resumed with the event's value once it fires.  The kernel is
deliberately small — timeouts, processes, and FIFO resources are all this
reproduction needs — and fully deterministic: events scheduled for the same
instant fire in scheduling order.

Example::

    sim = Simulator()

    def worker():
        yield sim.timeout(5.0)
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert sim.now == 5.0 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on."""

    __slots__ = ("sim", "callbacks", "_triggered", "_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event as fired *now* and schedule its callbacks."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_callbacks(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True  # pre-armed; fires via the event heap
        self._value = value
        sim._schedule_at(sim.now + delay, self)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (e.g. the id of a crashed node).
    A process that catches it can clean up and return; one that does not
    is simply terminated (its event fires with value ``None``).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator; the event fires when the generator returns."""

    __slots__ = ("generator", "name", "_waiting_on", "_waiting_cb")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim)
        self.generator = generator
        self.name = name
        self._waiting_on: Optional[Event] = None
        self._waiting_cb: Optional[Callable[[Event], None]] = None
        # Kick off the process at the current simulation time.
        start = Event(sim)
        start.callbacks.append(self._resume)
        self._waiting_on, self._waiting_cb = start, self._resume
        start.succeed(None)

    def _resume(self, event: Event) -> None:
        self._step(lambda: self.generator.send(event.value))

    def _throw(self, exc: BaseException) -> None:
        self._step(lambda: self.generator.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        if self._triggered:
            # The process already finished (e.g. it was interrupted twice
            # at the same instant); nothing left to resume.
            return
        self._waiting_on = None
        self._waiting_cb = None
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # The generator did not handle the interrupt: the process is
            # killed at this instant.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected Event"
            )
        if target.triggered and not isinstance(target, Timeout):
            # Already-fired events resume the process on the next tick.
            immediate = Event(self.sim)
            callback = lambda _e, t=target: self._resume_with(t)  # noqa: E731
            immediate.callbacks.append(callback)
            self._waiting_on, self._waiting_cb = immediate, callback
            immediate.succeed(None)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on, self._waiting_cb = target, self._resume

    def _resume_with(self, target: Event) -> None:
        self._resume(target)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is detached (it may still
        fire, but no longer resumes this process).  Interrupting a
        finished process is a no-op.
        """
        if self._triggered:
            return
        if self._waiting_on is not None and self._waiting_cb is not None:
            try:
                self._waiting_on.callbacks.remove(self._waiting_cb)
            except ValueError:
                pass
        self._waiting_on = None
        self._waiting_cb = None
        kick = Event(self.sim)
        kick.callbacks.append(
            lambda _e, c=cause: self._throw(Interrupt(c))
        )
        kick.succeed(None)


class Simulator:
    """The event loop: a clock plus a priority queue of pending events."""

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._eid = 0
        self._pending_callbacks: List[Event] = []

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _schedule_at(self, time: float, event: Event) -> None:
        if time < self._now:
            raise SimulationError("cannot schedule into the past")
        self._eid += 1
        heapq.heappush(self._heap, (time, self._eid, event))

    def _schedule_callbacks(self, event: Event) -> None:
        """Queue an already-fired event's callbacks at the current instant."""
        self._eid += 1
        heapq.heappush(self._heap, (self._now, self._eid, event))

    # -- public API ---------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping at time ``until``."""
        while self._heap:
            time, _eid, event = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            event._run_callbacks()
        if until is not None and self._now < until:
            self._now = until

    def run_until_complete(self, process: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; raise on deadlock or time limit."""
        while not process.triggered:
            if not self._heap:
                raise DeadlockError(
                    f"event queue drained before {process.name!r} finished"
                )
            time, _eid, event = heapq.heappop(self._heap)
            if limit is not None and time > limit:
                raise SimulationError(
                    f"{process.name!r} exceeded time limit {limit}"
                )
            self._now = time
            event._run_callbacks()
        return process.value

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if idle."""
        return self._heap[0][0] if self._heap else None
