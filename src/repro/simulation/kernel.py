"""A minimal deterministic discrete-event simulation kernel (pure Python).

Processes are Python generators that ``yield`` :class:`Event` objects —
or bare ``float``/``int`` delays — and are resumed with the event's value
(``None`` for bare delays) once it fires.  The kernel is deliberately
small — timeouts, processes, and FIFO resources are all this
reproduction needs — and fully deterministic: events scheduled for the
same instant fire in scheduling order.

This module is the *pure* kernel: the reference implementation of the
scheduling contract.  ``repro.simulation._corec`` is an optional
C-compiled twin with bit-identical semantics (same heap discipline,
same schedule-counter allocation, same wait-token rules), selected via
``REPRO_SIM_KERNEL`` — see ``repro.simulation.select_kernel``.  Any
change to the semantics here must be mirrored there; the differential
suites (``tests/simulation/test_kernel_parity.py`` and the golden
end-to-end diffs) enforce the twin-ship.

The event heap holds ``(time, eid, item)`` tuples where ``eid`` is a
monotonically increasing schedule counter: same-instant entries compare
on ``eid`` alone, so the item itself is never compared and insertion
order is the total order within an instant.  Besides :class:`Event`
objects the heap also carries plain ``(fn, arg)`` deferred-callback
tuples — a lightweight stand-in for the wrapper events that same-instant
process resumption, interrupts, and bare-delay yields would otherwise
allocate.

A bare ``yield 5.0`` is the fast path for the dominant pattern
(``yield sim.timeout(5.0)`` with the value unused): it allocates no
Timeout object and registers no callback — the scheduler resumes the
generator directly from the heap entry, guarded by the process's wait
token so an interrupt delivered while sleeping invalidates the
resumption exactly like a detached Timeout would.  The schedule-counter
consumption is identical to the Timeout form, so swapping one for the
other never perturbs seeded results.

Example::

    sim = Simulator()

    def worker():
        yield sim.timeout(5.0)   # or equivalently:  yield 5.0
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert sim.now == 5.0 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError

ProcessGenerator = Generator[Any, Any, Any]

#: Name of this kernel variant, recorded in ``RunResult`` extras and
#: benchmark rows (the compiled twin reports ``"compiled"``).
KERNEL_VARIANT = "pure"


class Event:
    """A one-shot occurrence that processes can wait on."""

    __slots__ = ("sim", "callbacks", "_triggered", "_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not fired yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event as fired *now* and schedule its callbacks."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_callbacks(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Inlined Event.__init__ — one Timeout per simulated service op
        # makes this the hottest constructor in the kernel.
        self.sim = sim
        self.callbacks = []
        self._triggered = True  # pre-armed; fires via the event heap
        self._value = value
        self.delay = delay
        sim._eid += 1
        heapq.heappush(sim._heap, (sim._now + delay, sim._eid, self))


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (e.g. the id of a crashed node).
    A process that catches it can clean up and return; one that does not
    is simply terminated (its event fires with value ``None``).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator; the event fires when the generator returns.

    ``_wait_token`` invalidates deferred same-instant resumptions *and*
    pending bare-delay wakeups: each detach (interrupt) bumps it, so a
    ``(fn, arg)`` tuple already sitting on the heap becomes a no-op
    instead of resuming a detached process.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_waiting_cb",
                 "_wait_token", "_resume_bound", "_token_bound")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim)
        self.generator = generator
        self.name = name
        self._waiting_on: Optional[Event] = None
        self._waiting_cb: Optional[Callable[[Event], None]] = None
        self._wait_token = 0
        #: One bound method reused for every callback registration (a
        #: fresh ``self._resume`` per yield is an allocation the hot
        #: path can skip).
        self._resume_bound = self._resume
        self._token_bound = self._token_resume
        # Kick off the process at the current simulation time.
        sim._defer(self._token_bound, 0)

    def _token_resume(self, token: int) -> None:
        """Heap-entry target for deferred starts and bare-delay wakeups."""
        if token != self._wait_token or self._triggered:
            return
        self._advance(self.generator.send, None)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            # The process already finished (e.g. it was interrupted twice
            # at the same instant); nothing left to resume.
            return
        self._waiting_on = None
        self._waiting_cb = None
        self._advance(self.generator.send, event._value)

    def _deferred_resume(self, arg: Tuple[Event, int]) -> None:
        target, token = arg
        if token != self._wait_token or self._triggered:
            return
        self._advance(self.generator.send, target._value)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        self._waiting_cb = None
        self._advance(self.generator.throw, exc)

    def _advance(self, step: Callable[[Any], Any], value: Any) -> None:
        try:
            target = step(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # The generator did not handle the interrupt: the process is
            # killed at this instant.
            self.succeed(None)
            return
        cls = target.__class__
        if cls is float or cls is int:
            # Bare-delay yield: schedule the wakeup directly — no
            # Timeout object, no callback registration.  The schedule
            # counter advances exactly as the Timeout form would, so
            # the two spellings are interchangeable without perturbing
            # seeded results.
            if target < 0:
                raise SimulationError(f"negative timeout: {target}")
            sim = self.sim
            sim._eid += 1
            heapq.heappush(
                sim._heap,
                (sim._now + target, sim._eid,
                 (self._token_bound, self._wait_token)),
            )
            return
        if cls is Timeout:
            target.callbacks.append(self._resume_bound)
            self._waiting_on, self._waiting_cb = target, self._resume_bound
        elif not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, "
                "expected Event or delay"
            )
        elif target._triggered:
            # Already-fired events resume the process on the next tick;
            # a deferred tuple replaces the wrapper event + closure.
            self._wait_token += 1
            self.sim._defer(self._deferred_resume,
                            (target, self._wait_token))
        else:
            target.callbacks.append(self._resume_bound)
            self._waiting_on, self._waiting_cb = target, self._resume_bound

    def _deferred_interrupt(self, cause: Any) -> None:
        self._throw(Interrupt(cause))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The event the process was waiting on is detached (it may still
        fire, but no longer resumes this process).  Interrupting a
        finished process is a no-op.
        """
        if self._triggered:
            return
        if self._waiting_on is not None and self._waiting_cb is not None:
            try:
                self._waiting_on.callbacks.remove(self._waiting_cb)
            except ValueError:
                pass
        self._waiting_on = None
        self._waiting_cb = None
        self._wait_token += 1
        self.sim._defer(self._deferred_interrupt, cause)


class Simulator:
    """The event loop: a clock plus a priority queue of pending events."""

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, Any]] = []
        self._eid = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _schedule_at(self, time: float, event: Event) -> None:
        if time < self._now:
            raise SimulationError("cannot schedule into the past")
        self._eid += 1
        heapq.heappush(self._heap, (time, self._eid, event))

    def _schedule_callbacks(self, event: Event) -> None:
        """Queue an already-fired event's callbacks at the current instant."""
        self._eid += 1
        heapq.heappush(self._heap, (self._now, self._eid, event))

    def _defer(self, fn: Callable[[Any], None], arg: Any) -> None:
        """Queue a bare callback at the current instant.

        Cheaper than wrapping the callback in an :class:`Event`; ordering
        relative to real events is still by schedule counter.
        """
        self._eid += 1
        heapq.heappush(self._heap, (self._now, self._eid, (fn, arg)))

    # -- public API ---------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        Same-instant entries are drained in one pass: the scheduler
        advances the clock once per distinct timestamp and pops every
        entry at that instant (including ones its callbacks push) before
        re-checking the stop condition.  Pop order within the instant is
        by schedule counter, so the batch is observably identical to the
        one-at-a-time loop.
        """
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            time = heap[0][0]
            if until is not None and time > until:
                break
            self._now = time
            # Drain this timestamp in one pass.
            while True:
                _, _eid, item = pop(heap)
                processed += 1
                if item.__class__ is tuple:
                    item[0](item[1])
                else:
                    item._run_callbacks()
                if not heap or heap[0][0] != time:
                    break
        self.events_processed += processed
        if until is not None and self._now < until:
            self._now = until

    def run_until_complete(self, process: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; raise on deadlock or time limit."""
        heap = self._heap
        pop = heapq.heappop
        while not process._triggered:
            if not heap:
                raise DeadlockError(
                    f"event queue drained before {process.name!r} finished"
                )
            time, _eid, item = pop(heap)
            if limit is not None and time > limit:
                raise SimulationError(
                    f"{process.name!r} exceeded time limit {limit}"
                )
            self._now = time
            self.events_processed += 1
            if item.__class__ is tuple:
                item[0](item[1])
            else:
                item._run_callbacks()
        return process.value

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or ``None`` if idle."""
        return self._heap[0][0] if self._heap else None
