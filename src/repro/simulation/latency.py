"""Latency distributions for simulated service calls.

The paper reports operation latencies as (median, p99) pairs (Table 1).  A
log-normal distribution is the conventional fit for storage/network service
times and is fully determined by those two quantiles:

    median = exp(mu)           =>  mu    = ln(median)
    p99    = exp(mu + z99 * s) =>  sigma = ln(p99 / median) / z99

where ``z99 = Phi^-1(0.99) ~= 2.3263``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ConfigError

#: A compiled sampler: draws one service time from a generator.
Sampler = Callable[[np.random.Generator], float]

#: A batched sampler: draws one service time from a shared
#: :class:`NormalDrawBatch` (no per-call generator argument).
BatchedSampler = Callable[[], float]

#: 99th-percentile z-score of the standard normal distribution.
Z99 = 2.3263478740408408

#: Default refill size for :class:`NormalDrawBatch`.  Large enough that
#: the numpy vector call amortises to noise, small enough that a short
#: run does not waste draws (unused tail draws are simply never taken —
#: they do not perturb any other stream).
DEFAULT_DRAW_CHUNK = 1024


class NormalDrawBatch:
    """Chunked standard-normal draws from one exclusively-owned stream.

    Refills pull ``chunk`` draws at a time via
    ``rng.standard_normal(chunk)``, which consumes the generator's bit
    stream *identically* to ``chunk`` sequential scalar draws — so a
    batch-fed sampler produces the exact seeded sequence the scalar
    ``rng.lognormal(mu, sigma)`` path does, across refill boundaries
    (pinned by ``tests/simulation/test_batched_draws.py``).

    The correctness contract is exclusivity: every consumer of the
    underlying stream must draw through this batch.  A stream that also
    serves uniform/integer draws cannot be batched (the refill would
    reorder consumption); ``LatencyProvider.batched_samplers`` refuses
    to batch such configurations and callers fall back to scalar draws.
    """

    __slots__ = ("rng", "chunk", "_buf", "_pos", "refills")

    def __init__(self, rng: np.random.Generator,
                 chunk: int = DEFAULT_DRAW_CHUNK):
        if chunk < 1:
            raise ConfigError("chunk must be >= 1")
        self.rng = rng
        self.chunk = int(chunk)
        #: Python floats (``tolist``): scalar math on the hot path stays
        #: in C doubles instead of numpy scalar objects.
        self._buf: list = []
        self._pos = 0
        self.refills = 0

    def next_normal(self) -> float:
        """The next standard-normal draw from the owned stream."""
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self.rng.standard_normal(self.chunk).tolist()
            self.refills += 1
            pos = 0
        self._pos = pos + 1
        return buf[pos]


class LatencyModel:
    """Base class: a sampleable distribution of service times (ms)."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        raise NotImplementedError

    def scaled(self, factor: float) -> "LatencyModel":
        """Return this distribution with all mass scaled by ``factor``."""
        return ScaledLatency(self, factor)

    def compiled(self) -> Sampler:
        """Return a ``fn(rng) -> float`` closure equivalent to ``sample``.

        Compiled samplers hoist distribution parameters out of the per-op
        path (no attribute walks, no wrapper-object dispatch).  Every
        implementation must consume the generator stream exactly as its
        ``sample`` does, so swapping a compiled sampler in never perturbs
        seeded results.  Closures are intentionally not cached on the
        instance: models stay picklable for process fan-out.
        """
        return self.sample

    def batched_sampler(self, batch: NormalDrawBatch
                        ) -> Optional[BatchedSampler]:
        """Return a zero-arg sampler drawing through ``batch``, or None.

        Only distributions whose ``sample`` consumes *exactly one
        standard normal* (or nothing at all) from the stream can be fed
        from a shared batch; anything else returns ``None`` and the
        whole stream stays on scalar draws (see
        ``LatencyProvider.batched_samplers``).
        """
        return None


class ConstantLatency(LatencyModel):
    """Degenerate distribution; useful for tests and analytic checks."""

    def __init__(self, value_ms: float):
        if value_ms < 0:
            raise ConfigError("latency must be non-negative")
        self.value_ms = float(value_ms)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value_ms

    def mean(self) -> float:
        return self.value_ms

    def compiled(self) -> Sampler:
        value = self.value_ms
        return lambda rng: value

    def batched_sampler(self, batch: NormalDrawBatch) -> BatchedSampler:
        value = self.value_ms
        return lambda: value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value_ms!r})"


class LogNormalLatency(LatencyModel):
    """Log-normal service time parameterised by (median, p99)."""

    def __init__(self, median_ms: float, p99_ms: float):
        if median_ms <= 0:
            raise ConfigError("median must be positive")
        if p99_ms < median_ms:
            raise ConfigError("p99 must be >= median")
        self.median_ms = float(median_ms)
        self.p99_ms = float(p99_ms)
        self._mu = math.log(median_ms)
        self._sigma = (
            0.0 if p99_ms == median_ms
            else math.log(p99_ms / median_ms) / Z99
        )

    @property
    def mu(self) -> float:
        return self._mu

    @property
    def sigma(self) -> float:
        return self._sigma

    def sample(self, rng: np.random.Generator) -> float:
        if self._sigma == 0.0:
            return self.median_ms
        return float(rng.lognormal(self._mu, self._sigma))

    def mean(self) -> float:
        return math.exp(self._mu + self._sigma ** 2 / 2.0)

    def compiled(self) -> Sampler:
        if self._sigma == 0.0:
            median = self.median_ms
            return lambda rng: median
        mu, sigma = self._mu, self._sigma
        return lambda rng: float(rng.lognormal(mu, sigma))

    def batched_sampler(self, batch: NormalDrawBatch) -> BatchedSampler:
        if self._sigma == 0.0:
            median = self.median_ms
            return lambda: median
        # ``rng.lognormal(mu, sigma)`` is exactly
        # ``exp(mu + sigma * standard_normal())`` — bit-for-bit — so
        # feeding the transform from the batch preserves the seeded
        # sequence.
        mu, sigma = self._mu, self._sigma
        exp = math.exp
        next_normal = batch.next_normal
        return lambda: exp(mu + sigma * next_normal())

    def percentile(self, q: float) -> float:
        """Analytic quantile, ``q`` in (0, 1)."""
        if not 0.0 < q < 1.0:
            raise ConfigError("q must be in (0, 1)")
        # Inverse-normal via the rational approximation is overkill here;
        # numpy provides the exact quantile through the underlying normal.
        from scipy.special import ndtri  # local import: scipy is installed

        return math.exp(self._mu + self._sigma * float(ndtri(q)))

    def __repr__(self) -> str:
        return (
            f"LogNormalLatency(median={self.median_ms!r}, "
            f"p99={self.p99_ms!r})"
        )


class UniformLatency(LatencyModel):
    """Uniform service time on ``[low_ms, high_ms]``."""

    def __init__(self, low_ms: float, high_ms: float):
        if low_ms < 0 or high_ms < low_ms:
            raise ConfigError("need 0 <= low <= high")
        self.low_ms = float(low_ms)
        self.high_ms = float(high_ms)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_ms, self.high_ms))

    def mean(self) -> float:
        return (self.low_ms + self.high_ms) / 2.0

    def compiled(self) -> Sampler:
        low, high = self.low_ms, self.high_ms
        return lambda rng: float(rng.uniform(low, high))


class EmpiricalLatency(LatencyModel):
    """Resamples from a fixed set of observed latencies."""

    def __init__(self, samples_ms: Sequence[float]):
        if not samples_ms:
            raise ConfigError("need at least one sample")
        arr = np.asarray(samples_ms, dtype=float)
        if np.any(arr < 0):
            raise ConfigError("latencies must be non-negative")
        self._samples = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._samples[rng.integers(0, len(self._samples))])

    def mean(self) -> float:
        return float(self._samples.mean())

    def compiled(self) -> Sampler:
        samples, n = self._samples, len(self._samples)
        return lambda rng: float(samples[rng.integers(0, n)])


class ScaledLatency(LatencyModel):
    """A base distribution with all mass multiplied by a factor."""

    def __init__(self, base: LatencyModel, factor: float):
        if factor < 0:
            raise ConfigError("scale factor must be non-negative")
        self.base = base
        self.factor = float(factor)

    def sample(self, rng: np.random.Generator) -> float:
        return self.base.sample(rng) * self.factor

    def mean(self) -> float:
        return self.base.mean() * self.factor

    def compiled(self) -> Sampler:
        base, factor = self.base.compiled(), self.factor
        return lambda rng: base(rng) * factor

    def batched_sampler(self, batch: NormalDrawBatch
                        ) -> Optional[BatchedSampler]:
        inner = self.base.batched_sampler(batch)
        if inner is None:
            return None
        factor = self.factor
        return lambda: inner() * factor


class MixtureLatency(LatencyModel):
    """Two-component mixture, e.g. cache hit vs. miss paths."""

    def __init__(
        self,
        primary: LatencyModel,
        secondary: LatencyModel,
        primary_probability: float,
    ):
        if not 0.0 <= primary_probability <= 1.0:
            raise ConfigError("primary_probability must be in [0, 1]")
        self.primary = primary
        self.secondary = secondary
        self.primary_probability = float(primary_probability)

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() < self.primary_probability:
            return self.primary.sample(rng)
        return self.secondary.sample(rng)

    def mean(self) -> float:
        p = self.primary_probability
        return p * self.primary.mean() + (1.0 - p) * self.secondary.mean()

    def compiled(self) -> Sampler:
        primary = self.primary.compiled()
        secondary = self.secondary.compiled()
        p = self.primary_probability

        def draw(rng: np.random.Generator) -> float:
            if rng.random() < p:
                return primary(rng)
            return secondary(rng)

        return draw
