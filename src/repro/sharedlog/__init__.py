"""Shared-log substrate: Boki-style logging layer with tagged sub-streams.

Exposes the five log APIs from Figure 3 of the paper — ``append``
(``logAppend``), ``read_prev``/``read_next`` (``logReadPrev``/``Next``),
``trim`` (``logTrim``), and ``cond_append`` (``logCondAppend``) — plus the
function-node record cache that gives cached log reads their low latency.
"""

from .cache import RecordCache
from .log import SharedLog
from .record import LogRecord

__all__ = ["LogRecord", "RecordCache", "SharedLog"]
