"""The shared-log abstraction (Boki-style logging layer).

Implements the five log APIs from Figure 3 of the paper:

* :meth:`SharedLog.append`       — ``logAppend(tags, record) -> seqnum``
* :meth:`SharedLog.read_prev`    — ``logReadPrev(tag, max_seqnum)``
* :meth:`SharedLog.read_next`    — ``logReadNext(tag, min_seqnum)``
* :meth:`SharedLog.trim`         — ``logTrim(tag, seqnum)``
* :meth:`SharedLog.cond_append`  — ``logCondAppend(tags, record, condTag,
  condPos)`` (Section 5.1), the compare-and-swap-like primitive Halfmoon
  adds to resolve races between peer instances of the same SSF invocation.

The log enforces a single global total order via an internal sequencer.
Each tag names a sub-stream; a record may belong to several sub-streams,
and sub-stream order is inherited from the main log's seqnum order.
Storage is accounted once per record regardless of how many sub-streams
index it, matching how Boki stores the record body once.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import (
    ConditionalAppendError,
    LogError,
    ProtocolError,
    TrimmedError,
)
from .record import LogRecord


class _Stream:
    """One tag's sub-stream: a sorted list of live seqnums plus the count of
    records trimmed from its head (so stream *offsets* stay stable)."""

    __slots__ = ("seqnums", "trimmed_count")

    def __init__(self) -> None:
        self.seqnums: List[int] = []
        self.trimmed_count = 0

    def append(self, seqnum: int) -> None:
        # The sequencer hands out increasing seqnums, so appends keep the
        # list sorted without a search.
        self.seqnums.append(seqnum)

    @property
    def next_offset(self) -> int:
        return self.trimmed_count + len(self.seqnums)

    def offset_of_index(self, index: int) -> int:
        return self.trimmed_count + index

    def index_of_offset(self, offset: int) -> int:
        return offset - self.trimmed_count


class SharedLog:
    """In-memory shared log with tagged sub-streams and a global sequencer."""

    def __init__(self, meta_bytes: int = 48, first_seqnum: int = 1):
        self._meta_bytes = int(meta_bytes)
        self._next_seqnum = int(first_seqnum)
        self._records: Dict[int, LogRecord] = {}
        self._live_tag_refs: Dict[int, int] = {}
        self._streams: Dict[str, _Stream] = {}
        self._storage_bytes = 0
        self._append_count = 0
        self._trim_count = 0
        self._storage_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def next_seqnum(self) -> int:
        """The seqnum the next append will receive."""
        return self._next_seqnum

    @property
    def tail_seqnum(self) -> int:
        """The largest seqnum assigned so far (0 if the log is empty)."""
        return self._next_seqnum - 1

    @property
    def append_count(self) -> int:
        return self._append_count

    @property
    def trim_count(self) -> int:
        return self._trim_count

    @property
    def live_record_count(self) -> int:
        return len(self._records)

    def storage_bytes(self) -> int:
        """Bytes held by live records (body counted once, plus metadata)."""
        return self._storage_bytes

    def add_storage_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the new total after any change."""
        self._storage_listeners.append(listener)

    def _notify_storage(self) -> None:
        for listener in self._storage_listeners:
            listener(self._storage_bytes)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def append(
        self,
        tags: Sequence[str],
        data: Mapping[str, Any],
        payload_bytes: int = 0,
    ) -> int:
        """Append a record to every sub-stream in ``tags``; return seqnum."""
        if not tags:
            raise LogError("append requires at least one tag")
        record = LogRecord(
            seqnum=self._next_seqnum,
            tags=tuple(tags),
            data=data,
            payload_bytes=int(payload_bytes),
        )
        self._next_seqnum += 1
        self._install(record)
        return record.seqnum

    def cond_append(
        self,
        tags: Sequence[str],
        data: Mapping[str, Any],
        cond_tag: str,
        cond_pos: int,
        payload_bytes: int = 0,
    ) -> int:
        """Conditional append (Section 5.1).

        Appends only if the new record would land at offset ``cond_pos`` of
        the ``cond_tag`` sub-stream, i.e. the caller's view of its own
        execution history is current.  On conflict the append is undone and
        :class:`ConditionalAppendError` carries the seqnum of the record
        already occupying the expected offset, letting the losing peer
        instance adopt the winner's state.
        """
        if cond_tag not in tags:
            raise LogError("cond_tag must be one of the record's tags")
        stream = self._streams.get(cond_tag)
        next_offset = stream.next_offset if stream is not None else 0
        if next_offset == cond_pos:
            return self.append(tags, data, payload_bytes=payload_bytes)
        if next_offset > cond_pos:
            existing = self._record_at_offset(cond_tag, cond_pos)
            raise ConditionalAppendError(
                f"offset {cond_pos} of stream {cond_tag!r} already taken "
                f"by seqnum {existing.seqnum}",
                existing_seqnum=existing.seqnum,
            )
        raise ProtocolError(
            f"cond_append at offset {cond_pos} of stream {cond_tag!r}, "
            f"but the stream only has {next_offset} records: the caller "
            "skipped a step"
        )

    def _record_at_offset(self, tag: str, offset: int) -> LogRecord:
        stream = self._streams.get(tag)
        if stream is None:
            raise LogError(f"unknown stream {tag!r}")
        index = stream.index_of_offset(offset)
        if index < 0:
            raise TrimmedError(
                f"offset {offset} of stream {tag!r} was garbage collected"
            )
        if index >= len(stream.seqnums):
            raise LogError(f"offset {offset} of stream {tag!r} out of range")
        return self._records[stream.seqnums[index]]

    def _install(self, record: LogRecord) -> None:
        self._records[record.seqnum] = record
        self._live_tag_refs[record.seqnum] = len(record.tags)
        for tag in record.tags:
            stream = self._streams.get(tag)
            if stream is None:
                stream = _Stream()
                self._streams[tag] = stream
            stream.append(record.seqnum)
        self._storage_bytes += self._meta_bytes + record.payload_bytes
        self._append_count += 1
        self._notify_storage()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_prev(self, tag: str, max_seqnum: int) -> Optional[LogRecord]:
        """Latest record in ``tag``'s sub-stream with seqnum <= max_seqnum.

        Returns ``None`` when the sub-stream has no such record.  Raises
        :class:`TrimmedError` if such records existed but were garbage
        collected — under a correct GC policy (Section 4.5) this indicates
        a protocol bug, so we surface it loudly.
        """
        stream = self._streams.get(tag)
        if stream is None:
            return None
        index = bisect.bisect_right(stream.seqnums, max_seqnum) - 1
        if index >= 0:
            return self._records[stream.seqnums[index]]
        if stream.trimmed_count > 0:
            raise TrimmedError(
                f"read_prev(tag={tag!r}, max_seqnum={max_seqnum}) targets "
                "only garbage-collected records"
            )
        return None

    def read_next(self, tag: str, min_seqnum: int) -> Optional[LogRecord]:
        """Earliest record in ``tag``'s sub-stream with seqnum >= min_seqnum."""
        stream = self._streams.get(tag)
        if stream is None:
            return None
        index = bisect.bisect_left(stream.seqnums, min_seqnum)
        if index < len(stream.seqnums):
            return self._records[stream.seqnums[index]]
        return None

    def read_stream(self, tag: str, min_seqnum: int = 0) -> List[LogRecord]:
        """All live records of a sub-stream, in seqnum order."""
        stream = self._streams.get(tag)
        if stream is None:
            return []
        index = bisect.bisect_left(stream.seqnums, min_seqnum)
        return [self._records[s] for s in stream.seqnums[index:]]

    def stream_length(self, tag: str) -> int:
        """Logical length of a sub-stream, including trimmed records."""
        stream = self._streams.get(tag)
        return stream.next_offset if stream is not None else 0

    def stream_tags(self) -> List[str]:
        return list(self._streams)

    # ------------------------------------------------------------------
    # Trim (garbage collection support)
    # ------------------------------------------------------------------

    def trim(self, tag: str, seqnum: int) -> int:
        """Delete records with seqnum <= ``seqnum`` from ``tag``'s stream.

        A record's body is freed once every sub-stream referencing it has
        trimmed it.  Returns the number of records removed from this
        sub-stream.
        """
        stream = self._streams.get(tag)
        if stream is None:
            return 0
        cut = bisect.bisect_right(stream.seqnums, seqnum)
        if cut == 0:
            return 0
        removed = stream.seqnums[:cut]
        del stream.seqnums[:cut]
        stream.trimmed_count += len(removed)
        for sn in removed:
            self._live_tag_refs[sn] -= 1
            if self._live_tag_refs[sn] == 0:
                record = self._records.pop(sn)
                del self._live_tag_refs[sn]
                self._storage_bytes -= self._meta_bytes + record.payload_bytes
                self._trim_count += 1
        self._notify_storage()
        return len(removed)
