"""Function-node record cache.

Boki caches log records on function nodes, which is why ``logReadPrev``
costs ~0.12 ms at the median instead of a storage-node round trip
(Section 4.1).  The cache only influences *latency* in this reproduction —
the in-memory :class:`~repro.sharedlog.log.SharedLog` is always consistent —
so its job is to decide, deterministically, whether a given log read is a
hit or a miss.

The policy is LRU over seqnums.  Records a node appended itself, and
records it recently read, are resident; capacity pressure evicts the
least-recently used entries.

Entries remember which log shard their record lives on, so a storage
shard that goes away (or is re-placed) can invalidate exactly its share
of the cache via :meth:`RecordCache.evict_shard`, while a function-node
crash still evicts by seqnum hash via
:meth:`RecordCache.evict_partition`.  The single-shard topology always
inserts with ``shard=0``, which keeps behaviour identical to the
pre-shard cache.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError


class RecordCache:
    """LRU set of cached record seqnums."""

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ConfigError("cache capacity must be positive")
        self.capacity = capacity
        #: seqnum → home log shard of the cached record.
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_ratio(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def insert(self, seqnum: int, shard: int = 0) -> None:
        """Make ``seqnum`` resident (appends and completed reads do this).

        ``shard`` is the record's home log shard; single-shard callers
        leave the default 0.
        """
        if seqnum in self._entries:
            self._entries[seqnum] = shard
            self._entries.move_to_end(seqnum)
            return
        self._entries[seqnum] = shard
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def shard_of(self, seqnum: int) -> int:
        """Home shard recorded for a resident seqnum (raises if absent)."""
        return self._entries[seqnum]

    def contains(self, seqnum: int) -> bool:
        """Residency peek that mutates neither recency nor statistics.

        Used by the degraded-read path to decide whether a log read can
        be served node-locally while the log service is browning out.
        """
        return seqnum in self._entries

    def lookup(self, seqnum: int, shard: int = 0) -> bool:
        """Check residency, updating recency and hit/miss statistics."""
        if seqnum in self._entries:
            self._entries.move_to_end(seqnum)
            self._hits += 1
            return True
        self._misses += 1
        self.insert(seqnum, shard)
        return False

    def invalidate(self, seqnum: int) -> None:
        self._entries.pop(seqnum, None)

    def evict_partition(self, partition: int, num_partitions: int) -> int:
        """Drop every cached record in one hash partition.

        Models a function node crash: the distributed record cache loses
        the dead node's share (records are assumed hash-placed by seqnum
        modulo the node count), so takeover replays pay storage-trip
        latency for them until re-read.  Returns the eviction count.
        """
        if num_partitions <= 0:
            raise ConfigError("num_partitions must be positive")
        victims = [
            seqnum for seqnum in self._entries
            if seqnum % num_partitions == partition
        ]
        for seqnum in victims:
            del self._entries[seqnum]
        return len(victims)

    def evict_shard(self, shard: int) -> int:
        """Drop every cached record homed on one *log shard*.

        Models losing (or re-placing) a storage shard: cached copies of
        its records can no longer be trusted, so reads fall back to the
        storage tier until re-cached.  Partition eviction
        (:meth:`evict_partition`) slices by *function node*; this slices
        by *storage shard* — the two are independent axes.  Returns the
        eviction count.
        """
        victims = [
            seqnum for seqnum, home in self._entries.items()
            if home == shard
        ]
        for seqnum in victims:
            del self._entries[seqnum]
        return len(victims)

    def shard_census(self) -> dict:
        """Resident-entry count per home shard (diagnostics)."""
        census: dict = {}
        for home in self._entries.values():
            census[home] = census.get(home, 0) + 1
        return census

    def clear(self) -> None:
        self._entries.clear()
