"""Function-node record cache.

Boki caches log records on function nodes, which is why ``logReadPrev``
costs ~0.12 ms at the median instead of a storage-node round trip
(Section 4.1).  The cache only influences *latency* in this reproduction —
the in-memory :class:`~repro.sharedlog.log.SharedLog` is always consistent —
so its job is to decide, deterministically, whether a given log read is a
hit or a miss.

The policy is LRU over seqnums.  Records a node appended itself, and
records it recently read, are resident; capacity pressure evicts the
least-recently used entries.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError


class RecordCache:
    """LRU set of cached record seqnums."""

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ConfigError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def hit_ratio(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def insert(self, seqnum: int) -> None:
        """Make ``seqnum`` resident (appends and completed reads do this)."""
        if seqnum in self._entries:
            self._entries.move_to_end(seqnum)
            return
        self._entries[seqnum] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def contains(self, seqnum: int) -> bool:
        """Residency peek that mutates neither recency nor statistics.

        Used by the degraded-read path to decide whether a log read can
        be served node-locally while the log service is browning out.
        """
        return seqnum in self._entries

    def lookup(self, seqnum: int) -> bool:
        """Check residency, updating recency and hit/miss statistics."""
        if seqnum in self._entries:
            self._entries.move_to_end(seqnum)
            self._hits += 1
            return True
        self._misses += 1
        self.insert(seqnum)
        return False

    def invalidate(self, seqnum: int) -> None:
        self._entries.pop(seqnum, None)

    def evict_partition(self, partition: int, num_partitions: int) -> int:
        """Drop every cached record in one hash partition.

        Models a function node crash: the distributed record cache loses
        the dead node's share (records are assumed hash-placed by seqnum
        modulo the node count), so takeover replays pay storage-trip
        latency for them until re-read.  Returns the eviction count.
        """
        if num_partitions <= 0:
            raise ConfigError("num_partitions must be positive")
        victims = [
            seqnum for seqnum in self._entries
            if seqnum % num_partitions == partition
        ]
        for seqnum in victims:
            del self._entries[seqnum]
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()
