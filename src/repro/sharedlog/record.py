"""Log record representation.

A record is immutable once appended: the sequencer assigns it a globally
unique, monotonically increasing ``seqnum``, and the set of ``tags`` places
it into one or more sub-streams (Section 3 of the paper).  ``data`` carries
protocol-defined fields ("op", "step", "version", ...), and ``payload_bytes``
is the accounted size of the record body for the storage-overhead
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Mapping, Tuple


@dataclass(frozen=True, slots=True)
class LogRecord:
    seqnum: int
    tags: Tuple[str, ...]
    data: Mapping[str, Any]
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        # Freeze the payload mapping so shared records cannot be mutated
        # behind the log's back.
        object.__setattr__(self, "data", MappingProxyType(dict(self.data)))

    def __getitem__(self, key: str) -> Any:
        """Dict-style access mirroring the paper's pseudocode
        (``record["seqnum"]``, ``record["version"]``...)."""
        if key == "seqnum":
            return self.seqnum
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        if key == "seqnum":
            return self.seqnum
        return self.data.get(key, default)

    @property
    def op(self) -> str:
        return self.data.get("op", "?")

    @property
    def step(self) -> int:
        return int(self.data.get("step", -1))

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"LogRecord(seqnum={self.seqnum}, tags={self.tags}, {fields})"
