"""Log record representation.

A record is immutable once appended: the sequencer assigns it a globally
unique, monotonically increasing ``seqnum``, and the set of ``tags`` places
it into one or more sub-streams (Section 3 of the paper).  ``data`` carries
protocol-defined fields ("op", "step", "version", ...), and ``payload_bytes``
is the accounted size of the record body for the storage-overhead
experiments.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Mapping, Tuple


class LogRecord:
    """One installed record (hand-rolled: a frozen dataclass costs ~3x
    as much to construct, and the log creates one per append)."""

    __slots__ = ("seqnum", "tags", "data", "payload_bytes")

    def __init__(self, seqnum: int, tags: Tuple[str, ...],
                 data: Mapping[str, Any], payload_bytes: int = 0):
        self.seqnum = seqnum
        self.tags = tags
        # Freeze the payload mapping so shared records cannot be mutated
        # behind the log's back (and copy, so the caller's dict can't
        # leak mutations in).
        self.data = MappingProxyType(dict(data))
        self.payload_bytes = payload_bytes

    def __reduce__(self):
        # MappingProxyType does not pickle; rebuild from a plain dict.
        return (
            LogRecord,
            (self.seqnum, self.tags, dict(self.data), self.payload_bytes),
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, LogRecord):
            return NotImplemented
        return (
            self.seqnum == other.seqnum
            and self.tags == other.tags
            and dict(self.data) == dict(other.data)
            and self.payload_bytes == other.payload_bytes
        )

    def __hash__(self) -> int:
        return hash((self.seqnum, self.tags))

    def __getitem__(self, key: str) -> Any:
        """Dict-style access mirroring the paper's pseudocode
        (``record["seqnum"]``, ``record["version"]``...)."""
        if key == "seqnum":
            return self.seqnum
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        if key == "seqnum":
            return self.seqnum
        return self.data.get(key, default)

    @property
    def op(self) -> str:
        return self.data.get("op", "?")

    @property
    def step(self) -> int:
        return int(self.data.get("step", -1))

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"LogRecord(seqnum={self.seqnum}, tags={self.tags}, {fields})"
