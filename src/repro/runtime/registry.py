"""Function registry and invocation tracking.

The registry maps function names to SSF bodies.  The tracker mirrors what
the paper's runtime derives from scanning init log records (Sections 4.5
and 4.7): which SSF invocations are currently running and the seqnum of
each one's init record.  Both the garbage collector (condition (b) of
Section 4.5) and the switch manager (finding SSFs that started before a
BEGIN record) consume this view.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Set

from ..errors import InvocationError, RuntimeStateError


class FunctionRegistry:
    """Named SSF bodies: either ctx-style callables ``fn(ctx, inp)`` or
    op-style generator functions ``fn(inp)``."""

    def __init__(self):
        self._functions: Dict[str, Callable] = {}

    def register(self, name: str, fn: Callable) -> None:
        if name in self._functions:
            raise RuntimeStateError(f"function {name!r} already registered")
        self._functions[name] = fn

    def get(self, name: str) -> Callable:
        fn = self._functions.get(name)
        if fn is None:
            raise InvocationError(f"unknown function {name!r}")
        return fn

    def names(self) -> List[str]:
        return sorted(self._functions)

    @staticmethod
    def is_generator_style(fn: Callable) -> bool:
        return inspect.isgeneratorfunction(fn)


class InvocationTracker:
    """Tracks running invocations and their initial cursorTS values.

    Besides *running* and *finished*, an invocation can be **orphaned**:
    its hosting node died mid-flight and no survivor has taken it over
    yet.  Orphans keep their init cursorTS pinned — they count for
    :meth:`safe_seqnum` and :meth:`running_started_before` exactly like
    running invocations — because the takeover replay still needs every
    log record and object version the original execution could observe.
    Letting the GC frontier advance past an orphan would trim state the
    recovering SSF reads (see ``tests/runtime/test_gc.py``).
    """

    def __init__(self):
        self._running: Dict[str, int] = {}
        self._orphaned: Dict[str, int] = {}
        self._finished_pending_gc: Set[str] = set()
        self._finished_count = 0
        self._started_count = 0
        self._finish_listeners: List[Callable[[str], None]] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self, instance_id: str, provisional_init_ts: int) -> None:
        """Record an invocation as running.

        ``provisional_init_ts`` is a conservative lower bound on the init
        record's eventual seqnum (the log tail at start time); it is
        replaced by the real value once init completes.  Re-executions of
        an already-tracked instance are no-ops.
        """
        if instance_id in self._running or instance_id in self._orphaned:
            return
        self._running[instance_id] = provisional_init_ts
        self._started_count += 1

    def set_init_ts(self, instance_id: str, init_ts: int) -> None:
        if instance_id in self._running:
            self._running[instance_id] = init_ts
        elif instance_id in self._orphaned:
            self._orphaned[instance_id] = init_ts

    def mark_orphaned(self, instance_id: str) -> None:
        """The invocation's node died; keep its init cursorTS pinned
        until a survivor reclaims it (or it is finished)."""
        ts = self._running.pop(instance_id, None)
        if ts is None:
            return
        self._orphaned[instance_id] = ts

    def reclaim(self, instance_id: str) -> None:
        """A surviving node took the orphan over: running again."""
        ts = self._orphaned.pop(instance_id, None)
        if ts is None:
            return
        self._running[instance_id] = ts

    def finish(self, instance_id: str) -> None:
        if instance_id in self._running:
            del self._running[instance_id]
        elif instance_id in self._orphaned:
            del self._orphaned[instance_id]
        else:
            return
        self._finished_pending_gc.add(instance_id)
        self._finished_count += 1
        for listener in list(self._finish_listeners):
            listener(instance_id)

    def add_finish_listener(self,
                            listener: Callable[[str], None]) -> None:
        self._finish_listeners.append(listener)

    # -- queries -----------------------------------------------------------

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def finished_count(self) -> int:
        return self._finished_count

    @property
    def orphan_count(self) -> int:
        return len(self._orphaned)

    def is_running(self, instance_id: str) -> bool:
        return instance_id in self._running

    def is_orphaned(self, instance_id: str) -> bool:
        return instance_id in self._orphaned

    def orphans(self) -> Dict[str, int]:
        """Orphaned instances and their pinned init cursorTS values."""
        return dict(self._orphaned)

    def running_started_before(self, seqnum: int) -> Set[str]:
        """Unfinished invocations whose init record precedes ``seqnum``
        (orphans included: a takeover will resume them)."""
        return {
            iid
            for store in (self._running, self._orphaned)
            for iid, ts in store.items() if ts < seqnum
        }

    def safe_seqnum(self, log_frontier: int) -> int:
        """Largest ``t`` such that every SSF with initial cursorTS below
        ``t`` has finished (Section 4.5's condition (b)).  Orphaned
        invocations pin the frontier like running ones — their replay is
        still owed.  When nothing is unfinished, everything up to the log
        frontier is safe."""
        pinned = [
            ts for store in (self._running, self._orphaned)
            for ts in store.values()
        ]
        if not pinned:
            return log_frontier
        return min(pinned)

    def drain_finished(self) -> Set[str]:
        """Hand the set of finished-but-not-yet-collected instances to the
        garbage collector, clearing the pending set."""
        drained = self._finished_pending_gc
        self._finished_pending_gc = set()
        return drained
