"""Function registry and invocation tracking.

The registry maps function names to SSF bodies.  The tracker mirrors what
the paper's runtime derives from scanning init log records (Sections 4.5
and 4.7): which SSF invocations are currently running and the seqnum of
each one's init record.  Both the garbage collector (condition (b) of
Section 4.5) and the switch manager (finding SSFs that started before a
BEGIN record) consume this view.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Set

from ..errors import InvocationError, RuntimeStateError


class FunctionRegistry:
    """Named SSF bodies: either ctx-style callables ``fn(ctx, inp)`` or
    op-style generator functions ``fn(inp)``."""

    def __init__(self):
        self._functions: Dict[str, Callable] = {}

    def register(self, name: str, fn: Callable) -> None:
        if name in self._functions:
            raise RuntimeStateError(f"function {name!r} already registered")
        self._functions[name] = fn

    def get(self, name: str) -> Callable:
        fn = self._functions.get(name)
        if fn is None:
            raise InvocationError(f"unknown function {name!r}")
        return fn

    def names(self) -> List[str]:
        return sorted(self._functions)

    @staticmethod
    def is_generator_style(fn: Callable) -> bool:
        return inspect.isgeneratorfunction(fn)


class InvocationTracker:
    """Tracks running invocations and their initial cursorTS values."""

    def __init__(self):
        self._running: Dict[str, int] = {}
        self._finished_pending_gc: Set[str] = set()
        self._finished_count = 0
        self._started_count = 0
        self._finish_listeners: List[Callable[[str], None]] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self, instance_id: str, provisional_init_ts: int) -> None:
        """Record an invocation as running.

        ``provisional_init_ts`` is a conservative lower bound on the init
        record's eventual seqnum (the log tail at start time); it is
        replaced by the real value once init completes.  Re-executions of
        an already-tracked instance are no-ops.
        """
        if instance_id in self._running:
            return
        self._running[instance_id] = provisional_init_ts
        self._started_count += 1

    def set_init_ts(self, instance_id: str, init_ts: int) -> None:
        if instance_id in self._running:
            self._running[instance_id] = init_ts

    def finish(self, instance_id: str) -> None:
        if instance_id not in self._running:
            return
        del self._running[instance_id]
        self._finished_pending_gc.add(instance_id)
        self._finished_count += 1
        for listener in list(self._finish_listeners):
            listener(instance_id)

    def add_finish_listener(self,
                            listener: Callable[[str], None]) -> None:
        self._finish_listeners.append(listener)

    # -- queries -----------------------------------------------------------

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def finished_count(self) -> int:
        return self._finished_count

    def is_running(self, instance_id: str) -> bool:
        return instance_id in self._running

    def running_started_before(self, seqnum: int) -> Set[str]:
        """Running invocations whose init record precedes ``seqnum``."""
        return {
            iid for iid, ts in self._running.items() if ts < seqnum
        }

    def safe_seqnum(self, log_frontier: int) -> int:
        """Largest ``t`` such that every SSF with initial cursorTS below
        ``t`` has finished (Section 4.5's condition (b)).  When nothing is
        running, everything up to the log frontier is safe."""
        if not self._running:
            return log_frontier
        return min(self._running.values())

    def drain_finished(self) -> Set[str]:
        """Hand the set of finished-but-not-yet-collected instances to the
        garbage collector, clearing the pending set."""
        drained = self._finished_pending_gc
        self._finished_pending_gc = set()
        return drained
