"""Crash-injection policies.

A policy produces, for each execution attempt of an SSF instance, a fault
hook that the services layer calls at every checkpoint (before and after
each externally visible effect).  Raising :class:`CrashError` there kills
the attempt at exactly that boundary; the runtime then re-executes the
instance, which is how the exactly-once machinery gets exercised.

Three policies cover the experiments:

* :class:`NoCrashes` — failure-free runs (most benchmarks);
* :class:`ScriptedCrashes` — deterministic crashes at chosen checkpoints
  of chosen attempts (unit and property tests enumerate *every* boundary);
* :class:`BernoulliCrashes` — the Section 7 recovery-cost model: each
  round (attempt) crashes with probability ``f`` at a uniformly chosen
  checkpoint.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

import numpy as np

from ..errors import CrashError
from .services import FaultHook


class CrashPolicy:
    """Base policy: yields a fault hook per (instance, attempt)."""

    def hook_for(self, instance_id: str,
                 attempt: int) -> Optional[FaultHook]:
        return None


class NoCrashes(CrashPolicy):
    """Failure-free policy: never installs a fault hook."""


class ScriptedCrashes(CrashPolicy):
    """Crash attempt ``a`` at its ``n``-th checkpoint, per the script.

    ``script`` maps attempt number (1-based) to the checkpoint ordinal
    (1-based) at which that attempt dies.  Attempts absent from the script
    run to completion.  The same script applies to every instance unless
    ``instance_id`` is given.
    """

    def __init__(self, script: Dict[int, int],
                 instance_id: Optional[str] = None):
        self.script = dict(script)
        self.instance_id = instance_id
        self.crashes_fired = 0

    def hook_for(self, instance_id: str,
                 attempt: int) -> Optional[FaultHook]:
        if self.instance_id is not None and instance_id != self.instance_id:
            return None
        target = self.script.get(attempt)
        if target is None:
            return None
        counter = {"n": 0}

        def hook(label: str) -> None:
            counter["n"] += 1
            if counter["n"] == target:
                self.crashes_fired += 1
                raise CrashError(
                    f"scripted crash: attempt {attempt}, "
                    f"checkpoint {target} ({label})"
                )

        return hook


class CrashOnceAtEvery(CrashPolicy):
    """Helper for exhaustive sweeps: crash the first attempt at checkpoint
    ``n``; later attempts run clean.  Tests iterate ``n`` over the whole
    range of checkpoints to cover every crash window."""

    def __init__(self, checkpoint: int):
        self._scripted = ScriptedCrashes({1: checkpoint})

    def hook_for(self, instance_id: str,
                 attempt: int) -> Optional[FaultHook]:
        return self._scripted.hook_for(instance_id, attempt)

    @property
    def crashes_fired(self) -> int:
        return self._scripted.crashes_fired


class BernoulliCrashes(CrashPolicy):
    """Section 7's Bernoulli process: each round crashes with probability
    ``f``.  A crashing round dies at a checkpoint drawn uniformly from
    ``[1, horizon]``; if the draw exceeds the attempt's actual number of
    checkpoints the attempt survives (a crash "after the work finished"
    is indistinguishable from success for idempotent protocols)."""

    def __init__(self, f: float, rng: np.random.Generator,
                 horizon: int = 40, max_crashes_per_instance: int = 32):
        if not 0.0 <= f < 1.0:
            raise ValueError("f must be in [0, 1)")
        self.f = f
        self.rng = rng
        self.horizon = horizon
        self.max_crashes_per_instance = max_crashes_per_instance
        self.crashes_fired = 0
        self._crash_counts: Dict[str, int] = {}

    def hook_for(self, instance_id: str,
                 attempt: int) -> Optional[FaultHook]:
        if self.f == 0.0:
            return None
        if (self._crash_counts.get(instance_id, 0)
                >= self.max_crashes_per_instance):
            return None
        if self.rng.random() >= self.f:
            return None
        target = int(self.rng.integers(1, self.horizon + 1))
        counter = {"n": 0}

        def hook(label: str) -> None:
            counter["n"] += 1
            if counter["n"] == target:
                self.crashes_fired += 1
                self._crash_counts[instance_id] = (
                    self._crash_counts.get(instance_id, 0) + 1
                )
                raise CrashError(
                    f"bernoulli crash (f={self.f}) at checkpoint {target}"
                )

        return hook
