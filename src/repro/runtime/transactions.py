"""Transactions over the logging protocols.

The paper treats SSFs as non-transactional by default and defers atomic
multi-step updates to "existing transactional APIs" (Section 4,
"Transactions"; Beldi is the reference implementation).  This module
provides that API as a substrate: optimistic concurrency control whose
commit decision is arbitrated — and made crash-recoverable — by the
shared log.

Protocol:

1. each attempt starts with a ``sync`` step, so reads are validated
   against a fresh cursor;
2. ``txn.read`` goes through the object's logging protocol and records
   the version evidence it observed (the commit-record seqnum under
   Halfmoon-read; the stored version attribute under Halfmoon-write and
   Boki); ``txn.write`` buffers locally (read-your-writes included);
3. ``commit`` validates that every read is still current, then appends a
   single *decision record* to the step log — ``logCondAppend`` makes
   the decision exactly-once even across peer races — carrying the
   outcome and, on commit, the buffered write set;
4. the writes are then applied through the normal protocol writes (each
   individually idempotent), so a crash mid-apply simply resumes from
   the decision record on replay.

Isolation: conflicting transactions abort and retry (OCC).  Validation
and apply happen within one runtime operation, which both execution
modes treat as atomic with respect to other invocations' operations.
Non-transactional readers may observe a committed transaction's writes
key by key (read-committed per key), matching the paper's default
non-transactional semantics for plain operations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING, Tuple

from ..errors import KeyMissingError, ProtocolError, ReproError
from ..protocols.base import LoggedProtocol
from ..tags import object_tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .local import Context


class TransactionAborted(ReproError):
    """The transaction lost its validation race on every attempt."""


class Transaction:
    """Handle passed to the transaction body."""

    def __init__(self, ctx: "Context"):
        self._ctx = ctx
        self._read_versions: Dict[str, Any] = {}
        self._write_buffer: Dict[str, Any] = {}

    # -- body API --------------------------------------------------------

    def read(self, key: str) -> Any:
        if key in self._write_buffer:
            return self._write_buffer[key]
        value = self._ctx.read(key)
        if key not in self._read_versions:
            self._read_versions[key] = _current_version_evidence(
                self._ctx, key
            )
        return value

    def write(self, key: str, value: Any) -> None:
        self._write_buffer[key] = value

    # -- internals -------------------------------------------------------

    def _validate(self) -> bool:
        for key, observed in self._read_versions.items():
            if _current_version_evidence(self._ctx, key) != observed:
                return False
        return True

    @property
    def write_set(self) -> Dict[str, Any]:
        return dict(self._write_buffer)


def _current_version_evidence(ctx: "Context", key: str) -> Any:
    """Freshest committed version marker for ``key`` under its protocol."""
    protocol = ctx._runtime.router.protocol_for(ctx.svc, ctx.env, key)
    if protocol.public_write_log:
        record = ctx.svc.log_read_prev(object_tag(key), ctx.svc.log_tail)
        return ("seq", record.seqnum if record is not None else None)
    try:
        _value, version = ctx.svc.db_read_with_version(key)
    except KeyMissingError:
        return ("ver", None)
    return ("ver", version)


def run_transaction(ctx: "Context", body, max_attempts: int = 5) -> Any:
    """Execute ``body(txn)`` atomically; retries on validation conflicts.

    Crash-recoverable: every attempt's decision is a logged step, so a
    re-executed SSF replays the same commit/abort sequence and re-applies
    committed writes idempotently.
    """
    protocol = ctx._runtime.router.control_protocol()
    if not isinstance(protocol, LoggedProtocol):
        raise ProtocolError(
            "transactions require a logged protocol "
            f"(got {protocol.name!r})"
        )

    for attempt in range(1, max_attempts + 1):
        # Fresh cursor: reads validate against the current log tail.
        ctx.sync()
        transaction = Transaction(ctx)
        result = body(transaction)
        decision = _decide(ctx, protocol, transaction)
        if decision["decision"] == "commit":
            _apply(ctx, decision["writes"])
            return result
    raise TransactionAborted(
        f"transaction aborted after {max_attempts} attempts"
    )


def _decide(ctx: "Context", protocol, transaction: Transaction) -> Dict:
    """Log (or replay) this attempt's decision record."""
    env = ctx.env
    record = protocol._next_step(env)
    if record is not None:
        env.advance_cursor(record.seqnum)
        if record["op"] != "txn-decision":
            raise ProtocolError(
                f"replay mismatch: expected txn-decision at step "
                f"{env.step}, found {record['op']}"
            )
        return dict(record.data)
    outcome = "commit" if transaction._validate() else "abort"
    writes = transaction.write_set if outcome == "commit" else {}
    seqnum, data = protocol._log_step(
        ctx.svc, env, extra_tags=(),
        data={
            "op": "txn-decision",
            "decision": outcome,
            "writes": writes,
        },
        payload_bytes=ctx.svc.value_bytes * max(len(writes), 1),
    )
    env.advance_cursor(seqnum)
    return dict(data)


def _apply(ctx: "Context", writes: Dict[str, Any]) -> None:
    """Apply a committed write set through the per-object protocols.

    Deterministic order; each write is individually idempotent, so a
    crash between writes resumes here on replay (the decision record is
    already durable)."""
    for key in sorted(writes):
        ctx.write(key, writes[key])
