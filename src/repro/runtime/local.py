"""Direct-mode serverless runtime.

Executes SSFs synchronously against the in-memory substrates, with full
crash/retry semantics and per-request latency accounting (the cost trace
accumulates calibrated latency samples even though wall-clock execution is
instant).  This is the mode used by unit/property tests, the examples, and
any experiment that does not need closed-loop queueing effects.

Three entry points:

* :meth:`LocalRuntime.invoke` — run a registered SSF to completion,
  retrying on injected crashes, and return an :class:`InvocationResult`;
* :meth:`LocalRuntime.open_session` — a *manually driven* invocation for
  tests that interleave operations of concurrent SSFs or peer instances
  step by step;
* :meth:`LocalRuntime.populate` — install initial objects in both
  versioning schemas (setup phase, charged to nobody).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..config import SystemConfig
from ..errors import (
    CrashError,
    InvocationError,
    RetriesExhaustedError,
    ServiceFaultError,
)
from ..observe import CAT_ATTEMPT, CAT_INVOCATION, Span
from ..protocols import Protocol
from ..simulation.rng import RngRegistry
from ..store import TableIndex
from .env import Env
from .gc import GarbageCollector
from .failures import CrashPolicy, NoCrashes
from .ops import ComputeOp, InvokeOp, Op, ReadOp, SyncOp, TxnOp, WriteOp
from .registry import FunctionRegistry, InvocationTracker
from .services import InstanceServices, ServiceBackend
from .switching import ProtocolRouter, SwitchManager
from .tags import object_tag


@dataclass
class InvocationResult:
    instance_id: str
    output: Any
    latency_ms: float
    attempts: int
    #: Per cost-kind milliseconds summed over every attempt (plus the
    #: synthetic ``failure_detection`` segment after a lost attempt);
    #: the values sum exactly to ``latency_ms``.
    cost_by_kind: Dict[str, float] = field(default_factory=dict)


class Context:
    """The handle SSF bodies use to touch external state (ctx style)."""

    def __init__(self, runtime: "LocalRuntime", svc: InstanceServices,
                 env: Env):
        self._runtime = runtime
        self.svc = svc
        self.env = env

    def read(self, key: str) -> Any:
        if key in self._runtime.read_only_keys:
            # Section 7: reads of read-only objects are inherently
            # idempotent — no logging, no version lookup.
            return self.svc.db_read(key)
        protocol = self._runtime.router.protocol_for(self.svc, self.env, key)
        return protocol.read(self.svc, self.env, key)

    def write(self, key: str, value: Any) -> None:
        if key in self._runtime.read_only_keys:
            from ..errors import ProtocolError

            raise ProtocolError(
                f"key {key!r} was declared read-only"
            )
        protocol = self._runtime.router.protocol_for(self.svc, self.env, key)
        protocol.write(self.svc, self.env, key, value)

    def invoke(self, func_name: str, input: Any = None) -> Any:
        protocol = self._runtime.router.control_protocol()

        def invoker(callee_id: str, fname: str, inp: Any, _env: Env) -> Any:
            # The child is a full invocation of its own (own retries); the
            # parent blocks on it, so the child's end-to-end latency is
            # charged to the parent's trace as one entry.
            child = self._runtime.invoke(fname, inp, instance_id=callee_id)
            self.svc.trace.charge("child", child.latency_ms)
            return child.output

        return protocol.invoke(self.svc, self.env, func_name, input, invoker)

    def sync(self) -> None:
        """Advance the cursorTS to the log tail for linearizable access."""
        self._runtime.router.control_protocol().sync(self.svc, self.env)

    def trigger(self, func_name: str, input: Any = None) -> None:
        """Register a downstream invocation fired after this SSF completes
        (Section 4.4's trigger edges).

        The paper's real-time boundary property makes triggers the
        recommended way to order dependent work: the callee's init record
        is appended after every effect of this SSF, so it observes them
        all.  Registration is a logged step — replay re-registers the
        same callee id, and the runtime fires each trigger exactly once.
        """
        protocol = self._runtime.router.control_protocol()
        from ..protocols.base import LoggedProtocol

        if not isinstance(protocol, LoggedProtocol):
            from ..errors import ProtocolError

            raise ProtocolError(
                f"triggers require a logged protocol "
                f"(got {protocol.name!r})"
            )
        record = protocol._next_step(self.env)
        if record is not None:
            callee_id = record["callee"]
            self.env.advance_cursor(record.seqnum)
        else:
            seqnum, data = protocol._log_step(
                self.svc, self.env, extra_tags=(),
                data={
                    "op": "trigger-intent",
                    "func": func_name,
                    "callee": self.svc.random_hex(),
                },
                control=True,
            )
            callee_id = data["callee"]
            self.env.advance_cursor(seqnum)
        self.env.pending_triggers.append((callee_id, func_name, input))

    def transaction(self, body, max_attempts: int = 5) -> Any:
        """Run ``body(txn)`` atomically with OCC retries (see
        :mod:`repro.runtime.transactions`)."""
        from .transactions import run_transaction

        return run_transaction(self, body, max_attempts)

    def scan(self, table: str) -> Dict[str, Any]:
        """Read every row of a logical table (Section 4.1's remark).

        Routed through the protocol per key, so under Halfmoon-read all
        rows resolve against the same cursorTS — a consistent snapshot
        assembled via the write log — while logged-read protocols return
        (and log) the latest value of each row.  Keys with no visible
        write are omitted.
        """
        from ..errors import KeyMissingError

        rows: Dict[str, Any] = {}
        for key in self._runtime.table_index.keys_of(table):
            try:
                rows[key] = self.read(key)
            except KeyMissingError:
                continue
        return rows

    def compute(self) -> None:
        """Charge the configured pure-compute time of an SSF body."""
        self.svc.charge_compute()

    def apply(self, op: Op) -> Any:
        """Execute one op descriptor (generator-style bodies)."""
        if isinstance(op, ReadOp):
            return self.read(op.key)
        if isinstance(op, WriteOp):
            return self.write(op.key, op.value)
        if isinstance(op, InvokeOp):
            return self.invoke(op.func_name, op.input)
        if isinstance(op, ComputeOp):
            for _ in range(max(1, round(
                op.duration_ms
                / max(self._runtime.config.latency.function_compute_ms,
                      1e-9)
            ))):
                self.svc.charge_compute()
            sleep = self._runtime.compute_sleep_fn
            if sleep is not None:
                # Live compute plane: burn real wall time so invocations
                # genuinely overlap across worker processes.
                sleep(op.duration_ms)
            return None
        if isinstance(op, SyncOp):
            return self.sync()
        if isinstance(op, TxnOp):
            return self.transaction(op.body, op.max_attempts)
        raise InvocationError(f"unknown op descriptor: {op!r}")


class LocalRuntime:
    """Synchronous runtime over the shared in-memory substrates."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        protocol: str = "halfmoon-read",
        crash_policy: Optional[CrashPolicy] = None,
        enable_switching: bool = False,
        backend: Optional[ServiceBackend] = None,
    ):
        self.config = (config if config is not None
                       else SystemConfig()).validate()
        self.backend = (backend if backend is not None
                        else ServiceBackend(self.config))
        self.functions = FunctionRegistry()
        self.tracker = InvocationTracker()
        self.crash_policy = (crash_policy if crash_policy is not None
                             else NoCrashes())
        self.switch_manager: Optional[SwitchManager] = None
        if enable_switching:
            self.switch_manager = SwitchManager(
                self.backend, self.tracker, initial_protocol=protocol
            )
        self.router = ProtocolRouter(
            default_protocol=protocol,
            protocol_config=self.config.protocol,
            switch_manager=self.switch_manager,
        )
        self.gc = GarbageCollector(self.backend, self.tracker)
        self.table_index = TableIndex()
        #: Keys declared immutable (Section 7): reads bypass the logging
        #: protocol entirely, writes are rejected.
        self.read_only_keys: set = set()
        self._id_rng = self.backend.rng.stream("instance-ids")
        #: Base clock for trace timestamps.  Direct mode runs at virtual
        #: time 0; the DES platform points this at its simulation clock
        #: so child invocations (``ctx.invoke`` runs them synchronously
        #: through this runtime) produce spans anchored at the parent's
        #: simulated instant.
        self.now_fn: Callable[[], float] = lambda: 0.0
        #: Optional ``sleep(duration_ms)`` for ComputeOp steps.  Unset
        #: (the default) keeps compute purely virtual; the live compute
        #: plane's workers point it at a wall-clock sleep so concurrent
        #: invocations really overlap.
        self.compute_sleep_fn: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def register(self, name: str, fn: Callable) -> None:
        self.functions.register(name, fn)

    def populate(self, key: str, value: Any,
                 table: Optional[str] = None) -> None:
        """Install an initial object, visible to every protocol.

        Writes the LATEST slot (genesis version attribute) and a
        ``genesis`` object version committed in the write log, so both
        Halfmoon-read and Halfmoon-write see the value immediately.
        ``table`` optionally registers the key in a logical table for
        ``ctx.scan``.  Setup work: no latency is charged and no SSF is
        involved.
        """
        if table is not None:
            self.table_index.register(table, key)
        backend = self.backend
        backend.kv.put(key, value, backend.value_bytes)
        version_number = "genesis"
        backend.mv.write_version(
            key, version_number, value, backend.value_bytes
        )
        tag = object_tag(key)
        seqnum = backend.log.append(
            [tag],
            {"op": "write", "key": key, "version": version_number},
        )
        placement = backend.log_placement(tag)
        backend.cache.insert(
            seqnum, placement[1] if placement is not None else 0
        )

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def new_instance_id(self) -> str:
        return f"{int(self._id_rng.integers(0, 1 << 63)):016x}"

    def invoke(
        self,
        func_name: str,
        input: Any = None,
        instance_id: Optional[str] = None,
    ) -> InvocationResult:
        """Run ``func_name`` to completion with crash/retry semantics."""
        instance_id = (instance_id if instance_id is not None
                       else self.new_instance_id())
        total_latency = 0.0
        cost_by_kind: Dict[str, float] = {}
        max_attempts = self.config.failures.max_retries + 1
        self.tracker.start(instance_id, self.backend.log.next_seqnum)
        tracer = self.backend.tracer
        root: Optional[Span] = None
        base = 0.0
        if tracer is not None:
            base = self.now_fn()
            root = tracer.start_span(
                f"invoke:{func_name}", CAT_INVOCATION, base,
                trace_id=instance_id, func=func_name,
            )

        def absorb(svc: InstanceServices) -> None:
            for kind, ms, _placement in svc.trace.entries:
                cost_by_kind[kind] = cost_by_kind.get(kind, 0.0) + ms

        for attempt in range(1, max_attempts + 1):
            hook = self.crash_policy.hook_for(instance_id, attempt)
            svc = InstanceServices(self.backend, fault_hook=hook)
            attempt_span: Optional[Span] = None
            if root is not None:
                attempt_span = root.child(
                    f"attempt-{attempt}", CAT_ATTEMPT,
                    base + total_latency, attempt=attempt,
                )
                svc.attach_span(attempt_span, base + total_latency)
            env = Env(
                instance_id=instance_id,
                input=input,
                func_name=func_name,
                attempt=attempt,
            )
            detection_ms = self.config.failures.detection_delay_ms
            try:
                output = self._execute(svc, env, func_name, input)
            except CrashError:
                # Fault dimension 1: the instance itself died.  Charge
                # what the attempt spent plus failure detection, then
                # re-execute (the protocols make the replay idempotent).
                total_latency += svc.trace.total_ms()
                absorb(svc)
                if attempt_span is not None:
                    attempt_span.annotate("crash", base + total_latency)
                    attempt_span.finish(base + total_latency)
                total_latency += detection_ms
                cost_by_kind["failure_detection"] = (
                    cost_by_kind.get("failure_detection", 0.0)
                    + detection_ms
                )
                continue
            except ServiceFaultError as fault:
                # Fault dimension 2: a substrate kept failing past the
                # per-operation retry budget.  Retryable faults abandon
                # the attempt exactly like a crash — replay is safe for
                # the same reason — while permanent ones escalate.
                total_latency += svc.trace.total_ms()
                absorb(svc)
                if attempt_span is not None:
                    attempt_span.annotate(
                        "service-fault", base + total_latency,
                        retryable=fault.retryable,
                    )
                    attempt_span.finish(base + total_latency)
                if not fault.retryable:
                    if root is not None:
                        root.finish(base + total_latency)
                    raise
                total_latency += detection_ms
                cost_by_kind["failure_detection"] = (
                    cost_by_kind.get("failure_detection", 0.0)
                    + detection_ms
                )
                self.backend.counters.add("attempts_lost_to_service_faults")
                continue
            total_latency += svc.trace.total_ms()
            absorb(svc)
            if attempt_span is not None:
                attempt_span.finish(base + total_latency)
            if root is not None:
                root.finish(base + total_latency)
            # Fire trigger edges: downstream SSFs start strictly after
            # this invocation's effects, so the paper's real-time
            # boundary property orders them after everything above.
            for callee_id, trig_fn, trig_input in env.pending_triggers:
                self.invoke(trig_fn, trig_input, instance_id=callee_id)
            self.tracker.finish(instance_id)
            return InvocationResult(
                instance_id=instance_id,
                output=output,
                latency_ms=total_latency,
                attempts=attempt,
                cost_by_kind=cost_by_kind,
            )
        if root is not None:
            root.annotate("retries-exhausted", base + total_latency)
            root.finish(base + total_latency)
        raise RetriesExhaustedError(
            f"{func_name!r} ({instance_id}) lost every one of "
            f"{max_attempts} attempts to crashes or service faults"
        )

    def _execute(self, svc: InstanceServices, env: Env,
                 func_name: str, input: Any) -> Any:
        protocol = self.router.control_protocol()
        protocol.init(svc, env)
        self.tracker.set_init_ts(env.instance_id, env.init_cursor_ts)
        ctx = Context(self, svc, env)
        fn = self.functions.get(func_name)
        svc.charge_compute()
        if FunctionRegistry.is_generator_style(fn):
            return self._drive_generator(ctx, fn, input)
        return fn(ctx, input)

    @staticmethod
    def _drive_generator(ctx: Context, fn: Callable, input: Any) -> Any:
        gen = fn(input)
        result: Any = None
        try:
            op = next(gen)
            while True:
                op = gen.send(ctx.apply(op))
        except StopIteration as stop:
            result = stop.value
        return result

    # ------------------------------------------------------------------
    # Manual sessions (for interleaving tests)
    # ------------------------------------------------------------------

    def open_session(
        self,
        instance_id: Optional[str] = None,
        fault_hook=None,
        input: Any = None,
    ) -> "Session":
        instance_id = (instance_id if instance_id is not None
                       else self.new_instance_id())
        svc = InstanceServices(self.backend, fault_hook=fault_hook)
        env = Env(instance_id=instance_id, input=input)
        self.tracker.start(instance_id, self.backend.log.next_seqnum)
        tracer = self.backend.tracer
        if tracer is not None:
            base = self.now_fn()
            span = tracer.start_span(
                "session", CAT_INVOCATION, base, trace_id=instance_id,
            )
            svc.attach_span(span, base)
        return Session(self, svc, env)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def set_object_protocol(self, key: str, protocol_name: str) -> None:
        """Pin ``key`` to a specific Halfmoon protocol (Section 4.6's
        per-object deployment).  Configure before serving traffic."""
        self.router.assign_object(key, protocol_name)

    def mark_read_only(self, key: str) -> None:
        """Declare ``key`` immutable (Section 7): its reads are
        inherently idempotent, so they bypass logging and versioning;
        writes to it become errors."""
        self.read_only_keys.add(key)

    def run_gc(self):
        return self.gc.collect()

    def begin_switch(self, target: str) -> int:
        if self.switch_manager is None:
            raise InvocationError(
                "runtime built without enable_switching=True"
            )
        return self.switch_manager.begin_switch(target)

    def storage_bytes(self) -> Dict[str, int]:
        return {
            "log": self.backend.log.storage_bytes(),
            "db": self.backend.kv.storage_bytes(),
            "total": (self.backend.log.storage_bytes()
                      + self.backend.kv.storage_bytes()),
        }


class Session(Context):
    """A manually driven invocation: call :meth:`init`, then operations,
    then :meth:`finish`.  Lets tests interleave concurrent SSFs and peer
    instances at operation granularity."""

    def __init__(self, runtime: LocalRuntime, svc: InstanceServices,
                 env: Env):
        super().__init__(runtime, svc, env)
        self._finished = False

    def init(self) -> "Session":
        protocol = self._runtime.router.control_protocol()
        protocol.init(self.svc, self.env)
        self._runtime.tracker.set_init_ts(
            self.env.instance_id, self.env.init_cursor_ts
        )
        return self

    def replay(self, fault_hook=None) -> "Session":
        """Open a *new attempt* of the same invocation (post-crash or peer
        instance): same instance id, fresh execution state."""
        svc = InstanceServices(self._runtime.backend, fault_hook=fault_hook)
        env = Env(
            instance_id=self.env.instance_id,
            input=self.env.input,
            attempt=self.env.attempt + 1,
        )
        parent = self.svc.span
        if parent is not None:
            now = self.svc.now_ms()
            svc.attach_span(
                parent.child(
                    f"attempt-{env.attempt}", CAT_ATTEMPT, now,
                    attempt=env.attempt,
                ),
                now,
            )
        return Session(self._runtime, svc, env)

    def finish(self) -> None:
        if not self._finished:
            self._finished = True
            self._runtime.tracker.finish(self.env.instance_id)
            span = self.svc.span
            if span is not None and not span.finished:
                span.finish(self.svc.now_ms())

    @property
    def latency_ms(self) -> float:
        return self.svc.trace.total_ms()
