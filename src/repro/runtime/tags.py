"""Re-export of :mod:`repro.tags` kept for import convenience.

The tag helpers live at the package root so that the protocol layer can
use them without importing the runtime package (which imports the
protocols — a cycle otherwise).
"""

from ..tags import (
    CHECKPOINT_PREFIX,
    GLOBAL_SCOPE,
    INSTANCE_PREFIX,
    OBJECT_PREFIX,
    TRANSITION_PREFIX,
    checkpoint_tag,
    instance_tag,
    is_checkpoint_tag,
    is_instance_tag,
    is_object_tag,
    is_transition_tag,
    object_tag,
    tag_instance,
    tag_key,
    transition_tag,
)

__all__ = [
    "CHECKPOINT_PREFIX",
    "GLOBAL_SCOPE",
    "INSTANCE_PREFIX",
    "OBJECT_PREFIX",
    "TRANSITION_PREFIX",
    "checkpoint_tag",
    "instance_tag",
    "is_checkpoint_tag",
    "is_instance_tag",
    "is_object_tag",
    "is_transition_tag",
    "object_tag",
    "tag_instance",
    "tag_key",
    "transition_tag",
]
