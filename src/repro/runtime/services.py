"""Service bindings between protocols and substrates.

Protocols never touch the shared log or the store directly; they go
through :class:`InstanceServices`, which

* applies the operation to the in-memory substrate,
* charges a calibrated latency sample to the invocation's cost trace
  (so direct mode reports realistic per-request latency and DES mode can
  convert the trace into simulated time),
* exposes crash checkpoints before and after every externally visible
  effect, which the failure injector uses to re-execute the SSF from any
  intermediate state,
* routes every substrate call through the resilience layer
  (:mod:`repro.faults`): seeded infrastructure faults (transient errors,
  timeouts, gray-failure latency inflation) are injected per operation,
  absorbed by bounded retries with exponential backoff — all charged to
  the cost trace, so fault amplification is visible in latency plots —
  and, when a service browns out, a circuit breaker enables degraded
  modes (cache-served log reads, dropped background appends), and
* counts operations per kind for the logging-overhead experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..config import SystemConfig
from ..errors import (
    FencedEpochError,
    ReproError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    StorageUnavailableError,
)
from ..faults import (
    BreakerState,
    CircuitBreaker,
    FAULT_GRAY,
    FAULT_TIMEOUT,
    FaultInjector,
    RetryPolicy,
    StorageFaultInjector,
)
from ..observe import CAT_SERVICE, MetricsRegistry, Span, Tracer
from ..sharedlog import LogRecord, RecordCache
from ..simulation.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    NormalDrawBatch,
)
from ..simulation.metrics import LatencyRecorder
from ..simulation.rng import RngRegistry
from ..storageplane import StoragePlane, build_storage_plane


class Cost:
    """Cost-kind labels charged by service calls."""

    LOG_APPEND = "log_append"
    #: Write-intent records are overlapped with the DB write (Section 4.3
    #: notes write logging "can be overlapped with execution"); only a
    #: fraction of the append round trip lands on the critical path.
    LOG_APPEND_OVERLAPPED = "log_append_overlapped"
    #: Control records (init / invoke checkpoints): replicated fully in
    #: the background; only the sequencer round trip is latency-visible.
    LOG_APPEND_CONTROL = "log_append_control"
    #: Fully asynchronous background appends (Section 7's opportunistic
    #: read checkpoints): zero critical-path latency.
    LOG_APPEND_BACKGROUND = "log_append_background"
    LOG_READ = "log_read"
    DB_READ = "db_read"
    DB_READ_VERSION = "db_read_version"
    DB_WRITE = "db_write"
    DB_WRITE_VERSION = "db_write_version"
    DB_COND_WRITE = "db_cond_write"
    INVOKE_OVERHEAD = "invoke_overhead"
    COMPUTE = "compute"

    #: Resilience-layer charges (no latency model; amounts come from the
    #: retry policy).  They make fault amplification visible in traces.
    RETRY_BACKOFF = "retry_backoff"
    SERVICE_ERROR = "service_error"
    SERVICE_TIMEOUT = "service_timeout"
    #: A fenced append's fix: one flat leader-rediscovery round trip
    #: (refresh the cached metalog epoch), instead of backoff.
    LEADER_REDISCOVERY = "leader_rediscovery"

    ALL = (
        LOG_APPEND,
        LOG_APPEND_OVERLAPPED,
        LOG_APPEND_CONTROL,
        LOG_APPEND_BACKGROUND,
        LOG_READ,
        DB_READ,
        DB_READ_VERSION,
        DB_WRITE,
        DB_WRITE_VERSION,
        DB_COND_WRITE,
        INVOKE_OVERHEAD,
        COMPUTE,
    )

    #: Kinds that represent a logging operation (for log-overhead counts).
    LOGGING_KINDS = frozenset(
        {LOG_APPEND, LOG_APPEND_OVERLAPPED, LOG_APPEND_CONTROL,
         LOG_APPEND_BACKGROUND}
    )

    #: Charges produced by the fault/retry machinery rather than by a
    #: successful substrate round trip.
    RESILIENCE_KINDS = frozenset(
        {RETRY_BACKOFF, SERVICE_ERROR, SERVICE_TIMEOUT,
         LEADER_REDISCOVERY}
    )

    #: Kinds that hit the external store (for per-partition queueing).
    STORE_KINDS = frozenset(
        {DB_READ, DB_READ_VERSION, DB_WRITE, DB_WRITE_VERSION,
         DB_COND_WRITE}
    )

    #: Kinds that mutate their component — what a severed metalog↔shard
    #: link blocks (reads pass: any live replica can serve them).
    WRITE_KINDS = frozenset(
        {LOG_APPEND, LOG_APPEND_OVERLAPPED, LOG_APPEND_CONTROL,
         LOG_APPEND_BACKGROUND, DB_WRITE, DB_WRITE_VERSION,
         DB_COND_WRITE}
    )


class LatencyProvider:
    """Maps cost kinds to calibrated latency distributions."""

    def __init__(self, config: SystemConfig, cache: RecordCache):
        lat = config.latency
        self._cache = cache
        db_read = LogNormalLatency(lat.db_read_median_ms, lat.db_read_p99_ms)
        db_write = LogNormalLatency(
            lat.db_write_median_ms, lat.db_write_p99_ms
        )
        log_append = LogNormalLatency(
            lat.log_append_median_ms, lat.log_append_p99_ms
        )
        self._models: Dict[str, LatencyModel] = {
            Cost.LOG_APPEND: log_append,
            Cost.LOG_APPEND_OVERLAPPED: log_append.scaled(
                lat.overlapped_log_factor
            ),
            Cost.LOG_APPEND_CONTROL: log_append.scaled(
                lat.control_log_factor
            ),
            Cost.LOG_APPEND_BACKGROUND: ConstantLatency(0.0),
            Cost.DB_READ: db_read,
            Cost.DB_READ_VERSION: db_read.scaled(lat.multiversion_read_factor),
            Cost.DB_WRITE: db_write,
            Cost.DB_WRITE_VERSION: db_write.scaled(
                lat.multiversion_write_factor
            ),
            Cost.DB_COND_WRITE: db_write.scaled(lat.conditional_write_factor),
            Cost.INVOKE_OVERHEAD: LogNormalLatency(
                lat.invoke_overhead_median_ms, lat.invoke_overhead_p99_ms
            ),
            Cost.COMPUTE: ConstantLatency(lat.function_compute_ms),
        }
        self._log_read_hit = LogNormalLatency(
            lat.log_read_cached_median_ms, lat.log_read_cached_p99_ms
        )
        self._log_read_miss = LogNormalLatency(
            lat.log_read_miss_median_ms, lat.log_read_miss_p99_ms
        )

    def sample(self, kind: str, rng: np.random.Generator) -> float:
        return self._models[kind].sample(rng)

    def sample_log_read(
        self, seqnum: Optional[int], rng: np.random.Generator,
        shard: int = 0,
    ) -> float:
        """Log reads hit the function-node cache or pay a storage trip."""
        if seqnum is None or self._cache.lookup(seqnum, shard):
            return self._log_read_hit.sample(rng)
        return self._log_read_miss.sample(rng)

    def mean(self, kind: str) -> float:
        return self._models[kind].mean()

    def samplers(self) -> Dict[str, Callable]:
        """Compiled per-kind samplers (hot path; see ``compiled()``)."""
        return {k: model.compiled() for k, model in self._models.items()}

    def log_read_samplers(self):
        """Compiled (cache-hit, cache-miss) log-read samplers."""
        return self._log_read_hit.compiled(), self._log_read_miss.compiled()

    def batched_samplers(self, rng, chunk: Optional[int] = None):
        """Zero-arg samplers drawing from one shared per-stream batch.

        Returns ``(samplers_by_kind, log_read_hit, log_read_miss)`` with
        every closure fed by a single :class:`NormalDrawBatch` over
        ``rng`` — refills consume the stream exactly as the scalar
        draws would, so seeded results are unchanged — or ``None`` when
        any model on the stream consumes something other than 0-or-1
        standard normals per draw (then nothing on the stream may be
        batched, and the caller keeps the scalar path).
        """
        batch = (NormalDrawBatch(rng) if chunk is None
                 else NormalDrawBatch(rng, chunk))
        samplers: Dict[str, Callable] = {}
        for kind, model in self._models.items():
            sampler = model.batched_sampler(batch)
            if sampler is None:
                return None
            samplers[kind] = sampler
        hit = self._log_read_hit.batched_sampler(batch)
        miss = self._log_read_miss.batched_sampler(batch)
        if hit is None or miss is None:
            return None
        return samplers, hit, miss


#: A placement label carried by a cost-trace entry: ``("shard", i)``
#: for log operations and ``("partition", i)`` for store operations, or
#: ``None`` when the plane is unlabelled (single-node topology).
Placement = Optional[tuple]


class CostTrace:
    """Latency charges accumulated by one protocol-level operation.

    Entries are ``(kind, latency_ms, placement)`` triples; the DES
    drains them to advance simulated time and, when contention is
    modelled, queues each charge at the station its placement names.
    """

    __slots__ = ("entries", "_total_ms")

    def __init__(self) -> None:
        self.entries: List[Any] = []
        #: Running sum, so ``total_ms`` is O(1) — the tracer's virtual
        #: clock reads it on every span boundary.
        self._total_ms = 0.0

    def charge(self, kind: str, latency_ms: float,
               placement: Placement = None) -> None:
        self.entries.append((kind, latency_ms, placement))
        self._total_ms += latency_ms

    def total_ms(self) -> float:
        return self._total_ms

    def drain(self) -> float:
        """Return the accumulated latency and reset the trace."""
        total = self._total_ms
        self.entries.clear()
        self._total_ms = 0.0
        return total


#: A crash checkpoint callback: receives a label like ``"log_append:pre"``
#: and may raise :class:`~repro.errors.CrashError` to kill the instance.
FaultHook = Callable[[str], None]


class ServiceBackend:
    """Platform-wide substrate bundle shared by all invocations."""

    def __init__(self, config: SystemConfig,
                 rng: Optional[RngRegistry] = None,
                 plane: Optional[StoragePlane] = None):
        self.config = config.validate()
        self.rng = rng if rng is not None else RngRegistry(config.seed)
        #: The pluggable storage plane (single-node, sharded, or a
        #: registered custom backend); ``log``/``kv``/``mv`` are its
        #: substrates, kept as attributes for the many existing callers.
        #: An injected ``plane`` bypasses the registry — the live
        #: compute plane's workers hand in an RPC proxy to the real
        #: plane served from the gateway process.
        self.plane: StoragePlane = (
            plane if plane is not None else build_storage_plane(config)
        )
        self.log = self.plane.log
        self.kv = self.plane.kv
        self.mv = self.plane.mv
        self.cache = RecordCache()
        self.latency = LatencyProvider(config, self.cache)
        #: Central labelled metrics registry; every component below
        #: (and the DES platform on top) registers here, and
        #: ``RunResult.metrics`` is its snapshot.
        self.metrics = MetricsRegistry()
        self.counters = self.metrics.counters("ops")
        #: Per-kind latency samples (successful, faulted, and degraded
        #: charges alike), so experiments can report e.g. log-read p99
        #: under brown-out without instrumenting every call site.
        #: Registry-backed: each recorder is ``op_latency{kind=...}``.
        self.op_latency: Dict[str, LatencyRecorder] = {}
        #: Placement-labelled recorders, nested by kind so the hot
        #: ``_note`` path needs no per-call tuple key.
        self._op_latency_labelled: Dict[
            str, Dict[Placement, LatencyRecorder]
        ] = {}
        #: Fused note channels: ``(kind, placement)`` → tuple of
        #: sample-list ``append`` bound methods.  Built lazily on a
        #: channel's first charge; thereafter ``_note`` is one dict hit
        #: plus the appends (the recorders themselves stay registered in
        #: ``op_latency`` / ``_op_latency_labelled`` for reporting).
        self._note_channels: Dict[Any, tuple] = {}
        #: Attach a :class:`repro.observe.Tracer` to record span trees;
        #: ``None`` (the default) disables tracing with zero overhead.
        self.tracer: Optional[Tracer] = None
        #: Infrastructure-fault plan and resilience policy (platform-wide
        #: state: breakers outlive individual invocations).
        self.faults = FaultInjector(
            config.faults, self.rng.stream("infra-faults")
        )
        self.retry_policy = RetryPolicy.from_config(config.resilience)
        self.breakers: Dict[str, CircuitBreaker] = {
            service: CircuitBreaker(
                service,
                failure_threshold=config.resilience
                .breaker_failure_threshold,
                cooldown_ops=config.resilience.breaker_cooldown_ops,
            )
            for service in ("log", "store")
        }
        self._latency_rng = self.rng.stream("service-latency")
        self._uuid_rng = self.rng.stream("uuid")
        self._jitter_rng = self.rng.stream("retry-jitter")
        #: Compiled per-kind samplers: the charge path draws through
        #: zero-arg closures instead of walking model objects per op.
        #: When every model on the stream is batchable they share one
        #: NormalDrawBatch (vectorised refills, same draw sequence);
        #: otherwise each closure falls back to a scalar draw.  Both
        #: forms consume the shared latency stream exactly as the
        #: models' ``sample`` would.
        batched = self.latency.batched_samplers(self._latency_rng)
        if batched is not None:
            self._samplers, self._lr_hit, self._lr_miss = batched
        else:
            rng = self._latency_rng
            self._samplers = {
                kind: (lambda f=f: f(rng))
                for kind, f in self.latency.samplers().items()
            }
            hit, miss = self.latency.log_read_samplers()
            self._lr_hit = lambda: hit(rng)
            self._lr_miss = lambda: miss(rng)
        #: Placement labels are pure functions of the routing key (the
        #: router memoizes routes; placement tuples memoize the tuple
        #: allocation too, one per key instead of one per op).
        self._plane_labelled = self.plane.labelled
        self._log_placements: Dict[str, tuple] = {}
        self._kv_placements: Dict[str, tuple] = {}
        #: Storage-side chaos: per-component injection + link-partition
        #: schedule (None unless armed — chaos-free builds carry zero
        #: machinery), and the worker's cached metalog-epoch view that
        #: fenced appends invalidate.
        self.storage_faults: Optional[StorageFaultInjector] = None
        self.epoch_view = None
        chaos = config.storage_chaos
        if chaos.enabled:
            self.storage_faults = StorageFaultInjector(
                chaos, config.seed,
                self.plane.num_log_shards, self.plane.num_kv_partitions,
            )
            if hasattr(self.log, "metalog"):
                from ..storageplane.fencing import EpochView
                self.epoch_view = EpochView(self.log.metalog)
        self._register_component_metrics()

    def _register_component_metrics(self) -> None:
        """Expose substrate state in the registry via snapshot probes."""
        for service, breaker in self.breakers.items():
            self.metrics.probe(
                "circuit_breaker",
                lambda b=breaker: {"state": b.state, "trips": b.trips},
                service=service,
            )
        self.metrics.probe(
            "record_cache",
            lambda: {
                "records": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_ratio": self.cache.hit_ratio,
            },
        )
        self.metrics.probe(
            "shared_log",
            lambda: {
                "bytes": self.log.storage_bytes(),
                "tail_seqnum": self.log.tail_seqnum,
            },
        )
        self.metrics.probe(
            "kv_store", lambda: {"bytes": self.kv.storage_bytes()}
        )
        self.metrics.probe("storage_plane", self.plane.describe)
        # Sequencing strategy stats (flushes, batch sizes, leased/
        # invalidated blocks).  Only registered when a non-default
        # strategy is selected so monolith snapshots stay byte-stable.
        # The isinstance check matters: a worker-side RPC proxy log
        # synthesizes *callables* for unknown attributes, and the stats
        # belong to the gateway that owns the real sequencer anyway.
        from ..storageplane.sequencer import Sequencer

        sequencer = getattr(self.log, "sequencer", None)
        if isinstance(sequencer, Sequencer) and sequencer.name != "monolith":
            self.metrics.probe(
                "sequencer_batch_size", sequencer.stats,
                strategy=sequencer.name,
            )
        self.metrics.probe(
            "fault_injector",
            lambda: {
                "enabled": self.faults.enabled,
                "injected": dict(self.faults.injected),
            },
        )
        if self.storage_faults is not None:
            self.metrics.probe(
                "storage_fault_injector",
                lambda: {
                    "enabled": self.storage_faults.enabled,
                    "injected": dict(self.storage_faults.injected),
                    "link_windows": len(self.storage_faults.schedule),
                    "epoch": (self.epoch_view.epoch
                              if self.epoch_view is not None else None),
                },
            )

    # -- helpers used by InstanceServices -------------------------------

    def charge(self, kind: str, trace: CostTrace, factor: float = 1.0,
               placement: Placement = None) -> float:
        ms = self._samplers[kind]() * factor
        # Inlined ``CostTrace.charge`` (same module): this is the single
        # hottest accounting call in the DES, so skip the dispatch.
        trace.entries.append((kind, ms, placement))
        trace._total_ms += ms
        counts = self.counters._counts
        counts[kind] = counts.get(kind, 0) + 1
        self._note(kind, ms, placement)
        return ms

    def charge_log_read(self, seqnum: Optional[int], trace: CostTrace,
                        factor: float = 1.0,
                        placement: Placement = None) -> float:
        shard = placement[1] if placement is not None else 0
        # Inlined ``LatencyProvider.sample_log_read``: same cache lookup
        # (hit/miss stats included), same stream consumption.
        if seqnum is None or self.cache.lookup(seqnum, shard):
            ms = self._lr_hit() * factor
        else:
            ms = self._lr_miss() * factor
        trace.entries.append((Cost.LOG_READ, ms, placement))
        trace._total_ms += ms
        counts = self.counters._counts
        counts[Cost.LOG_READ] = counts.get(Cost.LOG_READ, 0) + 1
        self._note(Cost.LOG_READ, ms, placement)
        return ms

    def charge_raw(self, kind: str, ms: float, trace: CostTrace) -> float:
        """Charge a policy-determined amount (backoff, timeout burn)."""
        trace.charge(kind, ms)
        self.counters.add(kind)
        self._note(kind, ms, None)
        return ms

    def _note(self, kind: str, ms: float, placement: Placement) -> None:
        """Record into ``op_latency{kind=}`` — plus the per-shard /
        per-partition labelled recorder when the plane routes the op."""
        if ms.__class__ is not float:
            ms = float(ms)
        # Charges are non-negative floats by construction, so append to
        # each recorder's sample list directly (``record()`` re-checks
        # and re-coerces on every call).
        channel = self._note_channels.get((kind, placement))
        if channel is None:
            channel = self._build_note_channel(kind, placement)
        for append in channel:
            append(ms)

    def _build_note_channel(self, kind: str, placement: Placement) -> tuple:
        """Resolve (and register) the recorders behind one note channel."""
        recorder = self.op_latency.get(kind)
        if recorder is None:
            recorder = self.op_latency[kind] = self.metrics.latency(
                "op_latency", kind=kind
            )
        if placement is None:
            channel = (recorder._samples.append,)
        else:
            by_placement = self._op_latency_labelled.get(kind)
            if by_placement is None:
                by_placement = self._op_latency_labelled[kind] = {}
            labelled = by_placement.get(placement)
            if labelled is None:
                labelled = by_placement[placement] = self.metrics.latency(
                    "op_latency", kind=kind,
                    **{placement[0]: placement[1]},
                )
            channel = (recorder._samples.append, labelled._samples.append)
        self._note_channels[(kind, placement)] = channel
        return channel

    def log_placement(self, tag: str) -> Placement:
        """Placement label of a log operation on ``tag`` (None at 1×1)."""
        if not self._plane_labelled:
            return None
        placement = self._log_placements.get(tag)
        if placement is None:
            placement = self._log_placements[tag] = (
                "shard", self.plane.log_shard_of(tag)
            )
        return placement

    def kv_placement(self, key: str) -> Placement:
        """Placement label of a store operation on ``key`` (None at 1×1)."""
        if not self._plane_labelled:
            return None
        placement = self._kv_placements.get(key)
        if placement is None:
            placement = self._kv_placements[key] = (
                "partition", self.plane.kv_partition_of(key)
            )
        return placement

    def breaker_trips(self) -> int:
        return sum(b.trips for b in self.breakers.values())

    def drop_node_cache(self, node_id: int, num_nodes: int) -> int:
        """A crashed function node loses its slice of the record cache.

        Called by the platform's node-crash event; replays that land on
        survivors then miss these records and pay the storage round trip
        (the recovery-cost asymmetry of Section 7 in wall-clock form).
        """
        evicted = self.cache.evict_partition(node_id, num_nodes)
        if evicted:
            self.counters.add("node_cache_records_lost", evicted)
        return evicted

    def drop_shard_cache(self, shard: int) -> int:
        """A crashed/promoted log shard invalidates its cached records.

        Called by the storage-chaos controller on shard-replica failover
        and R=1 shard loss: whatever the node caches hold for the shard
        may predate the new serving replica's epoch, so it must never be
        served again (the stale-cache regression test pins this).
        """
        evicted = self.cache.evict_shard(shard)
        if evicted:
            self.counters.add("shard_cache_records_lost", evicted)
        return evicted

    def refresh_log_epoch(self) -> int:
        """Leader rediscovery: re-read the metalog epoch after a fence."""
        if self.epoch_view is None:
            raise StorageUnavailableError(
                "no epoch view to refresh (storage chaos disabled)",
                service="log", op="rediscover",
            )
        return self.epoch_view.refresh()

    def random_hex(self, bits: int = 64) -> str:
        if bits > 63:
            high = int(self._uuid_rng.integers(0, 1 << (bits - 32)))
            low = int(self._uuid_rng.integers(0, 1 << 32))
            value = (high << 32) | low
        else:
            value = int(self._uuid_rng.integers(0, 1 << bits))
        return f"{value:0{bits // 4}x}"

    @property
    def value_bytes(self) -> int:
        return self.config.storage.value_bytes


class InstanceServices:
    """Per-attempt facade over the backend, with crash checkpoints.

    One is created for every execution attempt of an SSF instance; the
    cost trace and fault hook are attempt-local, while all state lives in
    the shared backend.
    """

    def __init__(
        self,
        backend: ServiceBackend,
        fault_hook: Optional[FaultHook] = None,
        trace: Optional[CostTrace] = None,
    ):
        self.backend = backend
        self.trace = trace if trace is not None else CostTrace()
        self._fault_hook = fault_hook
        #: Tracing context: the attempt span service-call spans nest
        #: under, and the virtual-time base the cost trace offsets.
        #: ``None`` span ⇒ tracing disabled for this attempt (the
        #: default): every instrumentation site below is a single
        #: ``is None`` check and allocates nothing.
        self._span: Optional[Span] = None
        self.span_base_ms = 0.0
        #: Ultra-fast call sites: with faults disabled all breakers stay
        #: CLOSED for the backend's whole lifetime (transitions only
        #: happen inside ``_service_call``'s resilience branch, which is
        #: unreachable then), so ops can skip the closure allocation and
        #: dispatch of ``_service_call`` entirely.  Attaching a span
        #: clears the flag — traced attempts take the instrumented path.
        breakers = backend.breakers
        self._fast = (
            not backend.faults.enabled
            and backend.storage_faults is None
            and breakers["log"].state == BreakerState.CLOSED
            and breakers["store"].state == BreakerState.CLOSED
        )

    # -- tracing ----------------------------------------------------------

    def attach_span(self, span: Span, base_ms: float) -> None:
        """Nest this attempt's service-call spans under ``span``;
        ``base_ms`` anchors the cost-trace virtual clock."""
        self._span = span
        self.span_base_ms = base_ms
        self._fast = False

    @property
    def span(self) -> Optional[Span]:
        return self._span

    def now_ms(self) -> float:
        """Attempt-virtual time: base plus charged latency so far."""
        return self.span_base_ms + self.trace.total_ms()

    def _breaker_outcome(self, breaker: CircuitBreaker, failed: bool,
                         op_span: Optional[Span]) -> None:
        """Record a breaker outcome, annotating state transitions."""
        if op_span is None:
            (breaker.record_failure if failed
             else breaker.record_success)()
            return
        before = breaker.state
        (breaker.record_failure if failed else breaker.record_success)()
        if breaker.state != before:
            op_span.annotate(
                f"breaker:{breaker.state}", self.now_ms(),
                service=breaker.name, trips=breaker.trips,
            )

    # -- crash checkpoints ----------------------------------------------

    def checkpoint(self, label: str) -> None:
        if self._fault_hook is not None:
            self._fault_hook(label)

    # -- resilient substrate calls ----------------------------------------

    def _service_call(
        self,
        service: str,
        kind: str,
        do: Callable[[], Any],
        charge: Callable[[Any, float], None],
        charge_error: Optional[Callable[[float], None]] = None,
        droppable: bool = False,
        degraded: Optional[Callable[[], Any]] = None,
        placement: Placement = None,
    ) -> Any:
        """Run one substrate call under the resilience policy.

        ``do`` performs the substrate effect and returns its result; it
        only runs on healthy or gray draws, so injected faults are
        request omissions and can never duplicate an effect.  ``charge``
        receives ``(result, latency_factor)`` and charges the success
        latency.  ``charge_error`` charges a substrate *exception* path
        (the service responded; the round trip was paid) before the
        exception propagates.  ``droppable`` marks best-effort work
        (opportunistic background appends) that is dropped — returning
        ``None`` — instead of retried.  ``degraded`` is the graceful-
        degradation path tried while the service's breaker is open; it
        returns ``(served, result)``.
        """
        backend = self.backend
        breaker = backend.breakers[service]
        op_span = None
        if self._span is not None:
            attrs = {"service": service}
            if placement is not None:
                attrs[placement[0]] = placement[1]
            op_span = self._span.child(
                kind, CAT_SERVICE, self.now_ms(), **attrs
            )
        if (not backend.faults.enabled
                and backend.storage_faults is None
                and breaker.state == BreakerState.CLOSED):
            # Failure-free fast path: identical to the pre-fault code.
            try:
                result = do()
            except ReproError:
                # e.g. a lost conditional append: the round trip was
                # still paid.
                if charge_error is not None:
                    charge_error(1.0)
                if op_span is not None:
                    now = self.now_ms()
                    op_span.annotate("substrate-error", now)
                    op_span.finish(now)
                raise
            charge(result, 1.0)
            if op_span is not None:
                op_span.finish(self.now_ms())
            return result

        resilience = backend.config.resilience
        if breaker.consult():
            if droppable and resilience.drop_background_appends:
                backend.counters.add("background_appends_dropped")
                if op_span is not None:
                    now = self.now_ms()
                    op_span.annotate("dropped-by-breaker", now)
                    op_span.finish(now)
                return None
            if degraded is not None and resilience.degraded_log_reads:
                served, result = degraded()
                if served:
                    backend.counters.add("degraded_log_reads")
                    if op_span is not None:
                        now = self.now_ms()
                        op_span.annotate("degraded-read", now)
                        op_span.finish(now)
                    return result

        policy = backend.retry_policy
        storage_faults = backend.storage_faults
        is_write = kind in Cost.WRITE_KINDS
        spent_ms = 0.0
        attempt = 0
        rediscoveries = 0
        while True:
            attempt += 1
            decision = backend.faults.draw(service, kind)
            if (decision.kind is None and storage_faults is not None):
                # Storage-side injection: the component this op routes
                # to (shard/partition rates + the link schedule) gets
                # its own draw, from its own stream.
                decision = storage_faults.draw_placement(
                    placement, self.now_ms(), is_write
                )
            if op_span is not None and decision.kind is not None:
                op_span.annotate(
                    f"fault:{decision.kind}", self.now_ms(),
                    attempt=attempt,
                )
            fault_kind = decision.kind if decision.omitted else None
            if fault_kind is None:
                try:
                    result = do()
                except FencedEpochError:
                    # A failover fenced our stale epoch — the append
                    # never applied.  The fence names its own fix:
                    # refresh the cached leader epoch at a flat
                    # rediscovery cost and retry immediately (no
                    # backoff, no attempt consumed), bounded against a
                    # flapping leader.
                    self._breaker_outcome(breaker, False, op_span)
                    rediscoveries += 1
                    backend.charge_raw(
                        Cost.LEADER_REDISCOVERY, policy.rediscovery_ms,
                        self.trace,
                    )
                    backend.counters.add("epoch_rediscoveries")
                    spent_ms += policy.rediscovery_ms
                    if op_span is not None:
                        op_span.annotate(
                            "fenced-epoch", self.now_ms(),
                            rediscoveries=rediscoveries,
                        )
                    if rediscoveries > policy.max_rediscoveries:
                        if op_span is not None:
                            now = self.now_ms()
                            op_span.annotate("leader-flapping", now)
                            op_span.finish(now)
                        raise ServiceUnavailableError(
                            f"{service} {kind} fenced "
                            f"{rediscoveries} times: leader flapping",
                            service=service, op=kind,
                        )
                    try:
                        backend.refresh_log_epoch()
                    except StorageUnavailableError:
                        # No leader yet: ride the ordinary retry loop.
                        fault_kind = FAULT_TIMEOUT
                    else:
                        attempt -= 1
                        continue
                except StorageUnavailableError:
                    # A storage component is down (crashed sequencer,
                    # quorum-less shard, lost partition).  Rejected
                    # before any effect, so backoff-and-retry is
                    # duplicate-free; count it against this op's retry
                    # budget like an injected timeout.
                    backend.counters.add("storage_unavailable_ops")
                    fault_kind = FAULT_TIMEOUT
                except ReproError:
                    # The substrate responded (e.g. a lost conditional
                    # append): a service success, not a fault.
                    self._breaker_outcome(breaker, False, op_span)
                    if charge_error is not None:
                        charge_error(decision.latency_factor)
                    if op_span is not None:
                        now = self.now_ms()
                        op_span.annotate("substrate-error", now)
                        op_span.finish(now)
                    raise
                if fault_kind is None:
                    # Gray success: slow node.  Feed the brown-out
                    # detector but return the (inflated) result.
                    self._breaker_outcome(
                        breaker, decision.kind == FAULT_GRAY, op_span
                    )
                    charge(result, decision.latency_factor)
                    if op_span is not None:
                        op_span.finish(self.now_ms())
                    return result

            # Omission fault (injected, or the storage plane rejected
            # the request before effect): nothing applied.
            self._breaker_outcome(breaker, True, op_span)
            if droppable:
                backend.counters.add("background_appends_dropped")
                if op_span is not None:
                    now = self.now_ms()
                    op_span.annotate("dropped-under-fault", now)
                    op_span.finish(now)
                return None
            fault_ms = policy.fault_cost_ms(fault_kind)
            fault_label = (
                Cost.SERVICE_TIMEOUT if fault_kind == FAULT_TIMEOUT
                else Cost.SERVICE_ERROR
            )
            backend.charge_raw(fault_label, fault_ms, self.trace)
            spent_ms += fault_ms
            if spent_ms > policy.op_deadline_ms:
                if op_span is not None:
                    now = self.now_ms()
                    op_span.annotate(
                        "deadline-exceeded", now, attempts=attempt
                    )
                    op_span.finish(now)
                raise ServiceTimeoutError(
                    f"{service} {kind} blew its {policy.op_deadline_ms}ms "
                    f"deadline after {attempt} attempts",
                    service=service, op=kind,
                )
            if attempt >= policy.max_attempts:
                if op_span is not None:
                    now = self.now_ms()
                    op_span.annotate(
                        "retries-exhausted", now, attempts=attempt
                    )
                    op_span.finish(now)
                raise ServiceUnavailableError(
                    f"{service} {kind} failed all {attempt} attempts",
                    service=service, op=kind,
                )
            backoff_ms = policy.backoff_ms(attempt, backend._jitter_rng)
            backend.charge_raw(Cost.RETRY_BACKOFF, backoff_ms, self.trace)
            backend.counters.add("service_retries")
            spent_ms += backoff_ms
            if op_span is not None:
                op_span.annotate(
                    "retry", self.now_ms(), attempt=attempt,
                    backoff_ms=backoff_ms,
                )

    # -- log operations ---------------------------------------------------

    def log_append(
        self,
        tags: Sequence[str],
        data: Mapping[str, Any],
        payload_bytes: int = 0,
        synchronous: bool = True,
        control: bool = False,
        background: bool = False,
    ) -> int:
        self.checkpoint("log_append:pre")
        if background:
            kind = Cost.LOG_APPEND_BACKGROUND
        elif control:
            kind = Cost.LOG_APPEND_CONTROL
        else:
            kind = (Cost.LOG_APPEND if synchronous
                    else Cost.LOG_APPEND_OVERLAPPED)
        backend = self.backend
        placement = backend.log_placement(tags[0]) if tags else None
        shard = placement[1] if placement is not None else 0

        if self._fast:
            seqnum = backend.log.append(tags, data, payload_bytes)
            backend.cache.insert(seqnum, shard)
            backend.charge(kind, self.trace, placement=placement)
            self.checkpoint("log_append:post")
            return seqnum

        view = backend.epoch_view

        def do() -> int:
            # The epoch stamp is read per attempt, so a retry after
            # leader rediscovery carries the refreshed epoch.
            if view is not None:
                seqnum = backend.log.append(
                    tags, data, payload_bytes, epoch=view.epoch
                )
            else:
                seqnum = backend.log.append(tags, data, payload_bytes)
            backend.cache.insert(seqnum, shard)
            return seqnum

        seqnum = self._service_call(
            "log", kind, do,
            charge=lambda _r, f: backend.charge(
                kind, self.trace, f, placement=placement
            ),
            droppable=background,
            placement=placement,
        )
        self.checkpoint("log_append:post")
        if seqnum is None:
            # Best-effort append dropped under faults/brown-out; callers
            # of background appends ignore the seqnum by contract.
            return -1
        return seqnum

    def log_cond_append(
        self,
        tags: Sequence[str],
        data: Mapping[str, Any],
        cond_tag: str,
        cond_pos: int,
        payload_bytes: int = 0,
        synchronous: bool = True,
        control: bool = False,
    ) -> int:
        """Conditional append; raises :class:`ConditionalAppendError` with
        the winning record's seqnum when a peer instance got there first."""
        self.checkpoint("log_cond_append:pre")
        if control:
            kind = Cost.LOG_APPEND_CONTROL
        else:
            kind = (Cost.LOG_APPEND if synchronous
                    else Cost.LOG_APPEND_OVERLAPPED)
        backend = self.backend
        placement = backend.log_placement(tags[0]) if tags else None
        shard = placement[1] if placement is not None else 0

        if self._fast:
            # A lost race still pays for the round trip.
            try:
                seqnum = backend.log.cond_append(
                    tags, data, cond_tag, cond_pos, payload_bytes
                )
            except ReproError:
                backend.charge(kind, self.trace, placement=placement)
                raise
            backend.cache.insert(seqnum, shard)
            backend.charge(kind, self.trace, placement=placement)
            self.checkpoint("log_cond_append:post")
            return seqnum

        view = backend.epoch_view

        def do() -> int:
            if view is not None:
                seqnum = backend.log.cond_append(
                    tags, data, cond_tag, cond_pos, payload_bytes,
                    epoch=view.epoch,
                )
            else:
                seqnum = backend.log.cond_append(
                    tags, data, cond_tag, cond_pos, payload_bytes
                )
            backend.cache.insert(seqnum, shard)
            return seqnum

        # A lost race still pays for the round trip (charge_error).
        seqnum = self._service_call(
            "log", kind, do,
            charge=lambda _r, f: backend.charge(
                kind, self.trace, f, placement=placement
            ),
            charge_error=lambda f: backend.charge(
                kind, self.trace, f, placement=placement
            ),
            placement=placement,
        )
        self.checkpoint("log_cond_append:post")
        return seqnum

    def _read_from_cache(self, record: Optional[LogRecord],
                         placement: Placement = None):
        """Degraded mode: serve a log read node-locally when the record
        is resident in the function-node cache (log brown-out path)."""
        if record is not None and self.backend.cache.contains(record.seqnum):
            self.backend.charge_log_read(
                record.seqnum, self.trace, placement=placement
            )
            return True, record
        return False, None

    def log_read_prev(self, tag: str, max_seqnum: int) -> Optional[LogRecord]:
        self.checkpoint("log_read_prev:pre")
        backend = self.backend
        placement = backend.log_placement(tag)
        if self._fast:
            record = backend.log.read_prev(tag, max_seqnum)
            backend.charge_log_read(
                record.seqnum if record is not None else None,
                self.trace, placement=placement,
            )
            return record
        return self._service_call(
            "log", Cost.LOG_READ,
            lambda: self.backend.log.read_prev(tag, max_seqnum),
            charge=lambda r, f: self.backend.charge_log_read(
                r.seqnum if r is not None else None, self.trace, f,
                placement=placement,
            ),
            degraded=lambda: self._read_from_cache(
                self.backend.log.read_prev(tag, max_seqnum), placement
            ),
            placement=placement,
        )

    def log_read_next(self, tag: str, min_seqnum: int) -> Optional[LogRecord]:
        self.checkpoint("log_read_next:pre")
        backend = self.backend
        placement = backend.log_placement(tag)
        if self._fast:
            record = backend.log.read_next(tag, min_seqnum)
            backend.charge_log_read(
                record.seqnum if record is not None else None,
                self.trace, placement=placement,
            )
            return record
        return self._service_call(
            "log", Cost.LOG_READ,
            lambda: self.backend.log.read_next(tag, min_seqnum),
            charge=lambda r, f: self.backend.charge_log_read(
                r.seqnum if r is not None else None, self.trace, f,
                placement=placement,
            ),
            degraded=lambda: self._read_from_cache(
                self.backend.log.read_next(tag, min_seqnum), placement
            ),
            placement=placement,
        )

    def log_read_stream(self, tag: str) -> List[LogRecord]:
        """Fetch a whole sub-stream (``getStepLogs`` in the pseudocode)."""
        self.checkpoint("log_read_stream:pre")
        backend = self.backend
        placement = backend.log_placement(tag)
        if self._fast:
            records = backend.log.read_stream(tag)
            backend.charge_log_read(
                records[-1].seqnum if records else None,
                self.trace, placement=placement,
            )
            return records
        return self._service_call(
            "log", Cost.LOG_READ,
            lambda: self.backend.log.read_stream(tag),
            charge=lambda r, f: self.backend.charge_log_read(
                r[-1].seqnum if r else None, self.trace, f,
                placement=placement,
            ),
            placement=placement,
        )

    def log_record_at(self, tag: str, offset: int) -> LogRecord:
        """Fetch the record at a stream offset (post-conflict recovery)."""
        backend = self.backend
        placement = backend.log_placement(tag)
        if self._fast:
            record = backend.log._record_at_offset(tag, offset)
            backend.charge_log_read(
                record.seqnum, self.trace, placement=placement
            )
            return record
        return self._service_call(
            "log", Cost.LOG_READ,
            lambda: self.backend.log._record_at_offset(tag, offset),
            charge=lambda r, f: self.backend.charge_log_read(
                r.seqnum, self.trace, f, placement=placement
            ),
            placement=placement,
        )

    @property
    def log_tail(self) -> int:
        return self.backend.log.tail_seqnum

    # -- database operations ----------------------------------------------

    def _db_call(self, kind: str, do: Callable[[], Any], key: str) -> Any:
        placement = self.backend.kv_placement(key)
        return self._service_call(
            "store", kind, do,
            charge=lambda _r, f: self.backend.charge(
                kind, self.trace, f, placement=placement
            ),
            placement=placement,
        )

    def db_read(self, key: str, default: Any = None) -> Any:
        self.checkpoint("db_read:pre")
        backend = self.backend
        if self._fast:
            placement = backend.kv_placement(key)
            result = backend.kv.get_optional(key, default)
            backend.charge(Cost.DB_READ, self.trace, placement=placement)
            return result
        return self._db_call(
            Cost.DB_READ,
            lambda: backend.kv.get_optional(key, default),
            key,
        )

    def db_read_with_version(self, key: str) -> Any:
        self.checkpoint("db_read:pre")
        backend = self.backend
        if self._fast:
            placement = backend.kv_placement(key)
            result = backend.kv.get_with_version(key)
            backend.charge(Cost.DB_READ, self.trace, placement=placement)
            return result
        return self._db_call(
            Cost.DB_READ,
            lambda: backend.kv.get_with_version(key),
            key,
        )

    def db_read_version(self, key: str, version_number: str) -> Any:
        self.checkpoint("db_read_version:pre")
        backend = self.backend
        if self._fast:
            placement = backend.kv_placement(key)
            result = backend.mv.read_version(key, version_number)
            backend.charge(
                Cost.DB_READ_VERSION, self.trace, placement=placement
            )
            return result
        return self._db_call(
            Cost.DB_READ_VERSION,
            lambda: backend.mv.read_version(key, version_number),
            key,
        )

    def db_write(self, key: str, value: Any) -> None:
        self.checkpoint("db_write:pre")
        backend = self.backend
        if self._fast:
            placement = backend.kv_placement(key)
            backend.kv.put(key, value, backend.value_bytes)
            backend.charge(Cost.DB_WRITE, self.trace, placement=placement)
        else:
            self._db_call(
                Cost.DB_WRITE,
                lambda: backend.kv.put(key, value, backend.value_bytes),
                key,
            )
        self.checkpoint("db_write:post")

    def db_write_version(
        self, key: str, version_number: str, value: Any
    ) -> None:
        self.checkpoint("db_write_version:pre")
        backend = self.backend
        if self._fast:
            placement = backend.kv_placement(key)
            backend.mv.write_version(
                key, version_number, value, backend.value_bytes
            )
            backend.charge(
                Cost.DB_WRITE_VERSION, self.trace, placement=placement
            )
        else:
            self._db_call(
                Cost.DB_WRITE_VERSION,
                lambda: backend.mv.write_version(
                    key, version_number, value, backend.value_bytes
                ),
                key,
            )
        self.checkpoint("db_write_version:post")

    def db_cond_write(self, key: str, value: Any, version: Any) -> bool:
        """Conditional update: applies iff stored VERSION < ``version``."""
        self.checkpoint("db_cond_write:pre")
        backend = self.backend
        if self._fast:
            placement = backend.kv_placement(key)
            applied = backend.kv.conditional_put(
                key, value, version, backend.value_bytes
            )
            backend.charge(
                Cost.DB_COND_WRITE, self.trace, placement=placement
            )
        else:
            applied = self._db_call(
                Cost.DB_COND_WRITE,
                lambda: backend.kv.conditional_put(
                    key, value, version, backend.value_bytes
                ),
                key,
            )
        self.checkpoint("db_cond_write:post")
        return applied

    # -- misc ---------------------------------------------------------------

    def charge_invoke_overhead(self) -> None:
        self.backend.charge(Cost.INVOKE_OVERHEAD, self.trace)

    def charge_compute(self) -> None:
        self.backend.charge(Cost.COMPUTE, self.trace)

    def random_hex(self) -> str:
        return self.backend.random_hex()

    @property
    def meta_bytes(self) -> int:
        return self.backend.config.storage.meta_bytes

    @property
    def value_bytes(self) -> int:
        return self.backend.value_bytes
