"""Serverless runtime: invocation lifecycle, crash/retry, GC, switching."""

from .env import Env
from .failures import (
    BernoulliCrashes,
    CrashOnceAtEvery,
    CrashPolicy,
    NoCrashes,
    ScriptedCrashes,
)
from .gc import GarbageCollector, GCStats
from .local import Context, InvocationResult, LocalRuntime, Session
from .ops import ComputeOp, InvokeOp, Op, ReadOp, SyncOp, TxnOp, WriteOp
from .registry import FunctionRegistry, InvocationTracker
from .services import (
    Cost,
    CostTrace,
    InstanceServices,
    LatencyProvider,
    ServiceBackend,
)
from .switching import BEGIN, END, ProtocolRouter, SwitchManager
from .transactions import Transaction, TransactionAborted, run_transaction
from .tags import (
    GLOBAL_SCOPE,
    checkpoint_tag,
    instance_tag,
    is_checkpoint_tag,
    is_instance_tag,
    is_object_tag,
    is_transition_tag,
    object_tag,
    tag_instance,
    tag_key,
    transition_tag,
)

__all__ = [
    "BEGIN",
    "BernoulliCrashes",
    "ComputeOp",
    "Context",
    "Cost",
    "CostTrace",
    "CrashOnceAtEvery",
    "CrashPolicy",
    "END",
    "Env",
    "FunctionRegistry",
    "GCStats",
    "GLOBAL_SCOPE",
    "GarbageCollector",
    "InstanceServices",
    "InvocationResult",
    "InvocationTracker",
    "InvokeOp",
    "LatencyProvider",
    "LocalRuntime",
    "NoCrashes",
    "Op",
    "ProtocolRouter",
    "ReadOp",
    "ScriptedCrashes",
    "ServiceBackend",
    "Session",
    "SwitchManager",
    "SyncOp",
    "Transaction",
    "TxnOp",
    "TransactionAborted",
    "WriteOp",
    "run_transaction",
    "checkpoint_tag",
    "instance_tag",
    "is_checkpoint_tag",
    "is_instance_tag",
    "is_object_tag",
    "is_transition_tag",
    "object_tag",
    "tag_instance",
    "tag_key",
    "transition_tag",
]
