"""Garbage collection (Section 4.5).

The GC reclaims two kinds of state:

1. **Step logs of finished SSFs.**  Under Halfmoon-write the lifetime of a
   read-log record equals the lifetime of its SSF, so the entire instance
   stream is trimmed once the invocation completes.

2. **Write logs and object versions** (Halfmoon-read).  A version whose
   commit record has seqnum ``t`` is collectible only when (a) a newer
   record exists in the same object's write log and (b) every SSF whose
   initial cursorTS is below that newer record's seqnum has finished.  The
   scan tracks the frontier ``safe_ts`` satisfying (b) — the smallest
   initial cursorTS among running SSFs — marks, per object stream, the
   newest record below the frontier (the earliest version still
   observable), and deletes everything before the mark together with the
   matching object versions.

Note the asymmetry with condition (a): the marked record itself always
survives, so each object retains at least one readable version.

Node failures interact with condition (b) through the tracker's orphan
state: an SSF whose hosting node died stays *orphaned* (not finished)
until a survivor reclaims it, so ``safe_seqnum`` cannot advance past its
init cursorTS and the takeover replay finds every version it may read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import PartitionUnavailableError, StorageUnavailableError
from ..sharedlog import LogRecord
from .registry import InvocationTracker
from .services import ServiceBackend
from .tags import checkpoint_tag, instance_tag, is_object_tag, tag_key


@dataclass
class GCStats:
    scans: int = 0
    step_log_records_trimmed: int = 0
    write_log_records_trimmed: int = 0
    versions_deleted: int = 0
    last_safe_seqnum: int = 0
    #: Per-shard trim frontier after the latest scan, straight from the
    #: metalog (sharded planes only; empty on the single-node plane).
    #: Trims advance each shard's frontier independently — the
    #: regression tests pin that a trim on shard A never moves (or
    #: drops records behind) shard B's frontier.
    shard_frontiers: Dict[int, int] = field(default_factory=dict)
    #: Durable-KV bookkeeping (storage-chaos runs only): checkpoints
    #: taken and redo-journal entries truncated by them.  Journals stay
    #: bounded by the mutation rate between GC cycles.
    kv_checkpoints: int = 0
    kv_journal_truncated: int = 0

    def total_trimmed(self) -> int:
        return (
            self.step_log_records_trimmed + self.write_log_records_trimmed
        )


class GarbageCollector:
    """Periodically invoked GC function."""

    def __init__(self, backend: ServiceBackend, tracker: InvocationTracker):
        self.backend = backend
        self.tracker = tracker
        self.stats = GCStats()

    def collect(self) -> GCStats:
        """One full GC scan; returns cumulative statistics."""
        log = self.backend.log
        self.stats.scans += 1

        # -- step logs (and read checkpoints) of finished SSFs ----------
        for instance_id in self.tracker.drain_finished():
            trimmed = log.trim(instance_tag(instance_id), log.tail_seqnum)
            trimmed += log.trim(
                checkpoint_tag(instance_id), log.tail_seqnum
            )
            self.stats.step_log_records_trimmed += trimmed

        # -- write logs + object versions --------------------------------
        safe_ts = self.tracker.safe_seqnum(log_frontier=log.next_seqnum)
        self.stats.last_safe_seqnum = safe_ts
        for tag in log.stream_tags():
            if not is_object_tag(tag):
                continue
            try:
                records = log.read_stream(tag)
            except StorageUnavailableError:
                # The tag's shard is down mid-chaos; skip it this cycle
                # (conservative under-collection, retried next scan).
                continue
            marked = self._mark(records, safe_ts)
            if marked <= 0:
                continue
            key = tag_key(tag)
            try:
                for record in records[:marked]:
                    version = record.get("version")
                    if (version is not None
                            and self.backend.mv.delete_version(
                                key, version)):
                        self.stats.versions_deleted += 1
            except PartitionUnavailableError:
                # The object's KV partition is down mid-chaos; keep the
                # write log intact too so the retry next cycle still
                # finds every version it must delete.
                continue
            horizon = records[marked - 1].seqnum
            self.stats.write_log_records_trimmed += log.trim(tag, horizon)

        # Sharded planes: publish where each shard's reclamation horizon
        # now sits (the metalog owns the authoritative frontiers).
        frontiers = getattr(log, "shard_trim_frontiers", None)
        if frontiers is not None:
            self.stats.shard_frontiers = frontiers()

        # -- durable KV: checkpoint partitions, truncate redo journals --
        kv = self.backend.kv
        if getattr(kv, "durability", False):
            for index in range(kv.num_partitions):
                if index in kv.down_partitions():
                    continue  # its journal is what the rebuild needs
                self.stats.kv_journal_truncated += (
                    kv.checkpoint_partition(index)
                )
                self.stats.kv_checkpoints += 1
        return self.stats

    @staticmethod
    def _mark(records: List[LogRecord], safe_ts: int) -> int:
        """Index of the newest record with seqnum < ``safe_ts``.

        Records before this index are unobservable and collectible; the
        marked record is the earliest version a current or future SSF
        might still read."""
        marked = -1
        for i, record in enumerate(records):
            if record.seqnum < safe_ts:
                marked = i
            else:
                break
        return marked
