"""Per-invocation environment (the ``env`` of the paper's pseudocode).

Holds the SSF's identity and the protocol-relevant cursor state:

* ``instance_id`` — the common identifier shared by all concurrent
  instances of one SSF invocation (``instancesID`` in Section 4); peer
  instances deliberately share it so they read the same step log;
* ``cursor_ts``  — the function-local seqnum of the latest logged
  operation, advanced after every logging call;
* ``step``       — position in the SSF's deterministic sequence of logged
  operations; indexes the step log for replay;
* ``step_logs``  — the records retrieved from the step log at init,
  consulted to skip completed operations during re-execution;
* ``consecutive_writes`` — Halfmoon-write's tie-breaking counter for
  version tuples, incremented on writes and reset on reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..sharedlog import LogRecord


@dataclass
class Env:
    instance_id: str
    input: Any = None
    caller_id: Optional[str] = None
    func_name: str = ""

    step: int = 0
    cursor_ts: int = 0
    init_cursor_ts: int = 0
    consecutive_writes: int = 0
    step_logs: Dict[int, LogRecord] = field(default_factory=dict)

    #: Protocol chosen per object during a switching window (Section 4.7):
    #: the first access to a key pins the protocol for the invocation.
    object_protocols: Dict[str, str] = field(default_factory=dict)

    #: Ordinal of the next log-free read (Section 7 checkpointing) and
    #: the checkpointed results recovered for this attempt.
    read_index: int = 0
    read_checkpoints: Dict[int, Any] = field(default_factory=dict)

    #: Downstream invocations registered via ``ctx.trigger`` (Section
    #: 4.4's trigger edges): (callee_id, func_name, input) tuples fired
    #: by the runtime after this invocation completes.
    pending_triggers: list = field(default_factory=list)

    #: Key of the immediately preceding log-free write, if the last
    #: operation was one; used by the ordered-write extension to detect
    #: consecutive writes to different objects.
    last_write_key: str = ""

    #: Number of times this invocation has been (re-)executed; 1 = first run.
    attempt: int = 1

    def record_step(self, record: LogRecord) -> None:
        """Index a step-log record for replay lookups."""
        self.step_logs[record.step] = record

    def replay_record(self) -> Optional[LogRecord]:
        """The existing log record for the current step, if any."""
        return self.step_logs.get(self.step)

    def advance_cursor(self, seqnum: int) -> None:
        # The cursor is monotone: replayed records never move it backwards.
        if seqnum > self.cursor_ts:
            self.cursor_ts = seqnum

    def reset_for_replay(self) -> None:
        """Reset per-attempt execution state (identity is preserved)."""
        self.step = 0
        self.cursor_ts = 0
        self.init_cursor_ts = 0
        self.consecutive_writes = 0
        self.step_logs = {}
        self.object_protocols = {}
        self.last_write_key = ""
        self.read_index = 0
        self.read_checkpoints = {}
        self.pending_triggers = []
        self.attempt += 1
