"""Protocol routing and the pauseless switching mechanism (Section 4.7).

The **router** decides which protocol handles each read/write.  Outside a
switching window this is just the configured protocol.  During a window,
the first time an SSF touches an object it queries the *transition log*
with its initial cursorTS — if the governing record is an END the SSF uses
the record's target protocol, if it is a BEGIN the SSF must use the
transitional protocol (old-protocol peers may still be running, and mixing
log-free reads with log-free writes would violate Theorem 4.6).  The
choice is cached per invocation so every step replays consistently.

The **switch manager** drives the window: ``begin_switch`` appends a BEGIN
record and snapshots the SSFs that started before it; as those finish, the
window closes with an END record.  Nothing blocks — SSFs keep running
throughout, which is what "pauseless" means.

Closing the window also *seals* the external state so the target protocol
finds fresh data in its own versioning schema (Section 5.2 keeps both
schemas coexisting in one store):

* switching **to Halfmoon-read**: any object whose LATEST slot is fresher
  than its newest logged version gets that value installed as a new
  version with a write-log commit record;
* switching **to Halfmoon-write**: any object whose newest logged version
  is fresher than its LATEST slot gets the LATEST slot overwritten with
  that value and a version attribute above every outstanding tuple.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..config import ProtocolConfig
from ..errors import KeyMissingError, SwitchError
from ..protocols import (
    SWITCHABLE_PROTOCOLS,
    Protocol,
    build_protocol,
)
from ..sharedlog import LogRecord
from ..store.kv import GENESIS_VERSION
from .env import Env
from .registry import InvocationTracker
from .services import InstanceServices, ServiceBackend
from .tags import GLOBAL_SCOPE, object_tag, transition_tag

BEGIN = "BEGIN"
END = "END"


class ProtocolRouter:
    """Per-object protocol dispatch, switching-aware.

    Besides the global default (and the switching window), the router
    supports *static per-object assignments* (Section 4.6: "it is
    possible to use independent protocols per object", because the
    protocols differ only in read/write handling and share the SSF's
    cursorTS): a read-hot object can run Halfmoon-read while a write-hot
    neighbour runs Halfmoon-write within the same invocation.
    """

    def __init__(
        self,
        default_protocol: str,
        protocol_config: Optional[ProtocolConfig] = None,
        switch_manager: Optional["SwitchManager"] = None,
    ):
        self._config = (
            protocol_config if protocol_config is not None
            else ProtocolConfig()
        )
        self._protocols: Dict[str, Protocol] = {}
        self.default_name = default_protocol
        self.switch_manager = switch_manager
        self._object_overrides: Dict[str, str] = {}
        # Fail fast on unknown names.
        self.protocol(default_protocol)

    def protocol(self, name: str) -> Protocol:
        proto = self._protocols.get(name)
        if proto is None:
            proto = build_protocol(name, self._config)
            self._protocols[name] = proto
        return proto

    def control_protocol(self) -> Protocol:
        """Protocol used for init / invoke / sync — operations whose
        logging format is shared by every logged protocol."""
        return self.protocol(self.default_name)

    def assign_object(self, key: str, protocol_name: str) -> None:
        """Statically pin ``key`` to a protocol (Section 4.6).

        Must be configured before traffic touches the object: per-object
        assignments are not switchable at runtime (use the switch manager
        for that) and take precedence over the global default.
        """
        if protocol_name not in SWITCHABLE_PROTOCOLS:
            raise SwitchError(
                f"per-object assignment must be one of "
                f"{SWITCHABLE_PROTOCOLS}, got {protocol_name!r}"
            )
        self.protocol(protocol_name)
        self._object_overrides[key] = protocol_name

    def object_assignment(self, key: str) -> Optional[str]:
        return self._object_overrides.get(key)

    def protocol_for(self, svc: InstanceServices, env: Env,
                     key: str) -> Protocol:
        """Resolve the protocol governing ``key`` for this invocation."""
        override = self._object_overrides.get(key)
        if override is not None:
            return self.protocol(override)
        if self.switch_manager is None:
            return self.protocol(self.default_name)
        cached = env.object_protocols.get(key)
        if cached is None:
            cached = self.switch_manager.resolve(svc, env)
            env.object_protocols[key] = cached
        return self.protocol(cached)


class SwitchManager:
    """Drives BEGIN/END transitions on the (global-scope) transition log."""

    def __init__(
        self,
        backend: ServiceBackend,
        tracker: InvocationTracker,
        initial_protocol: str,
        scope: str = GLOBAL_SCOPE,
    ):
        if initial_protocol not in SWITCHABLE_PROTOCOLS:
            raise SwitchError(
                f"initial protocol must be switchable, got "
                f"{initial_protocol!r}"
            )
        self.backend = backend
        self.tracker = tracker
        self.scope = scope
        self.initial_protocol = initial_protocol
        self.current_protocol = initial_protocol
        self.in_progress = False
        self.target: Optional[str] = None
        self._pending: Set[str] = set()
        self.begin_seqnum: Optional[int] = None
        self.end_seqnum: Optional[int] = None
        self.switch_history: List[Dict] = []
        #: Optional wall/simulation clock used to stamp switch durations.
        self.now_fn: Optional[Callable[[], float]] = None
        self._begin_time: Optional[float] = None
        tracker.add_finish_listener(self._on_invocation_finished)

    # ------------------------------------------------------------------
    # SSF-side resolution
    # ------------------------------------------------------------------

    def resolve(self, svc: InstanceServices, env: Env) -> str:
        """Which protocol an SSF with ``env.init_cursor_ts`` must use.

        Reads the transition log at the initial cursorTS; both are
        persistent, so a re-executed SSF resolves identically — the
        switching is fault-tolerant."""
        record = svc.log_read_prev(
            transition_tag(self.scope), env.init_cursor_ts
        )
        if record is None:
            return self.initial_protocol
        if record["state"] == END:
            return record["target"]
        return "transitional"

    # ------------------------------------------------------------------
    # Runtime-side transitions
    # ------------------------------------------------------------------

    def begin_switch(self, target: str) -> int:
        if target not in SWITCHABLE_PROTOCOLS:
            raise SwitchError(f"cannot switch to {target!r}")
        if self.in_progress:
            raise SwitchError("a switch is already in progress")
        if target == self.current_protocol:
            raise SwitchError(f"already running {target!r}")
        seqnum = self.backend.log.append(
            [transition_tag(self.scope)],
            {"op": "transition", "state": BEGIN, "target": target},
        )
        self.in_progress = True
        self.target = target
        self.begin_seqnum = seqnum
        self.end_seqnum = None
        self._begin_time = self.now_fn() if self.now_fn else None
        # "Scan the init log records to find all running SSFs that start
        # before the switching."
        self._pending = self.tracker.running_started_before(seqnum)
        self._maybe_complete()
        return seqnum

    def _on_invocation_finished(self, instance_id: str) -> None:
        if self.in_progress and instance_id in self._pending:
            self._pending.discard(instance_id)
            self._maybe_complete()

    def _maybe_complete(self) -> None:
        if not self.in_progress or self._pending:
            return
        target = self.target
        assert target is not None
        self._seal_for(target)
        self.end_seqnum = self.backend.log.append(
            [transition_tag(self.scope)],
            {"op": "transition", "state": END, "target": target},
        )
        end_time = self.now_fn() if self.now_fn else None
        self.switch_history.append(
            {
                "from": self.current_protocol,
                "to": target,
                "begin_seqnum": self.begin_seqnum,
                "end_seqnum": self.end_seqnum,
                "begin_time_ms": self._begin_time,
                "end_time_ms": end_time,
                "delay_ms": (
                    end_time - self._begin_time
                    if end_time is not None and self._begin_time is not None
                    else None
                ),
            }
        )
        self.current_protocol = target
        self.in_progress = False
        self.target = None

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def _seal_for(self, target: str) -> None:
        kv = self.backend.kv
        log = self.backend.log
        mv = self.backend.mv
        for key in self._object_keys():
            newest = log.read_prev(object_tag(key), log.tail_seqnum)
            versioned_freshness = (
                newest.seqnum if newest is not None else -1
            )
            try:
                latest_value, latest_version = kv.get_with_version(key)
            except KeyMissingError:
                latest_version = None
                latest_value = None
            if latest_version is None:
                latest_freshness = -1
            elif latest_version == GENESIS_VERSION:
                latest_freshness = 0
            else:
                latest_freshness = int(latest_version[0])

            if target == "halfmoon-read":
                if latest_freshness > versioned_freshness:
                    version_number = f"seal.{log.next_seqnum}"
                    mv.write_version(
                        key, version_number, latest_value,
                        self.backend.value_bytes,
                    )
                    seal_tag = object_tag(key)
                    sealed_seqnum = log.append(
                        [seal_tag],
                        {
                            "op": "write",
                            "key": key,
                            "version": version_number,
                            "sealed": True,
                        },
                    )
                    placement = self.backend.log_placement(seal_tag)
                    self.backend.cache.insert(
                        sealed_seqnum,
                        placement[1] if placement is not None else 0,
                    )
            elif target == "halfmoon-write":
                if newest is not None and (
                    versioned_freshness > latest_freshness
                ):
                    value = mv.read_version(key, newest["version"])
                    kv.put(key, value, self.backend.value_bytes)
                    kv.set_version(key, (newest.seqnum, 0))

    def _object_keys(self) -> List[str]:
        from ..store.versioned import _SEPARATOR

        return [k for k in self.backend.kv.keys() if _SEPARATOR not in k]
