"""Operation descriptors yielded by generator-style SSFs.

An SSF body can be written two ways:

* **ctx style** (direct mode only): a plain callable ``fn(ctx, inp)`` that
  calls ``ctx.read`` / ``ctx.write`` / ``ctx.invoke`` synchronously;
* **op style** (both modes): a generator ``fn(inp)`` that ``yield``s the
  descriptors below and receives each operation's result back.  The DES
  driver needs this form so it can charge simulated time between
  operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ReadOp:
    key: str


@dataclass(frozen=True)
class WriteOp:
    key: str
    value: Any


@dataclass(frozen=True)
class InvokeOp:
    func_name: str
    input: Any


@dataclass(frozen=True)
class ComputeOp:
    """Pure local compute: consumes simulated time, touches no state."""

    duration_ms: float


@dataclass(frozen=True)
class TxnOp:
    """Run ``body(txn)`` as an OCC transaction (read/write set, logged
    commit decision); yields the body's return value."""

    body: Any
    max_attempts: int = 5


@dataclass(frozen=True)
class SyncOp:
    """Explicitly advance the cursorTS to the log tail (Section 4.4).

    Appends a sync record so that subsequent operations are linearizable
    with respect to everything that finished before this point.
    """


Op = Any  # union of the descriptor classes above
