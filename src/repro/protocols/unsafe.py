"""The unsafe baseline: no logging, no exactly-once guarantees.

Matches the paper's "Unsafe" system (Section 6): raw reads and writes
against the external state.  Retrying a crashed SSF under this protocol
can duplicate writes — the anomaly Halfmoon exists to prevent — and the
test suite demonstrates exactly that.  It serves as the lower bound on
latency and logging overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .base import Invoker, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.env import Env
    from ..runtime.services import InstanceServices


class UnsafeProtocol(Protocol):
    """Raw reads/writes; retry-based at-least-once, not exactly-once."""

    name = "unsafe"
    logs_reads = False
    logs_writes = False
    recovery_mode = "blind re-execution (at-least-once)"

    def init(self, svc: InstanceServices, env: Env) -> None:
        env.step = 0
        env.cursor_ts = 0
        env.init_cursor_ts = 0

    def read(self, svc: InstanceServices, env: Env, key: str) -> Any:
        return svc.db_read(key)

    def write(self, svc: InstanceServices, env: Env, key: str,
              value: Any) -> None:
        svc.db_write(key, value)

    def invoke(self, svc: InstanceServices, env: Env, func_name: str,
               input: Any, invoker: Invoker) -> Any:
        # A fresh callee id per attempt: re-execution spawns a brand-new
        # child, duplicating the child's effects.  That is the at-least-once
        # anomaly the logged protocols rule out.
        svc.charge_invoke_overhead()
        return invoker(svc.random_hex(), func_name, input, env)
