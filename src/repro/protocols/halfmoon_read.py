"""Halfmoon-read: the log-free read protocol (Figure 5, Section 4.1).

Only writes perform logging.  The external state is multi-versioned: each
write installs a new object version and *commits* it by appending a record
to the object's write log (tagged with both the instance id and the key).
A read is log-free: it seeks backward from the SSF's cursorTS in the
object's write log to find the visible version, then fetches exactly that
version from the store.  Read positions are deterministic functions of the
(persistent) cursorTS, so reads are idempotent without any record of their
own.

The commit record serves the dual purpose Section 4.1 describes: it
checkpoints the SSF's progress in the step log *and* is the write's commit
point in the object's write log.  Logging happens strictly after
``DBWrite`` so exposed versions always exist in the store.

In prototype-aligned mode (the default, matching Section 4.1) version
numbers are drawn at random and pinned by a write-intent record before the
store write, giving the same two-logs-per-write cost as Boki; with
``align_write_logging_with_boki=False`` the version number is derived
deterministically from ``(instance_id, step)`` and the intent record is
skipped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import KeyMissingError
from ..tags import checkpoint_tag, object_tag
from .base import LoggedProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.env import Env
    from ..runtime.services import InstanceServices


class HalfmoonReadProtocol(LoggedProtocol):
    """Log-free reads over a multi-versioned store (Figure 5)."""

    name = "halfmoon-read"
    logs_reads = False
    logs_writes = True
    public_write_log = True
    recovery_mode = "re-execute log-free reads"

    def init(self, svc: InstanceServices, env: Env) -> None:
        super().init(svc, env)
        env.read_index = 0
        env.read_checkpoints = {}
        # Section 7's recovery speed-up: a re-executed SSF recovers its
        # log-free reads from the (cached) checkpoint stream instead of
        # replaying version lookups.  Failure-free runs skip the fetch.
        if self.config.checkpoint_log_free_reads and env.attempt > 1:
            for record in svc.log_read_stream(
                checkpoint_tag(env.instance_id)
            ):
                env.read_checkpoints[record["idx"]] = record["data"]

    def read(self, svc: InstanceServices, env: Env, key: str) -> Any:
        """Log-free read: seek backward from the cursorTS (Figure 5)."""
        if not self.config.checkpoint_log_free_reads:
            return self._resolve_read(svc, env, key)
        index = env.read_index
        env.read_index += 1
        if index in env.read_checkpoints:
            return env.read_checkpoints[index]
        value = self._resolve_read(svc, env, key)
        # Fully asynchronous checkpoint: zero critical-path latency; the
        # record lives in its own stream so step-log offsets (and hence
        # logCondAppend conditions) are untouched.
        svc.log_append(
            [checkpoint_tag(env.instance_id)],
            {"op": "read-ckpt", "idx": index, "key": key, "data": value},
            payload_bytes=svc.value_bytes,
            background=True,
        )
        return value

    def _resolve_read(self, svc: InstanceServices, env: Env,
                      key: str) -> Any:
        write_log = svc.log_read_prev(object_tag(key), env.cursor_ts)
        if write_log is None:
            raise KeyMissingError(
                f"no write to {key!r} is visible at cursorTS "
                f"{env.cursor_ts}"
            )
        return svc.db_read_version(key, write_log["version"])

    def write(self, svc: InstanceServices, env: Env, key: str,
              value: Any) -> None:
        version = self._pin_version(svc, env, key)

        # Commit step: multi-version DBWrite, then the commit record.
        record = self._next_step(env)
        if record is not None:
            # The write already committed in a previous attempt.
            env.advance_cursor(record.seqnum)
            return
        svc.db_write_version(key, version, value)
        seqnum, _ = self._log_step(
            svc, env, extra_tags=(object_tag(key),),
            data={"op": "write", "key": key, "version": version},
        )
        env.advance_cursor(seqnum)

    def _pin_version(self, svc: InstanceServices, env: Env,
                     key: str) -> str:
        """Obtain a deterministic version number for the current write."""
        if not self.config.align_write_logging_with_boki:
            # Deterministic variant: concatenate the (unique, deterministic)
            # instance id with the upcoming commit step; no intent record.
            return f"{env.instance_id}.{env.step + 1}"
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
            return record["version"]
        seqnum, data = self._log_step(
            svc, env, extra_tags=(),
            data={
                "op": "write-intent",
                "key": key,
                "version": svc.random_hex(),
            },
            synchronous=False,
        )
        env.advance_cursor(seqnum)
        return data["version"]
