"""Halfmoon-write: the log-free write protocol (Figure 7, Section 4.2).

Only reads perform logging; they record the real-time value they observed,
so they are idempotent on their own.  Writes are log-free conditional
updates against the single-version store: the version number is the tuple
``(cursorTS, consecutive_write_counter)``, and the update applies only if
the stored version is strictly smaller.  Because the cursorTS is
deterministic (recovered from read-log seqnums) and version numbers are
monotone, a re-executed write either lands at the same point in the event
stream or is rejected — idempotence either way.

The counter breaks ties between consecutive writes of one SSF to the same
object; it is incremented on writes and reset on reads (Figure 7).

The ``preserve_consecutive_write_order`` extension (the technical report's
ordered variant, referenced in Section 4.4) appends a cheap ordering
barrier between consecutive log-free writes to *different* objects so that
no dependent pair can commute; writes remain log-free in the best case
(runs of writes to a single object, or writes separated by reads).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

from .base import LoggedProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.env import Env
    from ..runtime.services import InstanceServices


class HalfmoonWriteProtocol(LoggedProtocol):
    """Log-free conditional writes, logged reads (Figure 7)."""

    name = "halfmoon-write"
    logs_reads = True
    logs_writes = False
    recovery_mode = "re-execute log-free writes"

    def __init__(self, config=None):
        super().__init__(config)
        self._preserve_order = self.config.preserve_consecutive_write_order

    def read(self, svc: InstanceServices, env: Env, key: str) -> Any:
        record = self._next_step(env)
        env.consecutive_writes = 0
        env.last_write_key = ""
        if record is not None:
            env.advance_cursor(record.seqnum)
            return record["data"]
        value = svc.db_read(key)
        seqnum, data = self._log_step(
            svc, env, extra_tags=(),
            data={"op": "read", "key": key, "data": value},
            payload_bytes=svc.value_bytes,
        )
        env.advance_cursor(seqnum)
        return data["data"]

    def write(self, svc: InstanceServices, env: Env, key: str,
              value: Any) -> None:
        if self._preserve_order and self._needs_order_barrier(env, key):
            self._order_barrier(svc, env)
        env.consecutive_writes += 1
        version: Tuple[int, int] = (env.cursor_ts, env.consecutive_writes)
        svc.db_cond_write(key, value, version)
        env.last_write_key = key

    # ------------------------------------------------------------------
    # Ordered-write extension
    # ------------------------------------------------------------------

    def _needs_order_barrier(self, env: Env, key: str) -> bool:
        return bool(env.last_write_key) and env.last_write_key != key

    def _order_barrier(self, svc: InstanceServices, env: Env) -> None:
        """Pin the order of consecutive writes to different objects by
        logging between them (Section 4.4: "one can perform extra logging
        between the writes such that every dependent pair cannot be
        reordered")."""
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
        else:
            seqnum, _ = self._log_step(
                svc, env, extra_tags=(), data={"op": "write-order"}
            )
            env.advance_cursor(seqnum)
        env.consecutive_writes = 0
