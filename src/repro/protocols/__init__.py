"""Logging protocols: the paper's contribution plus its baselines.

* :class:`HalfmoonReadProtocol`  — log-free reads (Figure 5);
* :class:`HalfmoonWriteProtocol` — log-free writes (Figure 7);
* :class:`BokiProtocol`          — symmetric logging baseline;
* :class:`UnsafeProtocol`        — no logging, no exactly-once;
* :class:`TransitionalProtocol`  — logs everything, bridges both
  versioning schemas during a protocol switch (Section 5.2).
"""

from .base import Invoker, LoggedProtocol, Protocol
from .boki import BokiProtocol
from .halfmoon_read import HalfmoonReadProtocol
from .halfmoon_write import HalfmoonWriteProtocol
from .registry import (
    PROTOCOL_CLASSES,
    SWITCHABLE_PROTOCOLS,
    build_protocol,
    protocol_names,
)
from .transitional import TransitionalProtocol
from .unsafe import UnsafeProtocol

__all__ = [
    "BokiProtocol",
    "HalfmoonReadProtocol",
    "HalfmoonWriteProtocol",
    "Invoker",
    "LoggedProtocol",
    "PROTOCOL_CLASSES",
    "Protocol",
    "SWITCHABLE_PROTOCOLS",
    "TransitionalProtocol",
    "UnsafeProtocol",
    "build_protocol",
    "protocol_names",
]
