"""Protocol registry: build protocols by name."""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..config import ProtocolConfig
from ..errors import ConfigError
from .base import Protocol
from .boki import BokiProtocol
from .halfmoon_read import HalfmoonReadProtocol
from .halfmoon_write import HalfmoonWriteProtocol
from .transitional import TransitionalProtocol
from .unsafe import UnsafeProtocol

PROTOCOL_CLASSES: Dict[str, Type[Protocol]] = {
    UnsafeProtocol.name: UnsafeProtocol,
    BokiProtocol.name: BokiProtocol,
    HalfmoonReadProtocol.name: HalfmoonReadProtocol,
    HalfmoonWriteProtocol.name: HalfmoonWriteProtocol,
    TransitionalProtocol.name: TransitionalProtocol,
}

#: Names usable as switching targets (Section 4.7).
SWITCHABLE_PROTOCOLS = (
    HalfmoonReadProtocol.name,
    HalfmoonWriteProtocol.name,
)


def build_protocol(name: str,
                   config: Optional[ProtocolConfig] = None) -> Protocol:
    """Instantiate the protocol registered under ``name``."""
    cls = PROTOCOL_CLASSES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown protocol {name!r}; choose from "
            f"{sorted(PROTOCOL_CLASSES)}"
        )
    return cls(config)


def protocol_names() -> list:
    """Names of all registered protocols."""
    return sorted(PROTOCOL_CLASSES)
