"""The transitional protocol used while switching between Halfmoon's two
protocols (Sections 4.7 and 5.2).

While a switch is in progress (between the BEGIN and END transition
records), SSFs may coexist with peers still running the *old* protocol, so
a transitional SSF must be compatible with both worlds:

* it **logs all reads and writes** — Theorem 4.6 forbids mixing log-free
  reads and log-free writes concurrently;
* its writes update the single-version LATEST slot (visible to
  Halfmoon-write readers) *and* install a separate multi-version object
  with a write-log commit record (visible to Halfmoon-read readers);
* its reads fetch both the LATEST slot and the freshest logged version and
  pick whichever is fresher — comparing the LATEST slot's version tuple
  (whose first field is a cursorTS/seqnum) against the seqnum of the
  matching write-log record — then log the chosen result for idempotence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

from ..errors import KeyMissingError
from ..storageplane import GENESIS_VERSION
from ..tags import object_tag
from .base import LoggedProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.env import Env
    from ..runtime.services import InstanceServices


class TransitionalProtocol(LoggedProtocol):
    """Logs everything; bridges both versioning schemas (Section 5.2)."""

    name = "transitional"
    logs_reads = True
    logs_writes = True
    public_write_log = True

    def read(self, svc: InstanceServices, env: Env, key: str) -> Any:
        record = self._next_step(env)
        env.consecutive_writes = 0
        if record is not None:
            env.advance_cursor(record.seqnum)
            return record["data"]

        value = self._freshest_value(svc, key)
        seqnum, data = self._log_step(
            svc, env, extra_tags=(),
            data={"op": "read", "key": key, "data": value},
            payload_bytes=svc.value_bytes,
        )
        env.advance_cursor(seqnum)
        return data["data"]

    def _freshest_value(self, svc: InstanceServices, key: str) -> Any:
        """Compare the single-version and multi-version worlds (Figure 9)."""
        latest_value: Any = None
        latest_freshness = -1
        try:
            latest_value, latest_version = svc.db_read_with_version(key)
        except KeyMissingError:
            pass
        else:
            if latest_version != GENESIS_VERSION:
                # The version tuple's first field is the writing SSF's
                # cursorTS — a log seqnum, comparable with record seqnums.
                latest_freshness = int(latest_version[0])
            else:
                latest_freshness = 0

        versioned_value: Any = None
        versioned_freshness = -1
        write_log = svc.log_read_prev(object_tag(key), svc.log_tail)
        if write_log is not None:
            versioned_value = svc.db_read_version(
                key, write_log["version"]
            )
            versioned_freshness = write_log.seqnum

        if latest_freshness < 0 and versioned_freshness < 0:
            raise KeyMissingError(f"key {key!r} not found in either schema")
        if versioned_freshness > latest_freshness:
            return versioned_value
        return latest_value

    def write(self, svc: InstanceServices, env: Env, key: str,
              value: Any) -> None:
        # Intent: pin the multi-version number (as in Halfmoon-read).
        record = self._next_step(env)
        if record is not None:
            version_number = record["version"]
            env.advance_cursor(record.seqnum)
        else:
            seqnum, data = self._log_step(
                svc, env, extra_tags=(),
                data={
                    "op": "write-intent",
                    "key": key,
                    "version": svc.random_hex(),
                },
                synchronous=False,
            )
            version_number = data["version"]
            env.advance_cursor(seqnum)

        # Commit: update both schemas, then append the commit record.
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
            return
        env.consecutive_writes += 1
        version_tuple: Tuple[int, int] = (
            env.cursor_ts, env.consecutive_writes
        )
        svc.db_cond_write(key, value, version_tuple)
        svc.db_write_version(key, version_number, value)
        seqnum, _ = self._log_step(
            svc, env, extra_tags=(object_tag(key),),
            data={
                "op": "write",
                "key": key,
                "version": version_number,
                "vtuple": version_tuple,
            },
        )
        env.advance_cursor(seqnum)
