"""The symmetric-logging baseline (Boki / Beldi style).

Every read and every write to the external state is associated with a log
record (Section 2).  Reads log the value they observed; writes log twice —
a write-intent that pins the write's version before it touches the store,
and a commit record afterwards (Section 4.1 notes Boki logs twice per
write, which is why the Halfmoon-read prototype aligns with it).

Writes are conditional updates against the single-version store, versioned
by the intent record's seqnum; replaying a crashed write re-issues the
same conditional update, which the store rejects if it already applied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

from .base import LoggedProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.env import Env
    from ..runtime.services import InstanceServices


class BokiProtocol(LoggedProtocol):
    """Symmetric logging baseline: every read and write is logged."""

    name = "boki"
    logs_reads = True
    logs_writes = True
    recovery_mode = "symmetric replay"

    def read(self, svc: InstanceServices, env: Env, key: str) -> Any:
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
            return record["data"]
        value = svc.db_read(key)
        seqnum, data = self._log_step(
            svc, env, extra_tags=(),
            data={"op": "read", "key": key, "data": value},
            payload_bytes=svc.value_bytes,
        )
        env.advance_cursor(seqnum)
        return data["data"]

    def write(self, svc: InstanceServices, env: Env, key: str,
              value: Any) -> None:
        # Intent: pin the write's version before touching the store.  The
        # intent append overlaps with execution (off the critical path), so
        # the latency-visible cost of a Boki write is one conditional
        # update plus one synchronous log append — consistent with the
        # overhead Table 1 implies.
        record = self._next_step(env)
        if record is not None:
            version: Tuple[int, int] = (record.seqnum, 0)
            env.advance_cursor(record.seqnum)
        else:
            seqnum, _ = self._log_step(
                svc, env, extra_tags=(),
                data={"op": "write-intent", "key": key},
                synchronous=False,
            )
            version = (seqnum, 0)
            env.advance_cursor(seqnum)

        # Commit: conditional update + commit record.
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
            return
        svc.db_cond_write(key, value, version)
        seqnum, _ = self._log_step(
            svc, env, extra_tags=(),
            data={"op": "write", "key": key},
        )
        env.advance_cursor(seqnum)
