"""Protocol interface and shared logged-step machinery.

A *protocol* decides, per operation, what gets logged and how reads and
writes are parameterised by timestamps.  All four systems evaluated in the
paper share the same skeleton:

* ``init``   — load the step log, establish the initial cursorTS;
* ``read``/``write`` — the protocol-specific part (Figures 5 and 7);
* ``invoke`` — call a child SSF with a pinned callee id, log its result;
* ``sync``   — optionally advance the cursorTS to the log tail for
  linearizable operation (Section 4.4).

Logged steps always go through ``logCondAppend`` (Section 5.1): the
condition ties the new record to the expected offset of the instance's
step log, so when peer instances race, exactly one wins and the losers
*adopt* the winner's record — both peers continue with identical state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..config import ProtocolConfig
from ..errors import ConditionalAppendError, ProtocolError
from ..tags import instance_tag, object_tag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.env import Env
    from ..runtime.services import InstanceServices

#: Runtime callback that executes a child SSF invocation:
#: ``invoker(callee_instance_id, func_name, input, parent_env) -> result``.
Invoker = Callable[[str, str, Any, "Env"], Any]


class Protocol(ABC):
    """Abstract logging protocol."""

    #: Human-readable protocol identifier ("boki", "halfmoon-read", ...).
    name: str = "abstract"
    #: Whether reads install a log record (symmetric/transitional/HM-W).
    logs_reads: bool = False
    #: Whether writes install a publicly visible log record (HM-R/Boki).
    logs_writes: bool = False
    #: Whether commit records are tagged into per-object write logs
    #: (Halfmoon-read and the transitional protocol); Boki's write
    #: records live only in the private step log.
    public_write_log: bool = False
    #: How a takeover node recovers a crashed SSF (Sections 4.5 and 7):
    #: re-execution against whatever the protocol logged.  Subclasses
    #: refine the label so the failover tables can name the asymmetry.
    recovery_mode: str = "re-execution"

    def __init__(self, config: Optional[ProtocolConfig] = None):
        self.config = config if config is not None else ProtocolConfig()

    # -- lifecycle --------------------------------------------------------

    @abstractmethod
    def init(self, svc: InstanceServices, env: Env) -> None:
        """Establish ``env.cursor_ts`` and load replay state."""

    @abstractmethod
    def read(self, svc: InstanceServices, env: Env, key: str) -> Any:
        ...

    @abstractmethod
    def write(self, svc: InstanceServices, env: Env, key: str,
              value: Any) -> None:
        ...

    @abstractmethod
    def invoke(self, svc: InstanceServices, env: Env, func_name: str,
               input: Any, invoker: Invoker) -> Any:
        ...

    def sync(self, svc: InstanceServices, env: Env) -> None:
        """Advance the cursorTS to the current log tail (no-op by default,
        meaningful only for logged protocols)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class LoggedProtocol(Protocol):
    """Base class for protocols that keep a per-SSF step log."""

    # ------------------------------------------------------------------
    # Step-log helpers
    # ------------------------------------------------------------------

    def _load_step_logs(self, svc: InstanceServices, env: Env) -> None:
        """``getStepLogs(env.ID)``: retrieve the SSF's execution history."""
        env.step_logs = {}
        for record in svc.log_read_stream(instance_tag(env.instance_id)):
            env.record_step(record)

    def _next_step(self, env: Env):
        """Advance to the next logged step; return its replay record."""
        env.step += 1
        return env.replay_record()

    def _log_step(
        self,
        svc: InstanceServices,
        env: Env,
        extra_tags: Sequence[str],
        data: Mapping[str, Any],
        payload_bytes: int = 0,
        synchronous: bool = True,
        control: bool = False,
    ) -> Tuple[int, Mapping[str, Any]]:
        """Append the current step's record via ``logCondAppend``.

        Returns ``(seqnum, data)`` of the record that now occupies this
        step — ours if the conditional append won, the peer instance's if
        it lost (the loser adopts the winner's record and proceeds with
        identical state, Section 5.1).
        """
        tag = instance_tag(env.instance_id)
        payload = dict(data)
        payload["step"] = env.step
        try:
            seqnum = svc.log_cond_append(
                tags=[tag, *extra_tags],
                data=payload,
                cond_tag=tag,
                cond_pos=env.step,
                payload_bytes=payload_bytes,
                synchronous=synchronous,
                control=control,
            )
            return seqnum, payload
        except ConditionalAppendError:
            record = svc.log_record_at(tag, env.step)
            if record.step != env.step:
                raise ProtocolError(
                    f"step log corruption: expected step {env.step}, "
                    f"found {record.step}"
                )
            env.record_step(record)
            return record.seqnum, record.data

    # ------------------------------------------------------------------
    # Init (Figure 5, shared by every logged protocol)
    # ------------------------------------------------------------------

    def init(self, svc: InstanceServices, env: Env) -> None:
        self._load_step_logs(svc, env)
        env.step = 0
        env.consecutive_writes = 0
        existing = env.step_logs.get(0)
        if existing is not None:
            env.cursor_ts = existing.seqnum
        else:
            # The init record checkpoints nothing and only serves to bring
            # the cursorTS up to date (Section 4.3 notes it is not needed
            # for idempotence), so the append overlaps with the SSF's
            # first operations: the sequencer returns the seqnum
            # immediately and replication completes off the critical path.
            seqnum, _ = self._log_step(
                svc, env, extra_tags=(), data={"op": "init"},
                control=True,
            )
            env.cursor_ts = seqnum
        env.init_cursor_ts = env.cursor_ts

    # ------------------------------------------------------------------
    # Invoke (Figure 5, shared): pin the callee id, then log the result.
    # ------------------------------------------------------------------

    def invoke(self, svc: InstanceServices, env: Env, func_name: str,
               input: Any, invoker: Invoker) -> Any:
        # Step 1: pin the callee's instance id.  The prototype draws it at
        # random and turns it into a deterministic operation by logging it
        # before use (Section 4.1), exactly like write version numbers.
        record = self._next_step(env)
        if record is not None:
            callee_id = record["callee"]
            env.advance_cursor(record.seqnum)
        else:
            seqnum, data = self._log_step(
                svc, env, extra_tags=(),
                data={
                    "op": "invoke-intent",
                    "func": func_name,
                    "callee": svc.random_hex(),
                },
                control=True,
            )
            callee_id = data["callee"]
            env.advance_cursor(seqnum)

        # Step 2: run the callee unless its result is already logged.
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
            return record["result"]
        svc.charge_invoke_overhead()
        result = invoker(callee_id, func_name, input, env)
        # The result record is a progress checkpoint (replay shortcut);
        # the caller can continue while it replicates, because a crash in
        # the window simply re-invokes the (idempotent) callee.
        seqnum, data = self._log_step(
            svc, env, extra_tags=(),
            data={"op": "invoke", "func": func_name, "result": result},
            control=True,
        )
        env.advance_cursor(seqnum)
        return data["result"]

    # ------------------------------------------------------------------
    # Linearizable sync (Section 4.4)
    # ------------------------------------------------------------------

    def sync(self, svc: InstanceServices, env: Env) -> None:
        record = self._next_step(env)
        if record is not None:
            env.advance_cursor(record.seqnum)
            return
        seqnum, _ = self._log_step(
            svc, env, extra_tags=(), data={"op": "sync"}
        )
        env.advance_cursor(seqnum)


def object_write_tag(key: str) -> str:
    """Tag that places a commit record in the object's write log."""
    return object_tag(key)
