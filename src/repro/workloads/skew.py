"""Skewed-population workload: Zipfian hot users at 10⁵–10⁶ scale.

The scale experiment (``python -m repro scale``) asks where each
sequencing strategy saturates under *realistic* skew: a large simulated
user population whose per-user activity follows a Zipf law (a few
celebrities absorb most of the traffic), optionally modulated by a
diurnal load curve.  Two pieces live here:

* :class:`SkewedWorkload` — ``ops_per_request`` write+read pairs per
  request, each against a Zipf-drawn user key out of ``num_users``
  (default 10⁵; 10⁶ works — keys are formatted lazily and memoized, so
  cost scales with the *distinct users touched*, not the population).
  Every op pair is write-first, so no request ever reads a key that was
  never written — which is what lets the population exceed what an
  eager ``populate`` could seed.
* :class:`DiurnalCurve` — a day-shaped rate multiplier (trough → peak →
  trough, cosine-interpolated) used to sample offered-load points along
  a simulated day instead of a flat grid.

The Zipf draw reuses :class:`~repro.workloads.base.ZipfSampler`, the
sampler hoisted out of retwis — one implementation, one set of seeded
draw semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from ..runtime.ops import ReadOp, WriteOp
from .base import Request, Workload, ZipfSampler

#: Default population: the 10⁵ operating point ISSUE 9 charts; pass
#: ``num_users=1_000_000`` for the 10⁶ point.
NUM_USERS = 100_000

#: How many of the hottest user keys ``populate`` seeds eagerly (probes
#: and read-leading variants touch these; everything else is created by
#: its first write).
HOT_SEED_KEYS = 256


def skew_touch_ssf(inp: Dict[str, Any]):
    """Write-then-read each drawn user's state (one SSF per request)."""
    last = None
    for key, value in inp["ops"]:
        yield WriteOp(key, value)
        last = yield ReadOp(key)
    return last


class SkewedWorkload(Workload):
    """Zipf-skewed per-user updates over a very large population."""

    name = "skewed-users"

    def __init__(
        self,
        num_users: int = NUM_USERS,
        zipf_s: float = 1.2,
        ops_per_request: int = 4,
        hot_seed_keys: int = HOT_SEED_KEYS,
    ):
        if num_users < 1:
            raise ValueError("num_users must be >= 1")
        if ops_per_request < 1:
            raise ValueError("ops_per_request must be >= 1")
        self.num_users = int(num_users)
        self.zipf_s = float(zipf_s)
        self.ops_per_request = int(ops_per_request)
        self.hot_seed_keys = min(int(hot_seed_keys), self.num_users)
        self.sampler = ZipfSampler(zipf_s, num_users)
        self._counter = 0
        #: Lazy key memo: the Zipf head dominates, so the number of
        #: distinct keys ever formatted is far below ``num_users``.
        self._key_memo: Dict[int, str] = {}

    def user_key(self, i: int) -> str:
        key = self._key_memo.get(i)
        if key is None:
            key = self._key_memo[i] = f"suser{i:07d}"
        return key

    @property
    def distinct_users_touched(self) -> int:
        return len(self._key_memo)

    def register(self, runtime) -> None:
        runtime.register("skew.touch", skew_touch_ssf)

    def populate(self, runtime) -> None:
        # Deliberately *not* per-user: at 10⁵–10⁶ users an eager seed
        # would dwarf the run itself.  The write-first SSF keeps lazily
        # created keys safe; only the hot head is pre-seeded.
        for i in range(self.hot_seed_keys):
            runtime.populate(self.user_key(i), 0)

    def next_request(self, rng: np.random.Generator) -> Request:
        ops: List[Tuple[str, Any]] = []
        append = ops.append
        sample = self.sampler.sample
        counter = self._counter
        for _ in range(self.ops_per_request):
            counter += 1
            append((self.user_key(sample(rng)), f"v{counter:08d}"))
        self._counter = counter
        return Request("skew.touch", {"ops": ops})

    def read_write_profile(self) -> Tuple[float, float]:
        ops = float(self.ops_per_request)
        return (ops, ops)


@dataclass(frozen=True)
class DiurnalCurve:
    """Day-shaped offered-load multiplier.

    ``multiplier(t_ms)`` traces trough → peak → trough over one
    ``period_ms`` via a raised cosine: ``trough_factor`` at t=0,
    ``peak_factor`` at t=period/2.  ``sample_rates`` returns ``points``
    rates along one period for a sweep grid — how the scale experiment
    turns "a day of traffic" into a deterministic set of cells.
    """

    base_rate_per_s: float
    peak_factor: float = 2.0
    trough_factor: float = 0.4
    period_ms: float = 86_400_000.0

    def __post_init__(self):
        if self.base_rate_per_s <= 0:
            raise ValueError("base_rate_per_s must be positive")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if not 0 < self.trough_factor <= self.peak_factor:
            raise ValueError(
                "need 0 < trough_factor <= peak_factor"
            )

    def multiplier(self, t_ms: float) -> float:
        frac = (t_ms % self.period_ms) / self.period_ms
        blend = 0.5 - 0.5 * math.cos(2.0 * math.pi * frac)
        return (self.trough_factor
                + (self.peak_factor - self.trough_factor) * blend)

    def rate_at(self, t_ms: float) -> float:
        return self.base_rate_per_s * self.multiplier(t_ms)

    def sample_rates(self, points: int) -> List[float]:
        if points < 1:
            raise ValueError("points must be >= 1")
        step = self.period_ms / points
        return [self.rate_at(i * step) for i in range(points)]
