"""Retwis workload (Section 6.2): a simplified Twitter clone.

Functions mirror the classic Redis tutorial design: ``post`` writes a
tweet object and appends it to the author's post list and the public
timeline; ``timeline`` reads the latest tweets; ``profile`` reads a user's
posts; ``follow`` updates the follower edge sets.  The default mix (15%
posts, 60% timelines, 15% profiles, 10% follows) is read-intensive,
matching the paper's characterisation.

User popularity follows a Zipf distribution so hot keys see concurrent
updates — the interesting case for the logging protocols.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..runtime.ops import InvokeOp, ReadOp, WriteOp
from .base import Request, Workload, ZipfSampler

NUM_USERS = 300
TIMELINE_FANOUT = 8


def user_key(i: int) -> str:
    return f"ruser{i:04d}"


def posts_key(i: int) -> str:
    return f"rposts{i:04d}"


def followers_key(i: int) -> str:
    return f"rfollowers{i:04d}"


def following_key(i: int) -> str:
    return f"rfollowing{i:04d}"


def tweet_key(seq: int) -> str:
    return f"rtweet{seq:07d}"


def timeline_key() -> str:
    return "rtimeline"


def post_counter_key() -> str:
    return "rpost-counter"


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------

def retwis_post(inp: Dict[str, Any]):
    """Post a tweet: allocate id, store body, update author + timeline."""
    counter = yield ReadOp(post_counter_key())
    tweet_id = counter + 1
    yield WriteOp(post_counter_key(), tweet_id)
    yield WriteOp(tweet_key(tweet_id), {
        "author": inp["user"],
        "text": inp["text"],
    })
    posts = yield ReadOp(posts_key(inp["user"]))
    yield WriteOp(posts_key(inp["user"]), (posts + [tweet_id])[-50:])
    timeline = yield ReadOp(timeline_key())
    yield WriteOp(timeline_key(), (timeline + [tweet_id])[-100:])
    return tweet_id


def retwis_timeline(inp: Dict[str, Any]):
    """Read the public timeline and hydrate the newest tweets."""
    timeline = yield ReadOp(timeline_key())
    tweets = []
    for tweet_id in timeline[-TIMELINE_FANOUT:]:
        tweet = yield ReadOp(tweet_key(tweet_id))
        tweets.append(tweet)
    return tweets


def retwis_profile(inp: Dict[str, Any]):
    """Read a user's profile and their recent posts."""
    record = yield ReadOp(user_key(inp["user"]))
    posts = yield ReadOp(posts_key(inp["user"]))
    recent = []
    for tweet_id in posts[-3:]:
        tweet = yield ReadOp(tweet_key(tweet_id))
        recent.append(tweet)
    return {"user": record, "recent": recent}


def retwis_follow(inp: Dict[str, Any]):
    """Create a follow edge (two set updates)."""
    follower, followee = inp["follower"], inp["followee"]
    following = yield ReadOp(following_key(follower))
    if followee not in following:
        yield WriteOp(following_key(follower), following + [followee])
    followers = yield ReadOp(followers_key(followee))
    if follower not in followers:
        yield WriteOp(followers_key(followee), followers + [follower])
    return True


FUNCTIONS = {
    "retwis.post": retwis_post,
    "retwis.timeline": retwis_timeline,
    "retwis.profile": retwis_profile,
    "retwis.follow": retwis_follow,
}


class RetwisWorkload(Workload):
    """Read-intensive PUT/GET mix over a key-value store."""

    name = "retwis"

    def __init__(
        self,
        num_users: int = NUM_USERS,
        post_fraction: float = 0.15,
        timeline_fraction: float = 0.60,
        profile_fraction: float = 0.15,
        zipf_s: float = 1.2,
    ):
        follow_fraction = 1.0 - (
            post_fraction + timeline_fraction + profile_fraction
        )
        if follow_fraction < 0:
            raise ValueError("fractions must sum to <= 1")
        self.num_users = num_users
        self.mix = (
            ("retwis.post", post_fraction),
            ("retwis.timeline", timeline_fraction),
            ("retwis.profile", profile_fraction),
            ("retwis.follow", follow_fraction),
        )
        self.zipf_s = zipf_s
        self._zipf = ZipfSampler(zipf_s, num_users)

    def register(self, runtime) -> None:
        for name, fn in FUNCTIONS.items():
            runtime.register(name, fn)

    def populate(self, runtime) -> None:
        runtime.populate(post_counter_key(), 0)
        runtime.populate(timeline_key(), [])
        for u in range(self.num_users):
            runtime.populate(user_key(u), {"handle": f"@user{u:04d}"})
            runtime.populate(posts_key(u), [])
            runtime.populate(followers_key(u), [])
            runtime.populate(following_key(u), [])

    def _zipf_user(self, rng: np.random.Generator) -> int:
        # Shared rejection-sampled Zipf (same draw sequence as the
        # historical inline loop, so seeded runs are unchanged).
        return self._zipf.sample(rng)

    def next_request(self, rng: np.random.Generator) -> Request:
        roll = rng.random()
        cumulative = 0.0
        func_name = self.mix[-1][0]
        for name, fraction in self.mix:
            cumulative += fraction
            if roll < cumulative:
                func_name = name
                break
        user = self._zipf_user(rng)
        if func_name == "retwis.post":
            payload: Dict[str, Any] = {
                "user": user, "text": "hello, shared log"
            }
        elif func_name == "retwis.follow":
            other = self._zipf_user(rng)
            if other == user:
                other = (user + 1) % self.num_users
            payload = {"follower": user, "followee": other}
        else:
            payload = {"user": user}
        return Request(func_name, payload)

    def read_write_profile(self) -> Tuple[float, float]:
        reads = writes = 0.0
        per_func = {
            "retwis.post": (3.0, 4.0),
            "retwis.timeline": (1.0 + TIMELINE_FANOUT, 0.0),
            "retwis.profile": (5.0, 0.0),
            "retwis.follow": (2.0, 2.0),
        }
        for name, fraction in self.mix:
            r, w = per_func[name]
            reads += fraction * r
            writes += fraction * w
        return (reads, writes)
