"""Benchmark workloads: synthetic microbenchmarks and the three
application workloads of Section 6.2.
"""

from .base import Request, Workload, ZipfSampler
from .generator import Phase, PhasedSchedule, PoissonArrivals
from .movie import MovieReviewWorkload
from .retwis import RetwisWorkload
from .skew import DiurnalCurve, SkewedWorkload, skew_touch_ssf
from .synthetic import (
    MixedRatioWorkload,
    ReadWriteMicrobench,
    mixed_ssf,
    rw_microbench_ssf,
)
from .travel import TravelReservationWorkload

__all__ = [
    "DiurnalCurve",
    "MixedRatioWorkload",
    "MovieReviewWorkload",
    "Phase",
    "PhasedSchedule",
    "PoissonArrivals",
    "ReadWriteMicrobench",
    "Request",
    "RetwisWorkload",
    "SkewedWorkload",
    "TravelReservationWorkload",
    "Workload",
    "ZipfSampler",
    "mixed_ssf",
    "rw_microbench_ssf",
    "skew_touch_ssf",
]
