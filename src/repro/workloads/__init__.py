"""Benchmark workloads: synthetic microbenchmarks and the three
application workloads of Section 6.2.
"""

from .base import Request, Workload
from .generator import Phase, PhasedSchedule, PoissonArrivals
from .movie import MovieReviewWorkload
from .retwis import RetwisWorkload
from .synthetic import (
    MixedRatioWorkload,
    ReadWriteMicrobench,
    mixed_ssf,
    rw_microbench_ssf,
)
from .travel import TravelReservationWorkload

__all__ = [
    "MixedRatioWorkload",
    "MovieReviewWorkload",
    "Phase",
    "PhasedSchedule",
    "PoissonArrivals",
    "ReadWriteMicrobench",
    "Request",
    "RetwisWorkload",
    "TravelReservationWorkload",
    "Workload",
    "mixed_ssf",
    "rw_microbench_ssf",
]
