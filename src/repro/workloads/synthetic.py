"""Synthetic microbenchmark workloads (Sections 6.1 and 6.3).

* :class:`ReadWriteMicrobench` — the Section 6.1 SSF: one read and one
  write per request against 10K objects of 8-byte keys and 256-byte
  values.

* :class:`MixedRatioWorkload` — the Section 6.3 SSF: ten operations per
  request, each targeting a uniformly random object, with a configurable
  read ratio.  Varying the ratio sweeps the read/write intensity axis of
  Figures 12 and 13.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..runtime.ops import ReadOp, WriteOp
from .base import Request, Workload


def _pad_value(seed: int, size_hint: int = 8) -> str:
    """A small distinguishable value; actual bytes are accounted by the
    storage config, not by Python object size."""
    return f"v{seed:06d}"


def rw_microbench_ssf(inp: Dict[str, Any]):
    """One read + one write per request (Figure 10's SSF)."""
    value = yield ReadOp(inp["read_key"])
    yield WriteOp(inp["write_key"], inp["value"])
    return value


def mixed_ssf(inp: Dict[str, Any]):
    """Ten (configurable) operations with a given read/write mix."""
    last = None
    for kind, key, value in inp["ops"]:
        if kind == "r":
            last = yield ReadOp(key)
        else:
            yield WriteOp(key, value)
    return last


class ReadWriteMicrobench(Workload):
    """Section 6.1 microbenchmark: 10K objects, 1R + 1W per request."""

    name = "rw-microbench"

    def __init__(self, num_keys: int = 10_000):
        self.num_keys = num_keys
        self._counter = 0
        # The key universe is fixed, so format every name once up front;
        # request generation is on the arrival hot path.
        self._keys = [f"obj{i:05d}" for i in range(num_keys)]

    def register(self, runtime) -> None:
        runtime.register("rw", rw_microbench_ssf)

    def populate(self, runtime) -> None:
        for i in range(self.num_keys):
            runtime.populate(self._keys[i], _pad_value(i))

    def key(self, i: int) -> str:
        return self._keys[i]

    def next_request(self, rng: np.random.Generator) -> Request:
        self._counter += 1
        keys = self._keys
        return Request(
            "rw",
            {
                "read_key": keys[int(rng.integers(self.num_keys))],
                "write_key": keys[int(rng.integers(self.num_keys))],
                "value": _pad_value(self._counter),
            },
        )

    def read_write_profile(self) -> Tuple[float, float]:
        return (1.0, 1.0)


class MixedRatioWorkload(Workload):
    """Section 6.3 synthetic SSF: ``ops_per_request`` uniform-key ops."""

    name = "mixed-ratio"

    def __init__(
        self,
        read_ratio: float,
        num_keys: int = 10_000,
        ops_per_request: int = 10,
    ):
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        self.read_ratio_value = read_ratio
        self.num_keys = num_keys
        self.ops_per_request = ops_per_request
        self._counter = 0
        # Same fixed-universe memo as ReadWriteMicrobench.
        self._keys = [f"obj{i:05d}" for i in range(num_keys)]

    def register(self, runtime) -> None:
        runtime.register("mixed", mixed_ssf)

    def populate(self, runtime) -> None:
        for i in range(self.num_keys):
            runtime.populate(self._keys[i], _pad_value(i))

    def key(self, i: int) -> str:
        return self._keys[i]

    def next_request(self, rng: np.random.Generator) -> Request:
        ops: List[Tuple[str, str, Any]] = []
        append = ops.append
        keys = self._keys
        num_keys = self.num_keys
        read_ratio = self.read_ratio_value
        counter = self._counter
        for _ in range(self.ops_per_request):
            counter += 1
            key = keys[int(rng.integers(num_keys))]
            if rng.random() < read_ratio:
                append(("r", key, None))
            else:
                append(("w", key, _pad_value(counter)))
        self._counter = counter
        return Request("mixed", {"ops": ops})

    def read_write_profile(self) -> Tuple[float, float]:
        reads = self.ops_per_request * self.read_ratio_value
        return (reads, self.ops_per_request - reads)
