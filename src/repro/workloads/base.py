"""Workload abstraction shared by the experiment harness.

A workload bundles three things:

* the SSF bodies it registers with a runtime (written in op-generator
  style so both the direct runtime and the DES platform can drive them);
* the initial objects it populates;
* a request factory producing the next ``(function, input)`` pair.

``read_write_profile`` reports the approximate (reads, writes) per request
so the advisor and the experiment tables can reason about intensity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np


@dataclass(frozen=True)
class Request:
    func_name: str
    input: Any


class ZipfSampler:
    """Rejection-sampled Zipf draw truncated to a finite population.

    ``sample`` returns a 0-based index in ``[0, population)`` where index
    0 is the hottest item.  The rejection loop redraws any rank beyond
    the population, which keeps the in-range probabilities exactly
    proportional to the untruncated Zipf mass — and, crucially for the
    golden-run diffs, consumes the *same RNG draw sequence* as the
    inline loop retwis always used (one ``rng.zipf`` call per attempt,
    nothing else).

    Hoisted from ``RetwisWorkload._zipf_user`` so the skewed-user scale
    workload and any future hot-key generator share one implementation.
    """

    __slots__ = ("s", "population")

    def __init__(self, s: float, population: int):
        if s <= 1.0:
            raise ValueError("zipf exponent must be > 1")
        if population < 1:
            raise ValueError("population must be >= 1")
        self.s = float(s)
        self.population = int(population)

    def sample(self, rng: np.random.Generator) -> int:
        population = self.population
        s = self.s
        while True:
            draw = int(rng.zipf(s))
            if draw <= population:
                return draw - 1

    __call__ = sample

    def __repr__(self) -> str:
        return f"ZipfSampler(s={self.s}, population={self.population})"


class Workload(ABC):
    """Base class for benchmark workloads."""

    name: str = "workload"

    @abstractmethod
    def register(self, runtime) -> None:
        """Register every SSF body with ``runtime`` (``.register`` duck)."""

    @abstractmethod
    def populate(self, runtime) -> None:
        """Install the initial external state (``.populate`` duck)."""

    @abstractmethod
    def next_request(self, rng: np.random.Generator) -> Request:
        """Draw the next request."""

    @abstractmethod
    def read_write_profile(self) -> Tuple[float, float]:
        """Approximate (reads, writes) per request."""

    def read_ratio(self) -> float:
        reads, writes = self.read_write_profile()
        total = reads + writes
        return reads / total if total else 0.5

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
