"""Workload abstraction shared by the experiment harness.

A workload bundles three things:

* the SSF bodies it registers with a runtime (written in op-generator
  style so both the direct runtime and the DES platform can drive them);
* the initial objects it populates;
* a request factory producing the next ``(function, input)`` pair.

``read_write_profile`` reports the approximate (reads, writes) per request
so the advisor and the experiment tables can reason about intensity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np


@dataclass(frozen=True)
class Request:
    func_name: str
    input: Any


class Workload(ABC):
    """Base class for benchmark workloads."""

    name: str = "workload"

    @abstractmethod
    def register(self, runtime) -> None:
        """Register every SSF body with ``runtime`` (``.register`` duck)."""

    @abstractmethod
    def populate(self, runtime) -> None:
        """Install the initial external state (``.populate`` duck)."""

    @abstractmethod
    def next_request(self, rng: np.random.Generator) -> Request:
        """Draw the next request."""

    @abstractmethod
    def read_write_profile(self) -> Tuple[float, float]:
        """Approximate (reads, writes) per request."""

    def read_ratio(self) -> float:
        reads, writes = self.read_write_profile()
        total = reads + writes
        return reads / total if total else 0.5

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
