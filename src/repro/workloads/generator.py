"""Load generation: arrival processes and phased schedules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError


class PoissonArrivals:
    """Open-loop Poisson arrival process (Section 4.6 assumes Poisson)."""

    def __init__(self, rate_per_s: float):
        if rate_per_s <= 0:
            raise ConfigError("arrival rate must be positive")
        self.rate_per_s = rate_per_s

    def inter_arrival_ms(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1000.0 / self.rate_per_s))

    def schedule(self, duration_ms: float,
                 rng: np.random.Generator) -> List[float]:
        """Arrival timestamps (ms) within ``[0, duration_ms)``."""
        times: List[float] = []
        t = self.inter_arrival_ms(rng)
        while t < duration_ms:
            times.append(t)
            t += self.inter_arrival_ms(rng)
        return times


@dataclass(frozen=True)
class Phase:
    """A workload phase for dynamic experiments (Figure 14)."""

    duration_ms: float
    read_ratio: float
    protocol: Optional[str] = None  # switch target at phase start


class PhasedSchedule:
    """Alternating phases, e.g. write-heavy / read-heavy every 5 s."""

    def __init__(self, phases: Sequence[Phase]):
        if not phases:
            raise ConfigError("need at least one phase")
        self.phases = list(phases)

    def total_duration_ms(self) -> float:
        return sum(p.duration_ms for p in self.phases)

    def phase_at(self, now_ms: float) -> Tuple[int, Phase]:
        """Phase index and phase covering time ``now_ms`` (clamped)."""
        t = 0.0
        for i, phase in enumerate(self.phases):
            t += phase.duration_ms
            if now_ms < t:
                return i, phase
        return len(self.phases) - 1, self.phases[-1]

    def boundaries_ms(self) -> List[float]:
        """Start time of each phase."""
        starts = [0.0]
        for phase in self.phases[:-1]:
            starts.append(starts[-1] + phase.duration_ms)
        return starts
