"""Movie-review workload (Section 6.2, adapted from DeathStarBench).

A thirteen-SSF workflow whose core functionality is *posting* user
reviews, which skews the operation mix towards writes: composing a review
fans out into id generation, text/user/movie resolution, then four
storage-side writers (review storage, the user's review list, the movie's
review list, and the rating aggregate).

SSFs: frontend, compose, unique-id, text, user, movie-id, store-review,
user-reviews, movie-reviews, rating, movie-info, page, cast-info.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..runtime.ops import InvokeOp, ReadOp, WriteOp
from .base import Request, Workload

NUM_MOVIES = 200
NUM_USERS = 500


def movie_key(i: int) -> str:
    return f"movie{i:04d}"


def movie_reviews_key(i: int) -> str:
    return f"mreviews{i:04d}"


def user_key(i: int) -> str:
    return f"muser{i:04d}"


def user_reviews_key(i: int) -> str:
    return f"ureviews{i:04d}"


def rating_key(i: int) -> str:
    return f"rating{i:04d}"


def review_key(seq: int) -> str:
    return f"review{seq:07d}"


def cast_key(i: int) -> str:
    return f"cast{i:04d}"


def counter_key() -> str:
    return "review-counter"


# ---------------------------------------------------------------------------
# The thirteen SSFs
# ---------------------------------------------------------------------------

def movie_frontend(inp: Dict[str, Any]):
    """SSF 1: route to compose-review or page view."""
    if inp["action"] == "compose":
        result = yield InvokeOp("movie.compose", inp)
        return {"status": "posted", "review": result}
    result = yield InvokeOp("movie.page", inp)
    return {"status": "page", "page": result}


def movie_compose(inp: Dict[str, Any]):
    """SSF 2: orchestrates a review post."""
    review_id = yield InvokeOp("movie.unique_id", {})
    text = yield InvokeOp("movie.text", {"text": inp["text"]})
    user = yield InvokeOp("movie.user", {"user": inp["user"]})
    movie = yield InvokeOp("movie.movie_id", {"movie": inp["movie"]})
    review = {
        "id": review_id,
        "text": text,
        "user": user,
        "movie": movie,
        "stars": inp["stars"],
    }
    yield InvokeOp("movie.store_review", review)
    yield InvokeOp("movie.user_reviews", review)
    yield InvokeOp("movie.movie_reviews", review)
    yield InvokeOp("movie.rating", review)
    return review_id


def movie_unique_id(inp: Dict[str, Any]):
    """SSF 3: allocate a unique review id from a shared counter."""
    current = yield ReadOp(counter_key())
    yield WriteOp(counter_key(), current + 1)
    return current + 1


def movie_text(inp: Dict[str, Any]):
    """SSF 4: sanitize the review text (pure compute)."""
    return inp["text"].strip()[:256]
    yield  # pragma: no cover - marks this as a generator


def movie_user(inp: Dict[str, Any]):
    """SSF 5: resolve the posting user."""
    record = yield ReadOp(user_key(inp["user"]))
    return record["name"]


def movie_movie_id(inp: Dict[str, Any]):
    """SSF 6: resolve the movie."""
    record = yield ReadOp(movie_key(inp["movie"]))
    return record["title"]


def movie_store_review(review: Dict[str, Any]):
    """SSF 7: persist the review body."""
    yield WriteOp(review_key(review["id"]), review)
    return review["id"]


def movie_user_reviews(review: Dict[str, Any]):
    """SSF 8: append to the user's review list."""
    key = user_reviews_key_of(review["user"])
    existing = yield ReadOp(key)
    yield WriteOp(key, existing + [review["id"]])
    return len(existing) + 1


def movie_movie_reviews(review: Dict[str, Any]):
    """SSF 9: append to the movie's review list."""
    key = movie_reviews_key_of(review["movie"])
    existing = yield ReadOp(key)
    yield WriteOp(key, existing + [review["id"]])
    return len(existing) + 1


def movie_rating(review: Dict[str, Any]):
    """SSF 10: fold the new stars into the movie's rating aggregate."""
    key = rating_key_of(review["movie"])
    agg = yield ReadOp(key)
    updated = {
        "sum": agg["sum"] + review["stars"],
        "count": agg["count"] + 1,
    }
    yield WriteOp(key, updated)
    return updated["sum"] / updated["count"]


def movie_page(inp: Dict[str, Any]):
    """SSF 11: movie page = info + cast + recent reviews."""
    info = yield InvokeOp("movie.info", {"movie": inp["movie"]})
    cast = yield InvokeOp("movie.cast", {"movie": inp["movie"]})
    reviews = yield ReadOp(movie_reviews_key(inp["movie"]))
    return {"info": info, "cast": cast, "reviews": reviews[-5:]}


def movie_info(inp: Dict[str, Any]):
    """SSF 12: movie metadata + rating."""
    record = yield ReadOp(movie_key(inp["movie"]))
    agg = yield ReadOp(rating_key(inp["movie"]))
    rating = agg["sum"] / agg["count"] if agg["count"] else 0.0
    return {"title": record["title"], "rating": rating}


def movie_cast(inp: Dict[str, Any]):
    """SSF 13: cast info."""
    cast = yield ReadOp(cast_key(inp["movie"]))
    return cast


def user_reviews_key_of(user_name: str) -> str:
    return "ureviews" + user_name[len("name"):]


def movie_reviews_key_of(movie_title: str) -> str:
    return "mreviews" + movie_title[len("title"):]


def rating_key_of(movie_title: str) -> str:
    return "rating" + movie_title[len("title"):]


FUNCTIONS = {
    "movie.frontend": movie_frontend,
    "movie.compose": movie_compose,
    "movie.unique_id": movie_unique_id,
    "movie.text": movie_text,
    "movie.user": movie_user,
    "movie.movie_id": movie_movie_id,
    "movie.store_review": movie_store_review,
    "movie.user_reviews": movie_user_reviews,
    "movie.movie_reviews": movie_movie_reviews,
    "movie.rating": movie_rating,
    "movie.page": movie_page,
    "movie.info": movie_info,
    "movie.cast": movie_cast,
}


class MovieReviewWorkload(Workload):
    """Write-leaning thirteen-SSF movie review workflow."""

    name = "movie-review"

    def __init__(self, num_movies: int = NUM_MOVIES,
                 num_users: int = NUM_USERS,
                 compose_fraction: float = 0.7):
        self.num_movies = num_movies
        self.num_users = num_users
        self.compose_fraction = compose_fraction

    def register(self, runtime) -> None:
        for name, fn in FUNCTIONS.items():
            runtime.register(name, fn)

    def populate(self, runtime) -> None:
        runtime.populate(counter_key(), 0)
        for m in range(self.num_movies):
            runtime.populate(movie_key(m), {"title": f"title{m:04d}"})
            runtime.populate(movie_reviews_key(m), [])
            runtime.populate(rating_key(m), {"sum": 0, "count": 0})
            runtime.populate(cast_key(m), [f"actor{m % 37:02d}"])
        for u in range(self.num_users):
            runtime.populate(user_key(u), {"name": f"name{u:04d}"})
            runtime.populate(user_reviews_key(u), [])

    def next_request(self, rng: np.random.Generator) -> Request:
        compose = rng.random() < self.compose_fraction
        return Request(
            "movie.frontend",
            {
                "action": "compose" if compose else "page",
                "movie": int(rng.integers(self.num_movies)),
                "user": int(rng.integers(self.num_users)),
                "text": "a perfectly average film, really",
                "stars": int(rng.integers(1, 6)),
            },
        )

    def read_write_profile(self) -> Tuple[float, float]:
        # compose: 6 reads, 7 writes; page: 5 reads, 0 writes.
        c = self.compose_fraction
        return (6.0 * c + 5.0 * (1 - c), 7.0 * c)
