"""Travel-reservation workload (Section 6.2, adapted from DeathStarBench).

A ten-SSF workflow: users search for nearby hotels by distance and rating
and then make a reservation.  Mirrors DeathStarBench's hotelReservation
decomposition (frontend, search, geo, rate, profile, recommendation, user,
check-availability, reserve, order) on a key-value store.  The mix is
strongly read-intensive — a request performs roughly 13 reads and, on the
reservation path, 3 writes.

Per Section 4.4's best practice, dependencies between SSFs are explicit
invoke edges, so Halfmoon-write's commuting of consecutive writes never
crosses a dependency: each SSF's init record orders it after its parent's
preceding operations.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from ..runtime.ops import InvokeOp, ReadOp, WriteOp
from .base import Request, Workload

NUM_HOTELS = 80
NUM_USERS = 500
NUM_REGIONS = 8


def hotel_key(i: int) -> str:
    return f"hotel{i:03d}"


def geo_key(region: int) -> str:
    return f"geo{region:02d}"


def rate_key(i: int) -> str:
    return f"rate{i:03d}"


def profile_key(i: int) -> str:
    return f"profile{i:03d}"


def user_key(i: int) -> str:
    return f"user{i:03d}"


def availability_key(i: int) -> str:
    return f"avail{i:03d}"


def reservation_key(user: int, seq: int) -> str:
    return f"resv{user:03d}.{seq:06d}"


def recommendation_key(region: int) -> str:
    return f"recommend{region:02d}"


# ---------------------------------------------------------------------------
# The ten SSFs
# ---------------------------------------------------------------------------

def travel_frontend(inp: Dict[str, Any]):
    """SSF 1: entry point — search, recommend, authenticate, reserve."""
    hotels = yield InvokeOp("travel.search", {
        "region": inp["region"],
    })
    yield InvokeOp("travel.recommend", {"region": inp["region"]})
    user_ok = yield InvokeOp("travel.user", {"user": inp["user"]})
    if not user_ok:
        return {"status": "denied"}
    if inp.get("reserve", True) and hotels:
        result = yield InvokeOp("travel.reserve", {
            "user": inp["user"],
            "hotel": hotels[0],
            "resv_seq": inp["resv_seq"],
        })
        return {"status": "reserved", "details": result}
    return {"status": "searched", "hotels": hotels}


def travel_search(inp: Dict[str, Any]):
    """SSF 2: ranked hotel search = geo lookup + rates + profiles."""
    nearby = yield InvokeOp("travel.geo", {"region": inp["region"]})
    rates = yield InvokeOp("travel.rates", {"hotels": nearby})
    ranked = yield InvokeOp("travel.profiles", {
        "hotels": nearby, "rates": rates,
    })
    return ranked


def travel_geo(inp: Dict[str, Any]):
    """SSF 3: hotels near a region (read the geo index)."""
    index = yield ReadOp(geo_key(inp["region"]))
    return index["hotels"][:3]


def travel_rates(inp: Dict[str, Any]):
    """SSF 4: per-hotel nightly rates."""
    rates = {}
    for hotel in inp["hotels"]:
        rates[hotel] = yield ReadOp(rate_key_of(hotel))
    return rates


def travel_profiles(inp: Dict[str, Any]):
    """SSF 5: rank hotels by rating, breaking ties by rate."""
    scored = []
    for hotel in inp["hotels"]:
        profile = yield ReadOp(profile_key_of(hotel))
        scored.append((profile["rating"], -inp["rates"][hotel], hotel))
    scored.sort(reverse=True)
    return [hotel for _, _, hotel in scored]


def travel_recommend(inp: Dict[str, Any]):
    """SSF 6: region-level recommendations."""
    recs = yield ReadOp(recommendation_key(inp["region"]))
    return recs


def travel_user(inp: Dict[str, Any]):
    """SSF 7: authenticate the user."""
    record = yield ReadOp(user_key(inp["user"]))
    return record["active"]


def travel_reserve(inp: Dict[str, Any]):
    """SSF 8: reservation orchestration — availability then order."""
    ok = yield InvokeOp("travel.availability", {"hotel": inp["hotel"]})
    if not ok:
        return {"ok": False}
    order = yield InvokeOp("travel.order", {
        "user": inp["user"],
        "hotel": inp["hotel"],
        "resv_seq": inp["resv_seq"],
    })
    return {"ok": True, "order": order}


def travel_availability(inp: Dict[str, Any]):
    """SSF 9: decrement the hotel's available-room count."""
    avail = yield ReadOp(availability_key_of(inp["hotel"]))
    if avail <= 0:
        return False
    yield WriteOp(availability_key_of(inp["hotel"]), avail - 1)
    return True


def travel_order(inp: Dict[str, Any]):
    """SSF 10: record the reservation and bump the user's trip count."""
    resv = reservation_key(inp["user"], inp["resv_seq"])
    yield WriteOp(resv, {"hotel": inp["hotel"], "user": inp["user"]})
    record = yield ReadOp(user_key(inp["user"]))
    updated = dict(record)
    updated["trips"] = record.get("trips", 0) + 1
    yield WriteOp(user_key(inp["user"]), updated)
    return resv


def rate_key_of(hotel: str) -> str:
    return "rate" + hotel[len("hotel"):]


def profile_key_of(hotel: str) -> str:
    return "profile" + hotel[len("hotel"):]


def availability_key_of(hotel: str) -> str:
    return "avail" + hotel[len("hotel"):]


FUNCTIONS = {
    "travel.frontend": travel_frontend,
    "travel.search": travel_search,
    "travel.geo": travel_geo,
    "travel.rates": travel_rates,
    "travel.profiles": travel_profiles,
    "travel.recommend": travel_recommend,
    "travel.user": travel_user,
    "travel.reserve": travel_reserve,
    "travel.availability": travel_availability,
    "travel.order": travel_order,
}


class TravelReservationWorkload(Workload):
    """Read-intensive ten-SSF travel workflow."""

    name = "travel-reservation"

    def __init__(self, num_hotels: int = NUM_HOTELS,
                 num_users: int = NUM_USERS,
                 num_regions: int = NUM_REGIONS,
                 reserve_fraction: float = 0.6):
        self.num_hotels = num_hotels
        self.num_users = num_users
        self.num_regions = num_regions
        self.reserve_fraction = reserve_fraction
        self._resv_seq = 0

    def register(self, runtime) -> None:
        for name, fn in FUNCTIONS.items():
            runtime.register(name, fn)

    def populate(self, runtime) -> None:
        per_region = max(1, self.num_hotels // self.num_regions)
        for region in range(self.num_regions):
            hotels = [
                hotel_key(i)
                for i in range(
                    region * per_region,
                    min((region + 1) * per_region, self.num_hotels),
                )
            ]
            runtime.populate(geo_key(region), {"hotels": hotels})
            runtime.populate(
                recommendation_key(region), {"top": hotels[:2]}
            )
        for i in range(self.num_hotels):
            runtime.populate(rate_key(i), 80 + (i % 120))
            runtime.populate(profile_key(i), {"rating": 1 + (i * 7) % 5})
            runtime.populate(availability_key(i), 50)
        for u in range(self.num_users):
            runtime.populate(user_key(u), {"active": True, "trips": 0})

    def next_request(self, rng: np.random.Generator) -> Request:
        self._resv_seq += 1
        return Request(
            "travel.frontend",
            {
                "region": int(rng.integers(self.num_regions)),
                "user": int(rng.integers(self.num_users)),
                "reserve": bool(rng.random() < self.reserve_fraction),
                "resv_seq": self._resv_seq,
            },
        )

    def read_write_profile(self) -> Tuple[float, float]:
        # ~13 reads per request; ~3 writes on the reserve path.
        return (13.0, 3.0 * self.reserve_fraction)
