"""Per-request latency decomposition.

The paper's headline claims are latency *decompositions* — Halfmoon
wins by removing log operations from the critical path — so the
harness needs to show where each request's milliseconds go, not just
the end-to-end percentile.

:class:`LatencyBreakdown` accumulates one stage vector per completed
request, built so the stages sum **exactly** to that request's
end-to-end latency:

* in DES mode every simulated millisecond a request spends is either
  gateway queueing, a charged service-call cost kind, logging-layer
  contention wait, or failure-detection delay — the platform feeds all
  of them in;
* in direct mode the cost trace *is* the request latency, entry by
  entry.

Because the per-request sum is exact, the median of the sums equals
the end-to-end median, and per-stage means sum to the end-to-end mean.
The report also attributes the median request across stages
proportionally to the mean stage shares ("median-attributed"), so the
attributed components sum to the end-to-end median by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SimulationError

# -- stage taxonomy ------------------------------------------------------

STAGE_QUEUEING = "queueing"
STAGE_LOG_APPEND = "log_append"
STAGE_LOG_READ = "log_read"
STAGE_STORE = "store"
STAGE_COMPUTE = "compute"
STAGE_RETRIES = "retries"
STAGE_RECOVERY = "recovery"
STAGE_OTHER = "other"

#: Report order.
STAGES = (
    STAGE_QUEUEING,
    STAGE_LOG_APPEND,
    STAGE_LOG_READ,
    STAGE_STORE,
    STAGE_COMPUTE,
    STAGE_RETRIES,
    STAGE_RECOVERY,
    STAGE_OTHER,
)

#: Cost-kind / synthetic-segment label → stage.  The kind strings are
#: the :class:`repro.runtime.services.Cost` labels; they are spelled
#: out literally here to keep this module import-cycle-free (observe
#: must not import the runtime it instruments).
_STAGE_OF: Dict[str, str] = {
    # platform-synthesised segments
    "queue_wait": STAGE_QUEUEING,
    "log_queue_wait": STAGE_QUEUEING,
    "takeover_gap": STAGE_RECOVERY,
    "failure_detection": STAGE_RECOVERY,
    # service-call cost kinds
    "log_append": STAGE_LOG_APPEND,
    "log_append_overlapped": STAGE_LOG_APPEND,
    "log_append_control": STAGE_LOG_APPEND,
    "log_append_background": STAGE_LOG_APPEND,
    "log_read": STAGE_LOG_READ,
    "db_read": STAGE_STORE,
    "db_read_version": STAGE_STORE,
    "db_write": STAGE_STORE,
    "db_write_version": STAGE_STORE,
    "db_cond_write": STAGE_STORE,
    "invoke_overhead": STAGE_COMPUTE,
    "compute": STAGE_COMPUTE,
    # resilience-layer charges
    "retry_backoff": STAGE_RETRIES,
    "service_error": STAGE_RETRIES,
    "service_timeout": STAGE_RETRIES,
}


def stage_of(kind: str) -> str:
    """Map a cost kind or platform segment label to its report stage."""
    return _STAGE_OF.get(kind, STAGE_OTHER)


class LatencyBreakdown:
    """Per-request stage vectors with exact-sum accounting."""

    def __init__(self, name: str = "latency-breakdown"):
        self.name = name
        self._per_stage: Dict[str, List[float]] = {
            stage: [] for stage in STAGES
        }
        self._totals: List[float] = []

    # -- recording ------------------------------------------------------

    def record(self, contributions: Mapping[str, float]) -> None:
        """Add one request's ``{kind_or_segment: ms}`` vector."""
        agg = {stage: 0.0 for stage in STAGES}
        total = 0.0
        for kind, ms in contributions.items():
            if ms < 0:
                raise SimulationError(
                    f"negative stage contribution {kind}={ms}"
                )
            agg[stage_of(kind)] += ms
            total += ms
        for stage in STAGES:
            self._per_stage[stage].append(agg[stage])
        self._totals.append(total)

    def record_entries(
        self,
        entries: Iterable[Tuple[str, float]],
        extra: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Add one request from raw cost-trace ``(kind, ms)`` entries
        plus optional synthetic segments (queue wait, detection)."""
        agg: Dict[str, float] = {}
        for kind, ms in entries:
            agg[kind] = agg.get(kind, 0.0) + ms
        if extra:
            for kind, ms in extra.items():
                agg[kind] = agg.get(kind, 0.0) + ms
        self.record(agg)

    # -- statistics -----------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._totals)

    def stage_samples(self, stage: str) -> List[float]:
        return list(self._per_stage[stage])

    def stage_mean(self, stage: str) -> float:
        values = self._per_stage[stage]
        if not values:
            raise SimulationError(f"breakdown {self.name!r} is empty")
        return float(np.mean(values))

    def stage_p99(self, stage: str) -> float:
        values = self._per_stage[stage]
        if not values:
            raise SimulationError(f"breakdown {self.name!r} is empty")
        return float(np.percentile(values, 99.0))

    def total_mean(self) -> float:
        if not self._totals:
            raise SimulationError(f"breakdown {self.name!r} is empty")
        return float(np.mean(self._totals))

    def total_median(self) -> float:
        if not self._totals:
            raise SimulationError(f"breakdown {self.name!r} is empty")
        return float(np.percentile(self._totals, 50.0))

    def total_p99(self) -> float:
        if not self._totals:
            raise SimulationError(f"breakdown {self.name!r} is empty")
        return float(np.percentile(self._totals, 99.0))

    def stage_share(self, stage: str) -> float:
        """Mean share of end-to-end latency, in [0, 1]."""
        total = self.total_mean()
        if total <= 0:
            return 0.0
        return self.stage_mean(stage) / total

    def median_attributed(self, stage: str) -> float:
        """The stage's slice of the *median* request, attributed
        proportionally to mean stage shares; slices sum exactly to the
        end-to-end median."""
        return self.stage_share(stage) * self.total_median()

    # -- aggregation ----------------------------------------------------

    def merged(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        """Combine two breakdowns (e.g. per-node into fleet-level)."""
        out = LatencyBreakdown(self.name)
        for stage in STAGES:
            out._per_stage[stage] = (
                self._per_stage[stage] + other._per_stage[stage]
            )
        out._totals = self._totals + other._totals
        return out

    # -- reporting ------------------------------------------------------

    def rows(self) -> List[List[object]]:
        """One row per non-empty stage:
        ``[stage, mean, p99, share%, median-attributed]``."""
        out: List[List[object]] = []
        for stage in STAGES:
            mean = self.stage_mean(stage)
            if mean == 0.0 and self.stage_p99(stage) == 0.0:
                continue
            out.append([
                stage,
                mean,
                self.stage_p99(stage),
                100.0 * self.stage_share(stage),
                self.median_attributed(stage),
            ])
        return out


def breakdown_table(
    breakdowns: Mapping[str, LatencyBreakdown],
    title: str = "Latency breakdown",
):
    """Cross-system latency-breakdown :class:`ExperimentTable`.

    ``breakdowns`` maps a system/protocol name to its breakdown.  Each
    system gets one row per active stage plus a ``TOTAL`` row whose
    mean equals the end-to-end mean and whose median-attributed column
    equals the end-to-end median (exact by construction).
    """
    # Imported lazily: harness.report is a leaf module, but the harness
    # package pulls in the platform (which imports repro.observe).
    from ..harness.report import ExperimentTable

    table = ExperimentTable(
        title,
        ["system", "stage", "mean (ms)", "p99 (ms)", "share (%)",
         "median-attr (ms)"],
    )
    for system, breakdown in breakdowns.items():
        if breakdown.count == 0:
            table.add_row(system, "(no samples)", 0.0, 0.0, 0.0, 0.0)
            continue
        for row in breakdown.rows():
            table.add_row(system, *row)
        table.add_row(
            system, "TOTAL",
            breakdown.total_mean(),
            breakdown.total_p99(),
            100.0,
            breakdown.total_median(),
        )
    table.add_note(
        "per-request stage vectors sum exactly to end-to-end latency: "
        "stage means sum to the e2e mean, and the median-attr column "
        "(median request split by mean stage shares) sums to the e2e "
        "median"
    )
    return table
