"""Flight recorder: a bounded ring of recent structured events.

Every distributed system postmortem starts with the same question —
*what happened right before it died?* — and the live compute plane's
most interesting moments (a mid-invocation ``SIGKILL``, a lease expiry,
an audit violation) are precisely the ones a normal log misses, because
the process that knew is gone.  The :class:`FlightRecorder` keeps the
answer cheap and always-on: a fixed-capacity ring buffer of structured
events held in plain Python objects, appended in O(1) with no I/O on
the hot path, and dumped to a JSONL artifact only when a *trigger*
fires (kill detected, lease expired, audit violated, RPC frame/decode
error).

Both the gateway and every worker own one.  Workers can't dump their
own ring when SIGKILLed — that is the point of SIGKILL — so workers
ship their recent ring entries to the gateway piggybacked on telemetry
frames, and the gateway folds the dead worker's last-shipped window
into its own dump.  A dump therefore reconstructs the adversarial
window from both sides of the socket: what the gateway served, and
what the worker believed, up to the last acked operation.

The recorder is clock-agnostic (the owner supplies ``now_fn``) and
deterministic to *record* into; dumping is the only side effect.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Default ring capacity — enough to cover several invocations' worth
#: of per-op events at smoke scale without unbounded growth.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Fixed-capacity ring of ``(seq, ts_ms, kind, fields)`` events."""

    __slots__ = ("name", "capacity", "now_fn", "_ring", "_seq",
                 "_dumped")

    def __init__(self, name: str, now_fn: Callable[[], float],
                 capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.now_fn = now_fn
        self._ring: "deque[Tuple[int, float, str, Dict[str, Any]]]" = (
            deque(maxlen=capacity)
        )
        self._seq = 0
        self._dumped = 0

    # -- recording -------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; O(1), no I/O, oldest entry evicted."""
        self._seq += 1
        self._ring.append((self._seq, self.now_fn(), kind, fields))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (≥ ``len``; the ring forgets)."""
        return self._seq

    @property
    def dumps_written(self) -> int:
        return self._dumped

    # -- reading ---------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """The ring's current contents as plain dicts, oldest first."""
        return [
            {"seq": seq, "ts_ms": ts, "kind": kind, **fields}
            for seq, ts, kind, fields in self._ring
        ]

    def tail(self, since_seq: int) -> List[Dict[str, Any]]:
        """Events with ``seq > since_seq`` — the shipping increment."""
        return [
            {"seq": seq, "ts_ms": ts, "kind": kind, **fields}
            for seq, ts, kind, fields in self._ring
            if seq > since_seq
        ]

    def last(self, kind: str) -> Optional[Dict[str, Any]]:
        """Most recent event of ``kind`` still in the ring, or None."""
        for seq, ts, k, fields in reversed(self._ring):
            if k == kind:
                return {"seq": seq, "ts_ms": ts, "kind": k, **fields}
        return None

    # -- dumping ---------------------------------------------------------

    def dump(
        self,
        directory: str,
        trigger: str,
        meta: Optional[Dict[str, Any]] = None,
        extra_lanes: Optional[Dict[str, List[Dict[str, Any]]]] = None,
    ) -> str:
        """Write the ring (plus any extra lanes) as one JSONL artifact.

        The first line is a header record (``kind: "flightrec"``) naming
        the trigger and carrying caller-supplied metadata; every
        following line is one event, tagged with the lane (recorder
        name) it came from.  Returns the path written.
        """
        os.makedirs(directory, exist_ok=True)
        self._dumped += 1
        path = os.path.join(
            directory,
            f"flightrec-{_slug(self.name)}-{_slug(trigger)}-"
            f"{self._dumped:03d}.jsonl",
        )
        header: Dict[str, Any] = {
            "kind": "flightrec",
            "recorder": self.name,
            "trigger": trigger,
            "ts_ms": self.now_fn(),
            "events_recorded": self._seq,
            "events_in_ring": len(self._ring),
        }
        if meta:
            header["meta"] = meta
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps(_jsonable(header)) + "\n")
            for event in self.events():
                f.write(json.dumps(
                    _jsonable({"lane": self.name, **event})
                ) + "\n")
            for lane, events in (extra_lanes or {}).items():
                for event in events:
                    f.write(json.dumps(
                        _jsonable({"lane": lane, **event})
                    ) + "\n")
        return path


def _slug(text: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in text
    )


def _jsonable(value: Any) -> Any:
    """Best-effort plain-data projection (dumps must never raise)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def read_flightrec(path: str) -> List[Dict[str, Any]]:
    """Load a dump back as a list of dicts (header first)."""
    out: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
