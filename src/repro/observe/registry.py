"""Central labelled metrics registry.

Before this module, every component kept ad-hoc metric fields — the
backend a ``Counter`` here, the platform a ``LatencyRecorder`` there,
the breakers bare ``trips`` ints — and every report had to know where
each one lived.  :class:`MetricsRegistry` unifies the existing
measurement primitives (:mod:`repro.simulation.metrics`) under one
namespace of ``(name, labels)`` keys with a single :meth:`snapshot`
that :class:`~repro.harness.platform.RunResult` carries.

Three ways to get a metric in:

* the factory accessors (:meth:`latency`, :meth:`counters`,
  :meth:`gauge`, :meth:`throughput`, :meth:`series`) get-or-create a
  primitive owned by the registry;
* :meth:`register` adopts an already-constructed metric object, so
  components keep their direct references while reports read the
  registry;
* :meth:`probe` registers a zero-argument callable evaluated at
  snapshot time, for components whose state *is* the metric (breaker
  state machines, cache occupancy, log bytes).

Like the primitives themselves, the registry is simulation-agnostic and
deterministic: it never samples a clock and holds plain Python state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import SimulationError
from ..simulation.metrics import (
    Counter,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)

#: A metric key: name plus sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """One namespace for every metric a run produces."""

    def __init__(self):
        self._metrics: Dict[MetricKey, Any] = {}
        self._probes: Dict[MetricKey, Callable[[], Dict[str, Any]]] = {}

    # -- registration ---------------------------------------------------

    def register(self, name: str, metric: Any, **labels: Any) -> Any:
        """Adopt an existing metric object under ``(name, labels)``.

        Re-registering the *same* object is a no-op (components may be
        rebuilt around a shared registry); a different object under an
        existing key is an error — two writers would shadow each other.
        """
        key = _key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if existing is metric:
                return metric
            raise SimulationError(
                f"metric {_render_key(key)!r} already registered "
                "with a different object"
            )
        self._metrics[key] = metric
        return metric

    def probe(self, name: str, fn: Callable[[], Dict[str, Any]],
              **labels: Any) -> None:
        """Register a snapshot-time callable returning a flat dict."""
        key = _key(name, labels)
        if key in self._metrics or key in self._probes:
            raise SimulationError(
                f"metric {_render_key(key)!r} already registered"
            )
        self._probes[key] = fn

    # -- typed get-or-create accessors ----------------------------------

    def _get_or_create(self, name: str, labels: Dict[str, Any],
                       cls: type, factory: Callable[[], Any]) -> Any:
        key = _key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif not isinstance(metric, cls):
            raise SimulationError(
                f"metric {_render_key(key)!r} is a "
                f"{type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def latency(self, name: str, **labels: Any) -> LatencyRecorder:
        return self._get_or_create(
            name, labels, LatencyRecorder,
            lambda: LatencyRecorder(_render_key(_key(name, labels))),
        )

    def counters(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, labels, Counter, Counter)

    def gauge(self, name: str, start_time_ms: float = 0.0,
              initial_value: float = 0.0, **labels: Any
              ) -> TimeWeightedGauge:
        return self._get_or_create(
            name, labels, TimeWeightedGauge,
            lambda: TimeWeightedGauge(
                _render_key(_key(name, labels)), start_time_ms,
                initial_value,
            ),
        )

    def throughput(self, name: str, **labels: Any) -> ThroughputMeter:
        return self._get_or_create(
            name, labels, ThroughputMeter,
            lambda: ThroughputMeter(_render_key(_key(name, labels))),
        )

    def series(self, name: str, **labels: Any) -> TimeSeries:
        return self._get_or_create(
            name, labels, TimeSeries,
            lambda: TimeSeries(_render_key(_key(name, labels))),
        )

    # -- lookup ---------------------------------------------------------

    def get(self, name: str, **labels: Any) -> Any:
        key = _key(name, labels)
        if key in self._metrics:
            return self._metrics[key]
        raise KeyError(_render_key(key))

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._metrics) or any(
            key[0] == name for key in self._probes
        )

    def __len__(self) -> int:
        return len(self._metrics) + len(self._probes)

    def labelled(self, name: str) -> Dict[MetricKey, Any]:
        """Every registered instance of ``name`` across label sets."""
        return {key: metric for key, metric in self._metrics.items()
                if key[0] == name}

    def merged_latency(self, name: str) -> LatencyRecorder:
        """Combine every labelled :class:`LatencyRecorder` under
        ``name`` into one fleet-level recorder (parity with
        ``LatencyRecorder.merged``)."""
        out = LatencyRecorder(name)
        for _key_, metric in sorted(self.labelled(name).items()):
            if isinstance(metric, LatencyRecorder):
                out = out.merged(metric)
        return out

    # -- snapshot -------------------------------------------------------

    def snapshot(self, now_ms: Optional[float] = None
                 ) -> Dict[str, Dict[str, Any]]:
        """Plain-data summary of every metric, keyed by rendered name.

        ``now_ms`` closes out time-weighted gauges at the given instant
        (pass the simulation clock); omitted, gauges report up to their
        last update.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for key, metric in sorted(self._metrics.items()):
            out[_render_key(key)] = _summarise(metric, now_ms)
        for key, fn in sorted(self._probes.items()):
            out[_render_key(key)] = {"type": "probe", **fn()}
        return out


def _summarise(metric: Any, now_ms: Optional[float]) -> Dict[str, Any]:
    if isinstance(metric, LatencyRecorder):
        if metric.count == 0:
            return {"type": "latency", "count": 0}
        return {
            "type": "latency",
            "count": metric.count,
            "mean_ms": metric.mean(),
            "median_ms": metric.median(),
            "p99_ms": metric.p99(),
        }
    if isinstance(metric, Counter):
        return {"type": "counters", "counts": metric.as_dict()}
    if isinstance(metric, TimeWeightedGauge):
        return {
            "type": "gauge",
            "value": metric.value,
            "max_value": metric.max_value,
            "time_average": metric.time_average(now_ms),
        }
    if isinstance(metric, ThroughputMeter):
        return {
            "type": "throughput",
            "count": metric.count,
            "rate_per_sec": metric.rate_per_sec(),
        }
    if isinstance(metric, TimeSeries):
        return {"type": "timeseries", "points": len(metric.points)}
    return {"type": type(metric).__name__, "repr": repr(metric)}
