"""Prometheus text-format exposition for metric snapshots.

Renders any :meth:`~repro.observe.registry.MetricsRegistry.snapshot`
dict — the plain-data form every ``RunResult.metrics`` carries, sim and
live alike — as Prometheus text exposition format (version 0.0.4), so
a run's metrics can be scraped, pushed to a gateway, or just diffed as
text.  Working from the snapshot rather than the registry keeps this
module dependency-free in both directions: it needs no live objects,
and a snapshot loaded back from JSON renders identically.

Mapping (snapshot ``type`` → samples):

* ``latency``    → ``<name>_ms{quantile=...}`` gauges (mean/p50/p99)
                   plus ``<name>_count``;
* ``counters``   → one ``<name>_total{key=...}`` counter per entry;
* ``gauge``      → ``<name>`` (current), ``<name>_max``,
                   ``<name>_time_avg``;
* ``throughput`` → ``<name>_total`` and ``<name>_rate_per_s``;
* ``timeseries`` → ``<name>_points`` (cardinality only);
* ``probe``      → numeric fields become ``<name>{field=...}`` gauges.

There is no ``promtool`` in the toolchain, so :func:`lint_prom_text`
is a pure-python linter enforcing the exposition grammar (metric/label
name charsets, escaping, ``# TYPE`` placement, float-parseable values,
no duplicate samples) — CI runs it over the live run's export.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One exposition sample line: name, optional {labels}, value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def sanitize_name(name: str) -> str:
    """Coerce an arbitrary metric name into the Prometheus charset."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_RE.match(out):
        out = "_" + out
    return out


def sanitize_label(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not out or not _LABEL_RE.match(out):
        out = "_" + out
    return out


def _escape_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_value(value: Any) -> str:
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _parse_snapshot_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a rendered registry key ``name{k=v,...}`` back apart."""
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


class _Renderer:
    """Accumulates samples grouped by metric family (TYPE-first)."""

    def __init__(self):
        #: family name → (prom type, [ (labels, value) ... ])
        self._families: Dict[
            str, Tuple[str, List[Tuple[Dict[str, str], Any]]]
        ] = {}

    def add(self, family: str, prom_type: str,
            labels: Dict[str, str], value: Any) -> None:
        family = sanitize_name(family)
        if family not in self._families:
            self._families[family] = (prom_type, [])
        self._families[family][1].append((labels, value))

    def render(self) -> str:
        lines: List[str] = []
        for family in sorted(self._families):
            prom_type, samples = self._families[family]
            lines.append(f"# TYPE {family} {prom_type}")
            for labels, value in samples:
                if labels:
                    inner = ",".join(
                        f'{sanitize_label(k)}="{_escape_value(str(v))}"'
                        for k, v in sorted(labels.items())
                    )
                    lines.append(
                        f"{family}{{{inner}}} {_fmt_value(value)}"
                    )
                else:
                    lines.append(f"{family} {_fmt_value(value)}")
        return "\n".join(lines) + "\n"


def prom_text(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    out = _Renderer()
    for key, summary in sorted(snapshot.items()):
        name, labels = _parse_snapshot_key(key)
        kind = summary.get("type")
        if kind == "latency":
            count = summary.get("count", 0)
            out.add(f"{name}_count", "gauge", labels, count)
            if count:
                for stat, field in (("mean", "mean_ms"),
                                    ("p50", "median_ms"),
                                    ("p99", "p99_ms")):
                    if field in summary:
                        out.add(
                            f"{name}_ms", "gauge",
                            {**labels, "quantile": stat},
                            summary[field],
                        )
        elif kind == "counters":
            for entry, count in sorted(
                summary.get("counts", {}).items()
            ):
                out.add(f"{name}_total", "counter",
                        {**labels, "key": entry}, count)
        elif kind == "gauge":
            out.add(name, "gauge", labels, summary.get("value", 0.0))
            if "max_value" in summary:
                out.add(f"{name}_max", "gauge", labels,
                        summary["max_value"])
            if "time_average" in summary:
                out.add(f"{name}_time_avg", "gauge", labels,
                        summary["time_average"])
        elif kind == "throughput":
            out.add(f"{name}_total", "counter", labels,
                    summary.get("count", 0))
            out.add(f"{name}_rate_per_s", "gauge", labels,
                    summary.get("rate_per_sec", 0.0))
        elif kind == "timeseries":
            out.add(f"{name}_points", "gauge", labels,
                    summary.get("points", 0))
        elif kind == "probe":
            for field, value in sorted(summary.items()):
                if field == "type":
                    continue
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    out.add(name, "gauge",
                            {**labels, "field": field}, value)
        # Unknown types are skipped: exposition must stay valid even if
        # a future metric class has no text mapping yet.
    return out.render()


def write_prom_text(snapshot: Dict[str, Dict[str, Any]],
                    path: str) -> str:
    """Render and write; returns the text written."""
    text = prom_text(snapshot)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return text


def lint_prom_text(text: str) -> List[str]:
    """Pure-python exposition linter; returns a list of violations.

    Checks the subset of the format this module can emit (and that a
    scraper actually parses): name/label charsets, quoting, one ``#
    TYPE`` per family before its samples, float-parseable values, and
    no duplicate (name, labels) sample.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    seen: set = set()
    sampled_before_type: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            errors.append(f"line {lineno}: blank line in exposition")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2:
                errors.append(f"line {lineno}: bare comment {line!r}")
            elif parts[1] not in ("TYPE", "HELP"):
                errors.append(
                    f"line {lineno}: unknown comment {parts[1]!r}"
                )
            elif parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed TYPE")
                    continue
                family, prom_type = parts[2], parts[3]
                if not _NAME_RE.match(family):
                    errors.append(
                        f"line {lineno}: bad family name {family!r}"
                    )
                if prom_type not in ("counter", "gauge", "histogram",
                                     "summary", "untyped"):
                    errors.append(
                        f"line {lineno}: bad type {prom_type!r}"
                    )
                if family in typed:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {family!r}"
                    )
                if family in sampled_before_type:
                    errors.append(
                        f"line {lineno}: TYPE for {family!r} after "
                        "its samples"
                    )
                typed[family] = prom_type
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        if name not in typed:
            sampled_before_type.add(name)
        labels_raw = match.group("labels")
        labels: Tuple[Tuple[str, str], ...] = ()
        if labels_raw:
            consumed = _LABEL_PAIR_RE.findall(labels_raw)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != labels_raw:
                errors.append(
                    f"line {lineno}: malformed labels {labels_raw!r}"
                )
                continue
            labels = tuple(sorted(consumed))
            for label, _value in consumed:
                if not _LABEL_RE.match(label):
                    errors.append(
                        f"line {lineno}: bad label name {label!r}"
                    )
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                errors.append(
                    f"line {lineno}: non-numeric value {value!r}"
                )
        if (name, labels) in seen:
            errors.append(
                f"line {lineno}: duplicate sample {name}{{{labels}}}"
            )
        seen.add((name, labels))
    return errors
