"""Distributed observability: trace propagation + telemetry shipping.

The PR 3 observe layer instruments one process; the live compute plane
runs many.  This module is the bridge that makes a multi-process run
*one* observable system:

* **Trace-context propagation.**  A trace context is a plain
  ``(trace_id, span_id)`` pair the gateway mints per invocation and
  carries in a header field on RPC frames.  Workers run a wall-clock
  :class:`~repro.observe.tracing.Tracer` whose spans parent directly
  under the gateway's dispatch span — cross-process parent links work
  because span ids are allocated from *disjoint blocks* of the
  gateway tracer's id space (:func:`reserve span blocks
  <repro.observe.tracing.Tracer.reserve_block>`), so merging needs no
  renumbering and a worker span's ``parent_id`` can point straight at
  a gateway span.

* **Wire codec for spans.**  Finished spans flatten to plain tuples
  (:func:`spans_to_wire`) and are rebuilt verbatim on the gateway
  (:func:`absorb_wire_spans`) — ids, parents, args, and annotations
  preserved, so one Chrome export shows gateway dispatch → worker
  attempt → per-op RPC spans under a single ``trace_id``.

* **Telemetry batching.**  :class:`WorkerTelemetry` (worker side)
  drains finished spans, *incremental* metric deltas, and the flight
  recorder's tail into one picklable batch, shipped piggybacked on
  heartbeats — zero extra RPCs beyond frames the worker already sends,
  and zero frames at all when telemetry is off.  :class:`TelemetrySink`
  (gateway side) folds batches into the gateway registry label-safely:
  every shipped metric gains a ``worker=<id>`` label, so worker series
  never collide with the gateway's own or with each other's.

Clocks: workers timestamp spans with the gateway's monotonic epoch
(``t0`` travels in the spawn args; ``CLOCK_MONOTONIC`` is system-wide
on Linux), so gateway and worker spans share one timeline without any
offset fitting.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..simulation.metrics import (
    Counter,
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)
from .registry import MetricsRegistry
from .tracing import Span, Tracer

#: Span-id block reserved per worker process.  A worker that records
#: more spans than this would collide with the next block; one million
#: spans per worker is far beyond any live run this harness drives.
WORKER_SPAN_BLOCK = 1 << 20

#: A trace context on the wire: ``(trace_id, parent_span_id)``.
TraceContext = Tuple[str, Optional[int]]

#: One span on the wire: ``(trace_id, span_id, parent_id, name,
#: category, start_ms, end_ms_or_None, args, events)`` with events as
#: ``(name, ts_ms, args)`` tuples.
WireSpan = Tuple[str, int, Optional[int], str, str, float,
                 Optional[float], Dict[str, Any],
                 List[Tuple[str, float, Dict[str, Any]]]]


class ParentRef:
    """A parent link to a span that lives in another process.

    ``Tracer.start_span`` only reads ``parent.span_id``; this shim lets
    a worker parent its root span under a gateway span it never sees.
    """

    __slots__ = ("span_id",)

    def __init__(self, span_id: int):
        self.span_id = span_id


def make_worker_tracer(span_base: int) -> Tracer:
    """A tracer allocating ids from a reserved block (see module doc)."""
    tracer = Tracer()
    tracer._next_id = span_base
    return tracer


def span_to_wire(span: Span) -> WireSpan:
    return (
        span.trace_id, span.span_id, span.parent_id, span.name,
        span.category, span.start_ms, span.end_ms, dict(span.args),
        [(e.name, e.ts_ms, dict(e.args)) for e in span.events],
    )


def spans_to_wire(spans: List[Span]) -> List[WireSpan]:
    return [span_to_wire(s) for s in spans]


def absorb_wire_spans(tracer: Tracer, wire: List[WireSpan]) -> int:
    """Rebuild shipped spans into ``tracer`` verbatim (ids preserved).

    Unlike :meth:`Tracer.absorb`, ids are *not* renumbered: workers
    allocate from reserved blocks of this tracer's id space, so the
    shipped ids are already unique here and cross-process parent links
    stay intact.  Returns the number of spans absorbed.
    """
    for (trace_id, span_id, parent_id, name, category, start_ms,
         end_ms, args, events) in wire:
        span = Span(tracer, trace_id, span_id, parent_id, name,
                    category, start_ms, args)
        span.end_ms = end_ms
        for ev_name, ev_ts, ev_args in events:
            span.annotate(ev_name, ev_ts, **ev_args)
        tracer._spans.append(span)
    return len(wire)


# -- metric wire codec ----------------------------------------------------

def _metric_wire(metric: Any, shipped: Dict[int, int]
                 ) -> Optional[Tuple[str, Any]]:
    """One metric's shippable state; ``shipped`` tracks incremental
    high-water marks (samples/points already sent) keyed by ``id()``."""
    if isinstance(metric, LatencyRecorder):
        sent = shipped.get(id(metric), 0)
        samples = metric._samples[sent:]
        shipped[id(metric)] = sent + len(samples)
        if not samples:
            return None
        return ("latency", list(samples))
    if isinstance(metric, Counter):
        counts = metric.as_dict()
        return ("counters", counts) if counts else None
    if isinstance(metric, TimeWeightedGauge):
        if metric._pending:
            metric._integrate_pending()
        return ("gauge", (metric._value, metric._area,
                          metric._last_time, metric._start_time,
                          metric._max_value))
    if isinstance(metric, ThroughputMeter):
        if metric._count == 0:
            return None
        return ("throughput", (metric._count, metric._first_ms,
                               metric._last_ms, metric.min_window_ms))
    if isinstance(metric, TimeSeries):
        sent = shipped.get(id(metric), 0)
        points = metric.points[sent:]
        shipped[id(metric)] = sent + len(points)
        if not points:
            return None
        return ("timeseries", list(points))
    return None


class WorkerTelemetry:
    """Worker-side batcher: spans + metric deltas + flight-recorder tail.

    Built once per worker process; :meth:`batch` is called from the
    heartbeat thread while the main thread keeps invoking, so every
    read is a GIL-atomic snapshot (``list()`` copies) plus per-object
    high-water marks — no locks on the instrumentation hot path.
    """

    def __init__(self, tracer: Optional[Tracer],
                 registry: Optional[MetricsRegistry],
                 flightrec: Optional[Any] = None):
        self.tracer = tracer
        self.registry = registry
        self.flightrec = flightrec
        self._shipped_span_ids: set = set()
        self._metric_marks: Dict[int, int] = {}
        self._flightrec_seq = 0
        self._lock = threading.Lock()

    def batch(self, now_ms: float, final: bool = False
              ) -> Optional[Dict[str, Any]]:
        """Collect everything new since the last call; None if empty.

        ``final`` (the shutdown drain) also ships spans still open —
        an invocation interrupted by shutdown exports as unfinished
        rather than vanishing.
        """
        with self._lock:
            spans: List[WireSpan] = []
            if self.tracer is not None:
                for span in list(self.tracer._spans):
                    if span.span_id in self._shipped_span_ids:
                        continue
                    if span.end_ms is None and not final:
                        continue
                    self._shipped_span_ids.add(span.span_id)
                    spans.append(span_to_wire(span))
            metrics: List[Tuple[str, tuple, str, Any]] = []
            if self.registry is not None:
                for (name, labels), metric in list(
                    self.registry._metrics.items()
                ):
                    wire = _metric_wire(metric, self._metric_marks)
                    if wire is not None:
                        metrics.append((name, labels) + wire)
            events: List[Dict[str, Any]] = []
            if self.flightrec is not None:
                events = self.flightrec.tail(self._flightrec_seq)
                if events:
                    self._flightrec_seq = events[-1]["seq"]
        if not spans and not metrics and not events and not final:
            return None
        return {
            "now_ms": now_ms,
            "spans": spans,
            "metrics": metrics,
            "flightrec": events,
            "final": final,
        }


class TelemetrySink:
    """Gateway-side accumulator for shipped worker telemetry.

    Spans are absorbed straight into the gateway tracer; metrics are
    materialised as real primitives registered under the shipped name
    plus a ``worker=<id>`` label, so the gateway registry's snapshot —
    and therefore ``RunResult.metrics`` and the Prometheus export —
    carries per-worker series next to the gateway's own.
    """

    def __init__(self, tracer: Optional[Tracer],
                 registry: MetricsRegistry):
        self.tracer = tracer
        self.registry = registry
        self.batches = 0
        self.spans_absorbed = 0
        #: worker id → metric key → live primitive.
        self._worker_metrics: Dict[int, Dict[tuple, Any]] = {}
        #: worker id → recent flight-recorder events (bounded).
        self.worker_flightrec: Dict[int, List[Dict[str, Any]]] = {}
        #: worker id → last batch ``now_ms`` (the merge horizon input).
        self.last_now_ms: Dict[int, float] = {}

    def apply(self, worker_id: int, batch: Dict[str, Any]) -> None:
        self.batches += 1
        self.last_now_ms[worker_id] = float(batch.get("now_ms", 0.0))
        if self.tracer is not None and batch.get("spans"):
            self.spans_absorbed += absorb_wire_spans(
                self.tracer, batch["spans"]
            )
        for name, labels, kind, payload in batch.get("metrics", ()):
            self._apply_metric(worker_id, name, labels, kind, payload)
        events = batch.get("flightrec")
        if events:
            lane = self.worker_flightrec.setdefault(worker_id, [])
            lane.extend(events)
            del lane[:-256]

    def _apply_metric(self, worker_id: int, name: str, labels: tuple,
                      kind: str, payload: Any) -> None:
        per_worker = self._worker_metrics.setdefault(worker_id, {})
        key = (name, labels)
        metric = per_worker.get(key)
        label_kwargs = dict(labels)
        label_kwargs["worker"] = worker_id
        if kind == "latency":
            if metric is None:
                metric = per_worker[key] = self.registry.register(
                    name, LatencyRecorder(name), **label_kwargs
                )
            metric._samples.extend(payload)
        elif kind == "counters":
            if metric is None:
                metric = per_worker[key] = self.registry.register(
                    name, Counter(), **label_kwargs
                )
            metric._counts = dict(payload)  # cumulative: replace
        elif kind == "gauge":
            if metric is None:
                metric = per_worker[key] = self.registry.register(
                    name, TimeWeightedGauge(name), **label_kwargs
                )
            (metric._value, metric._area, metric._last_time,
             metric._start_time, metric._max_value) = payload
        elif kind == "throughput":
            if metric is None:
                metric = per_worker[key] = self.registry.register(
                    name, ThroughputMeter(name), **label_kwargs
                )
            (metric._count, metric._first_ms, metric._last_ms,
             _min_window) = payload
        elif kind == "timeseries":
            if metric is None:
                metric = per_worker[key] = self.registry.register(
                    name, TimeSeries(name), **label_kwargs
                )
            metric.points.extend(payload)

    # -- fleet-level merges ----------------------------------------------

    def workers(self) -> List[int]:
        return sorted(self._worker_metrics)

    def worker_metric(self, worker_id: int, name: str) -> Optional[Any]:
        for (metric_name, _labels), metric in self._worker_metrics.get(
            worker_id, {}
        ).items():
            if metric_name == name:
                return metric
        return None

    def merged_latency(self, name: str) -> LatencyRecorder:
        """All workers' recorders under ``name``, as one."""
        out = LatencyRecorder(name)
        for worker_id in self.workers():
            metric = self.worker_metric(worker_id, name)
            if isinstance(metric, LatencyRecorder):
                out = out.merged(metric)
        return out

    def merged_throughput(self, name: str,
                          horizon_ms: Optional[float] = None
                          ) -> ThroughputMeter:
        """All workers' meters merged at one horizon (see
        :meth:`ThroughputMeter.merged` for the clamp semantics)."""
        out = ThroughputMeter(name)
        for worker_id in self.workers():
            metric = self.worker_metric(worker_id, name)
            if isinstance(metric, ThroughputMeter):
                out = out.merged(metric, horizon_ms=horizon_ms)
        return out

    def merged_gauge(self, name: str,
                     horizon_ms: Optional[float] = None
                     ) -> TimeWeightedGauge:
        out = TimeWeightedGauge(name)
        first = True
        for worker_id in self.workers():
            metric = self.worker_metric(worker_id, name)
            if isinstance(metric, TimeWeightedGauge):
                if first:
                    out = metric.merged(
                        TimeWeightedGauge(name,
                                          metric._start_time),
                        horizon_ms=horizon_ms,
                    )
                    first = False
                else:
                    out = out.merged(metric, horizon_ms=horizon_ms)
        return out
