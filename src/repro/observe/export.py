"""Chrome trace-event export.

Serialises a :class:`~repro.observe.tracing.Tracer` into the Chrome
trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``:

* every finished span becomes a complete event (``ph: "X"``) with its
  duration; unfinished spans (an invocation still queued when the run
  ended, an orphan never recovered) are exported as zero-duration
  events flagged ``"unfinished": true`` rather than dropped;
* span annotations and tracer-level instants become thread-scoped
  instant events (``ph: "i"``);
* each trace id (one SSF invocation, or the platform lane) is mapped
  to its own *thread* so Perfetto renders one swim-lane per
  invocation, named via ``thread_name`` metadata events;
* spans carrying a ``proc`` arg (spans shipped from live worker
  processes — see :mod:`repro.observe.distributed`) render under
  their own *process* lane, so a live trace shows the gateway and
  every worker as separate processes on one shared timeline, with the
  same invocation's spans lane-merged by ``trace_id`` within each.

Timestamps: the tracer records simulated milliseconds; the trace-event
format wants microseconds, so values are scaled by 1000.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .tracing import Tracer

#: Process lane for everything that doesn't declare one (the whole
#: simulated deployment, or the live gateway).
_DEFAULT_PROC = "repro"


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten the tracer into a list of trace-event dicts."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[int, str], int] = {}

    def pid_of(proc: str) -> int:
        pid = pids.get(proc)
        if pid is None:
            pid = pids[proc] = len(pids) + 1
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": proc},
            })
        return pid

    def tid_of(pid: int, trace_id: str) -> int:
        tid = tids.get((pid, trace_id))
        if tid is None:
            tid = tids[(pid, trace_id)] = len(tids) + 1
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": trace_id},
            })
        return tid

    pid_of(_DEFAULT_PROC)

    for span in tracer.spans:
        pid = pid_of(str(span.args.get("proc", _DEFAULT_PROC)))
        tid = tid_of(pid, span.trace_id)
        args = dict(span.args)
        end_ms = span.end_ms
        if end_ms is None:
            end_ms = span.start_ms
            args["unfinished"] = True
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_ms * 1000.0,
            "dur": (end_ms - span.start_ms) * 1000.0,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        for event in span.events:
            events.append({
                "name": event.name,
                "cat": span.category,
                "ph": "i",
                "s": "t",
                "ts": event.ts_ms * 1000.0,
                "pid": pid,
                "tid": tid,
                "args": dict(event.args),
            })

    default_pid = pid_of(_DEFAULT_PROC)
    for trace_id, event in tracer.instants:
        events.append({
            "name": event.name,
            "cat": "platform",
            "ph": "i",
            "s": "t",
            "ts": event.ts_ms * 1000.0,
            "pid": default_pid,
            "tid": tid_of(default_pid, trace_id),
            "args": dict(event.args),
        })
    return events


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full trace-event JSON object."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.observe",
            "spans": len(tracer),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write the trace JSON to ``path`` and return the object."""
    trace = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f, indent=1)
    return trace
