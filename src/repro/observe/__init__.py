"""Observability layer: tracing, unified metrics, latency breakdowns.

* :mod:`repro.observe.tracing` — deterministic simulated-clock span
  trees per invocation (``tracer=None`` disables with zero overhead);
* :mod:`repro.observe.registry` — one labelled registry unifying the
  measurement primitives of :mod:`repro.simulation.metrics`;
* :mod:`repro.observe.export` — Chrome trace-event JSON for
  Perfetto / ``chrome://tracing``;
* :mod:`repro.observe.breakdown` — per-request latency decomposition
  with exact-sum stage accounting;
* :mod:`repro.observe.distributed` — cross-process trace-context
  propagation and worker telemetry shipping for the live compute
  plane;
* :mod:`repro.observe.flightrec` — bounded ring buffers of recent
  structured events, dumped as JSONL forensics on chaos triggers;
* :mod:`repro.observe.prom` — Prometheus text-format exposition of
  any registry snapshot, plus a pure-python linter.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from .breakdown import (
    STAGES,
    LatencyBreakdown,
    breakdown_table,
    stage_of,
)
from .distributed import (
    ParentRef,
    TelemetrySink,
    WorkerTelemetry,
    absorb_wire_spans,
    make_worker_tracer,
    spans_to_wire,
)
from .export import chrome_trace, chrome_trace_events, write_chrome_trace
from .flightrec import FlightRecorder, read_flightrec
from .prom import lint_prom_text, prom_text, write_prom_text
from .registry import MetricsRegistry
from .tracing import (
    CAT_ATTEMPT,
    CAT_INVOCATION,
    CAT_PLATFORM,
    CAT_QUEUE,
    CAT_RECOVERY,
    CAT_SERVICE,
    PLATFORM_TRACE_ID,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "CAT_ATTEMPT",
    "CAT_INVOCATION",
    "CAT_PLATFORM",
    "CAT_QUEUE",
    "CAT_RECOVERY",
    "CAT_SERVICE",
    "FlightRecorder",
    "LatencyBreakdown",
    "MetricsRegistry",
    "PLATFORM_TRACE_ID",
    "ParentRef",
    "STAGES",
    "Span",
    "SpanEvent",
    "TelemetrySink",
    "Tracer",
    "WorkerTelemetry",
    "absorb_wire_spans",
    "breakdown_table",
    "chrome_trace",
    "chrome_trace_events",
    "lint_prom_text",
    "make_worker_tracer",
    "prom_text",
    "read_flightrec",
    "spans_to_wire",
    "stage_of",
    "write_chrome_trace",
    "write_prom_text",
]
