"""Observability layer: tracing, unified metrics, latency breakdowns.

* :mod:`repro.observe.tracing` — deterministic simulated-clock span
  trees per invocation (``tracer=None`` disables with zero overhead);
* :mod:`repro.observe.registry` — one labelled registry unifying the
  measurement primitives of :mod:`repro.simulation.metrics`;
* :mod:`repro.observe.export` — Chrome trace-event JSON for
  Perfetto / ``chrome://tracing``;
* :mod:`repro.observe.breakdown` — per-request latency decomposition
  with exact-sum stage accounting.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from .breakdown import (
    STAGES,
    LatencyBreakdown,
    breakdown_table,
    stage_of,
)
from .export import chrome_trace, chrome_trace_events, write_chrome_trace
from .registry import MetricsRegistry
from .tracing import (
    CAT_ATTEMPT,
    CAT_INVOCATION,
    CAT_PLATFORM,
    CAT_QUEUE,
    CAT_RECOVERY,
    CAT_SERVICE,
    PLATFORM_TRACE_ID,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "CAT_ATTEMPT",
    "CAT_INVOCATION",
    "CAT_PLATFORM",
    "CAT_QUEUE",
    "CAT_RECOVERY",
    "CAT_SERVICE",
    "LatencyBreakdown",
    "MetricsRegistry",
    "PLATFORM_TRACE_ID",
    "STAGES",
    "Span",
    "SpanEvent",
    "Tracer",
    "breakdown_table",
    "chrome_trace",
    "chrome_trace_events",
    "stage_of",
    "write_chrome_trace",
]
