"""Deterministic, simulated-clock invocation tracing.

A :class:`Tracer` collects per-invocation :class:`Span` trees: the
gateway queue wait, the worker-slot occupancy, each protocol attempt,
and every log/store service call — with retry attempts, injected
faults, circuit-breaker state transitions, and crash/orphan/takeover
events attached as :class:`SpanEvent` annotations.

Design constraints (both regression-tested):

* **Determinism.**  Tracing must never perturb a run: spans carry
  timestamps the *caller* supplies (simulated or cost-trace virtual
  time), the tracer never reads a wall clock and never touches an RNG
  stream, and no control-flow decision anywhere in the system depends
  on whether a tracer is attached.  Same seed ⇒ bit-identical results
  with tracing on or off.

* **Zero overhead when disabled.**  There is no "disabled tracer"
  object allocating dead spans; the off state is ``tracer = None`` and
  every instrumentation site guards with a single ``is None`` check,
  so the failure-free fast path allocates nothing.

Span identity: ``trace_id`` groups the spans of one logical invocation
(the SSF instance id, which survives crashes, node failures, and
takeover re-dispatch), ``span_id``/``parent_id`` encode the tree.
Export to Chrome trace-event JSON lives in :mod:`repro.observe.export`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SimulationError

# -- span taxonomy (the ``category`` field) ------------------------------

#: Root span of one SSF invocation (arrival to completion).
CAT_INVOCATION = "invocation"
#: Gateway queueing: arrival / re-dispatch until a worker slot is granted.
CAT_QUEUE = "queue"
#: One execution attempt of the protocol (init .. finish or crash).
CAT_ATTEMPT = "attempt"
#: One substrate service call (log append/read, store read/write).
CAT_SERVICE = "service"
#: Recovery machinery: orphaning, lease expiry, takeover re-dispatch.
CAT_RECOVERY = "recovery"
#: Platform-global events (node crashes, restarts, GC cycles).
CAT_PLATFORM = "platform"

#: Lane used by :meth:`Tracer.instant` events that belong to no single
#: invocation (node crashes, lease-detector verdicts).
PLATFORM_TRACE_ID = "platform"


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """A point-in-time annotation attached to a span (or to a trace)."""

    name: str
    ts_ms: float
    args: Dict[str, Any] = field(default_factory=dict)


class Span:
    """One timed operation in an invocation's trace tree."""

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent_id", "name",
        "category", "start_ms", "end_ms", "args", "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start_ms: float,
        args: Dict[str, Any],
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.args = args
        self.events: List[SpanEvent] = []

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            raise SimulationError(f"span {self.name!r} is not finished")
        return self.end_ms - self.start_ms

    def annotate(self, name: str, ts_ms: float, **args: Any) -> None:
        """Attach a point event (retry, fault, breaker trip, crash)."""
        self.events.append(SpanEvent(name, ts_ms, args))

    def finish(self, end_ms: float) -> None:
        if self.end_ms is not None:
            raise SimulationError(
                f"span {self.name!r} finished twice"
            )
        if end_ms < self.start_ms:
            raise SimulationError(
                f"span {self.name!r} ends before it starts "
                f"({end_ms} < {self.start_ms})"
            )
        self.end_ms = end_ms

    def child(self, name: str, category: str, start_ms: float,
              **args: Any) -> "Span":
        """Open a child span in the same trace."""
        return self.tracer.start_span(
            name, category, start_ms, trace_id=self.trace_id,
            parent=self, **args,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (f"{self.duration_ms:.3f}ms" if self.finished
                 else "open")
        return (f"Span({self.name!r}, cat={self.category!r}, "
                f"trace={self.trace_id!r}, {state})")


class Tracer:
    """Collects spans; attach one to a runtime/platform to enable tracing.

    The tracer is append-only and time-agnostic: callers supply every
    timestamp, so it works identically under the DES clock and under
    direct-mode cost-trace virtual time.
    """

    def __init__(self):
        self._spans: List[Span] = []
        #: Trace-level instant events, as ``(trace_id, SpanEvent)``.
        self._instants: List[Tuple[str, SpanEvent]] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------

    def start_span(
        self,
        name: str,
        category: str,
        start_ms: float,
        trace_id: str,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            start_ms=start_ms,
            args=args,
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    def instant(self, name: str, ts_ms: float,
                trace_id: str = PLATFORM_TRACE_ID, **args: Any) -> None:
        """Record a point event not tied to one span (e.g. a node crash
        affects every invocation on the node)."""
        self._instants.append((trace_id, SpanEvent(name, ts_ms, args)))

    # -- introspection --------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    @property
    def instants(self) -> List[Tuple[str, SpanEvent]]:
        return list(self._instants)

    def spans_for(self, trace_id: str) -> List[Span]:
        return [s for s in self._spans if s.trace_id == trace_id]

    def spans_in(self, category: str) -> List[Span]:
        return [s for s in self._spans if s.category == category]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        for trace_id, _event in self._instants:
            seen.setdefault(trace_id, None)
        return list(seen)

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    # -- distributed id allocation --------------------------------------

    def reserve_block(self, size: int) -> int:
        """Reserve ``size`` consecutive span ids and return the first.

        The live compute plane hands each worker process a reserved
        block of this tracer's id space, so spans recorded remotely
        (wall-clock worker tracers, see
        :mod:`repro.observe.distributed`) carry globally unique ids and
        can be absorbed verbatim — cross-process ``parent_id`` links
        included — without the renumbering :meth:`absorb` does.
        """
        if size <= 0:
            raise SimulationError(f"block size must be positive: {size}")
        start = self._next_id
        self._next_id += size
        return start

    # -- merging --------------------------------------------------------

    def absorb(self, other: "Tracer") -> None:
        """Append another tracer's records, renumbering span ids as if
        they had been recorded here directly.

        This is how per-cell tracers from parallel sweep workers merge
        back into the session tracer: absorbing cell tracers in cell
        order reproduces the exact span-id sequence a single shared
        tracer would have assigned, so traced sweeps are bit-identical
        at any ``--jobs`` level.
        """
        offset = self._next_id - 1
        for span in other._spans:
            span.tracer = self
            span.span_id += offset
            if span.parent_id is not None:
                span.parent_id += offset
            self._spans.append(span)
        self._instants.extend(other._instants)
        self._next_id += other._next_id - 1

    def __len__(self) -> int:
        return len(self._spans)
