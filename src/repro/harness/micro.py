"""Microbenchmarks: Table 1 and Figure 10.

* :func:`run_table1` samples the three primitive operations of the
  logging stack — a shared-log append, a raw store read, a raw store
  write — and reports median and p99, mirroring Table 1's measurement of
  Boki's primitives.

* :func:`run_fig10` measures per-operation read and write latency of the
  four systems (Unsafe, Boki, Halfmoon-read, Halfmoon-write) using the
  Section 6.1 setup: a synthetic SSF issuing one read and one write per
  request over 10K objects (8 B keys, 256 B values).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..observe import Tracer
from ..runtime.local import LocalRuntime
from ..runtime.services import Cost
from ..simulation.metrics import LatencyRecorder
from ..workloads.synthetic import ReadWriteMicrobench
from .parallel import SweepCell, pop_crash_notes, run_cells
from .report import ExperimentTable

SYSTEMS = ("unsafe", "boki", "halfmoon-read", "halfmoon-write")


def run_table1(
    config: Optional[SystemConfig] = None, samples: int = 5_000
) -> ExperimentTable:
    """Latency of log, read, and write primitives (Table 1)."""
    config = (config if config is not None else SystemConfig()).validate()
    runtime = LocalRuntime(config, protocol="boki")
    backend = runtime.backend
    recorders = {
        "Log": LatencyRecorder("log"),
        "Read": LatencyRecorder("read"),
        "Write": LatencyRecorder("write"),
    }
    kinds = {
        "Log": Cost.LOG_APPEND,
        "Read": Cost.DB_READ,
        "Write": Cost.DB_WRITE,
    }
    rng = backend.rng.stream("table1")
    for name, recorder in recorders.items():
        for _ in range(samples):
            recorder.record(backend.latency.sample(kinds[name], rng))

    table = ExperimentTable(
        "Table 1: latency of log, read and write operations",
        ["metric", "Log (ms)", "Read (ms)", "Write (ms)"],
    )
    table.add_row(
        "median",
        recorders["Log"].median(),
        recorders["Read"].median(),
        recorders["Write"].median(),
    )
    table.add_row(
        "99%-tile",
        recorders["Log"].p99(),
        recorders["Read"].p99(),
        recorders["Write"].p99(),
    )
    table.add_note(
        "paper: median 1.18 / 1.88 / 2.47 ms; p99 1.91 / 4.60 / 5.86 ms"
    )
    return table


def measure_op_latencies(
    protocol: str,
    config: Optional[SystemConfig] = None,
    requests: int = 1_000,
    num_keys: int = 2_000,
    tracer: Optional[Tracer] = None,
) -> Dict[str, LatencyRecorder]:
    """Per-operation read/write latencies for one system (Figure 10).

    Uses manual sessions so each operation's latency can be isolated from
    the per-invocation init cost (Figure 10 reports operation latency, not
    request latency).
    """
    config = (config if config is not None else SystemConfig()).validate()
    runtime = LocalRuntime(config, protocol=protocol)
    runtime.backend.tracer = tracer
    workload = ReadWriteMicrobench(num_keys=num_keys)
    workload.register(runtime)
    workload.populate(runtime)
    rng = runtime.backend.rng.stream("fig10-requests")

    reads = LatencyRecorder(f"{protocol}-read")
    writes = LatencyRecorder(f"{protocol}-write")
    for _ in range(requests):
        request = workload.next_request(rng)
        session = runtime.open_session(input=request.input)
        session.init()
        before = session.latency_ms
        session.read(request.input["read_key"])
        after_read = session.latency_ms
        session.write(
            request.input["write_key"], request.input["value"]
        )
        after_write = session.latency_ms
        session.finish()
        reads.record(after_read - before)
        writes.record(after_write - after_read)
    runtime.run_gc()
    return {"read": reads, "write": writes}


def run_fig10(
    config: Optional[SystemConfig] = None,
    requests: int = 1_000,
    num_keys: int = 2_000,
    systems: Sequence[str] = SYSTEMS,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentTable]:
    """Figure 10: read/write latency of the four systems.

    Each system is one independent cell, so ``jobs`` parallelises the
    per-system measurement without changing any recorded sample.
    """
    cells = [
        SweepCell(
            key=("fig10", system),
            fn=measure_op_latencies,
            kwargs=dict(protocol=system, config=config,
                        requests=requests, num_keys=num_keys),
        )
        for system in systems
    ]
    results = dict(
        zip(systems, run_cells(cells, jobs=jobs, tracer=tracer))
    )

    tables: Dict[str, ExperimentTable] = {}
    for op, label in [("read", "(a) Read"), ("write", "(b) Write")]:
        table = ExperimentTable(
            f"Figure 10 {label} latency",
            ["system", "median (ms)", "p99 (ms)"],
        )
        for system in systems:
            recorder = results[system][op]
            table.add_row(system, recorder.median(), recorder.p99())
        tables[op] = table

    tables["read"].add_note(
        "expected shape: HM-read ~25-35% below Boki, small overhead over "
        "unsafe; HM-write ~= Boki"
    )
    tables["write"].add_note(
        "expected shape: HM-write ~30-40% below Boki; HM-read ~= Boki"
    )
    for note in pop_crash_notes():
        for table in tables.values():
            table.add_note(note)
    return tables
