"""``python -m repro live``: the exactly-once audit on real processes.

Every prior audit (chaos, failover, storagechaos) ran inside the DES —
simulated interleavings, simulated crashes, simulated clocks.  This
experiment runs the same fig10-style counter workload and the same
ground-truth audit against the ``localhost`` compute plane: real worker
processes invoking through a real socket against the real storage
plane, with a seeded schedule of mid-invocation ``SIGKILL``s, wall-clock
lease-expiry detection, and orphan takeover through protocol replay.

The claim under test is unchanged: boki / halfmoon-read /
halfmoon-write must report **zero** exactly-once violations and zero
storage-consistency anomalies even though workers die with their KV
write durable and their completion unreported; the ``unsafe`` control
must violate on exactly that schedule — if it doesn't, the kills were
not adversarial and the run is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compute import build_compute_plane
from ..compute.worker import WorkloadSpec
from ..config import SystemConfig
from ..observe import Tracer
from ..protocols.registry import PROTOCOL_CLASSES
from ..storageplane.audit import storage_consistency_report
from ..workloads.base import Request
from .failover import CounterWorkload
from .parallel import seed_for
from .platform import RunResult
from .report import ExperimentTable

#: Audited systems: the three exactly-once protocols plus the control.
DEFAULT_SYSTEMS = ("unsafe", "boki", "halfmoon-read", "halfmoon-write")


@dataclass
class LivePoint:
    """Outcome of one live (system) cell."""

    protocol: str
    result: RunResult
    violations: int
    expected_bumps: int
    consistency_anomalies: List[str]
    kills_delivered: int
    workers_spawned: int


def run_live_point(
    protocol: str,
    workers: int = 4,
    kills: int = 3,
    rate_per_s: float = 400.0,
    requests: int = 250,
    lease_ms: float = 400.0,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    fault_rate: float = 0.0,
    crash_f: float = 0.0,
    compute_ms: float = 2.0,
    log_shards: int = 2,
    kv_partitions: int = 2,
    deadline_s: float = 120.0,
    tracer: Optional[Tracer] = None,
    telemetry: Optional[bool] = None,
    flightrec_dir: Optional[str] = None,
    max_inflight: Optional[int] = None,
) -> LivePoint:
    """One live cell: ``requests`` invocations over ``workers``
    processes with ``kills`` seeded mid-invocation SIGKILLs.

    ``telemetry`` defaults to "on iff traced"; ``flightrec_dir``
    directs flight-recorder dumps (and the ``repro top`` discovery
    file) — ``None`` keeps the run artifact-free.  ``max_inflight``
    arms gateway admission control (default: unbounded).
    """
    base = config if config is not None else SystemConfig()
    if seed is not None:
        base = base.with_seed(seed)
    if fault_rate > 0.0:
        base = base.with_fault_rate(fault_rate)
    # Wall-clock lease: heartbeat and poll scale with the lease exactly
    # as in the DES failover sweep, so detection stays a fixed multiple.
    cfg = (
        base.with_node_recovery(
            lease_ms=lease_ms,
            heartbeat_interval_ms=lease_ms / 5.0,
            detector_poll_ms=lease_ms / 20.0,
        )
        .with_storage_plane(
            backend="sharded" if log_shards * kv_partitions > 1
            else "single",
            log_shards=log_shards, kv_partitions=kv_partitions,
        )
    )
    # Per-protocol child seed (parallel-sweep convention): cells are
    # independent, reproducible, and distinct.
    cfg = cfg.with_seed(seed_for(cfg.seed, ("live", protocol))).validate()

    num_keys = int(requests) + 64
    workload_kwargs = dict(
        num_keys=num_keys, read_ratio=0.3, compute_ms=compute_ms
    )
    workload = CounterWorkload(**workload_kwargs)
    spec = WorkloadSpec(
        module="repro.harness.failover",
        qualname="CounterWorkload",
        kwargs=workload_kwargs,
    )

    plane = build_compute_plane(
        "localhost", workload, protocol, config=cfg, tracer=tracer,
        workload_spec=spec, num_workers=workers, kills=kills,
        requests=requests, crash_f=crash_f, deadline_s=deadline_s,
        telemetry=telemetry, flightrec_dir=flightrec_dir,
        max_inflight=max_inflight,
    )

    expected: Dict[str, int] = {key: 0 for key in workload.keys}

    def on_complete(request: Request, latency_ms: float) -> None:
        if request.func_name == "bump":
            expected[request.input] += 1

    plane.on_request_complete = on_complete
    duration_ms = requests * 1000.0 / rate_per_s
    try:
        result = plane.run(rate_per_s, duration_ms)
        # Audit every key through the protocol (gateway-side probe
        # invocation observes committed state) against ground truth —
        # including never-bumped keys, which catch double-applied
        # replays of killed invocations.
        violations = 0
        for key in workload.keys:
            observed = plane.runtime.invoke("probe", key).output
            if observed != expected[key]:
                violations += 1
        report = storage_consistency_report(plane.backend.plane)
        if violations or report["anomalies"]:
            # Forensics for the one outcome the audit exists to catch.
            plane.flightrec.record(
                "audit-violation", protocol=protocol,
                violations=violations,
                anomalies=len(report["anomalies"]),
            )
            plane.dump_flightrecorder("audit-violation", meta={
                "protocol": protocol,
                "violations": violations,
                "anomalies": list(report["anomalies"])[:10],
            })
    finally:
        plane.close()

    return LivePoint(
        protocol=protocol,
        result=result,
        violations=violations,
        expected_bumps=sum(expected.values()),
        consistency_anomalies=list(report["anomalies"]),
        kills_delivered=result.extras.get("kills_delivered", 0),
        workers_spawned=result.extras.get("workers_spawned", workers),
    )


def run_live(
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    workers: int = 4,
    kills: int = 3,
    rate_per_s: float = 400.0,
    requests: int = 250,
    lease_ms: float = 400.0,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    fault_rate: float = 0.0,
    crash_f: float = 0.0,
    compute_ms: float = 2.0,
    deadline_s: float = 120.0,
    tracer: Optional[Tracer] = None,
    telemetry: Optional[bool] = None,
    flightrec_dir: Optional[str] = None,
    points_out: Optional[Dict[str, LivePoint]] = None,
    max_inflight: Optional[int] = None,
) -> ExperimentTable:
    """Live compute-plane audit, one cell per system (run serially:
    each cell owns the machine's worker pool)."""
    table = ExperimentTable(
        f"Live compute plane: {workers} worker processes, "
        f"{kills} SIGKILLs mid-invocation, lease {lease_ms:.0f}ms wall",
        ["system", "recovery", "completed", "kills", "orphans",
         "recovered", "detect p50 (ms)", "takeover p50 (ms)",
         "median (ms)", "p99 (ms)", "rpc p50 (ms)", "rpc p99 (ms)",
         "violations", "anomalies"],
    )
    for system in systems:
        point = run_live_point(
            system, workers=workers, kills=kills, rate_per_s=rate_per_s,
            requests=requests, lease_ms=lease_ms, config=config,
            seed=seed, fault_rate=fault_rate, crash_f=crash_f,
            compute_ms=compute_ms, deadline_s=deadline_s, tracer=tracer,
            telemetry=telemetry, flightrec_dir=flightrec_dir,
            max_inflight=max_inflight,
        )
        if points_out is not None:
            points_out[system] = point
        result = point.result
        detect = result.detection_ms
        takeover = result.takeover_ms
        table.add_row(
            system,
            PROTOCOL_CLASSES[system].recovery_mode,
            result.completed,
            point.kills_delivered,
            result.orphaned_invocations,
            result.recovered_orphans,
            detect.median() if detect is not None and detect.count else 0.0,
            (takeover.median()
             if takeover is not None and takeover.count else 0.0),
            result.median_ms,
            result.p99_ms,
            result.extras.get("rpc_p50_ms") or 0.0,
            result.extras.get("rpc_p99_ms") or 0.0,
            point.violations,
            len(point.consistency_anomalies),
        )
        for note in per_worker_notes(system, result):
            table.add_note(note)
        if max_inflight is not None:
            table.add_note(
                f"{system}: admission bound {max_inflight} in flight, "
                f"shed {result.extras.get('requests_shed', 0)} requests"
            )
    table.add_note(
        "real processes + wall clocks: logged protocols must show 0 "
        "violations / 0 anomalies; the unsafe control must violate"
    )
    return table


def per_worker_notes(system: str, result: RunResult) -> List[str]:
    """Per-worker forensic lines for the live report: which workers
    were killed, how fast each death was detected, and each worker's
    RPC round-trip percentiles (from shipped telemetry)."""
    notes: List[str] = []
    for row in result.extras.get("per_worker", ()):
        parts = [f"inv={row.get('invocations', 0)}"]
        if row.get("killed"):
            detect = row.get("detection_ms")
            parts.append(
                "killed, detected in "
                + (f"{detect:.1f}ms" if detect is not None else "never")
            )
        if row.get("rpc_p50_ms") is not None:
            parts.append(
                f"rpc p50/p99 {row['rpc_p50_ms']:.2f}/"
                f"{row['rpc_p99_ms']:.2f}ms"
            )
        if len(parts) > 1 or row.get("killed"):
            notes.append(
                f"{system} worker#{row.get('worker')}: "
                + ", ".join(parts)
            )
    return notes


def audit_live_points(points: Dict[str, LivePoint]) -> List[str]:
    """Machine-checkable acceptance: returns a list of failures."""
    failures: List[str] = []
    for system, point in points.items():
        safe = system != "unsafe"
        if safe and point.violations:
            failures.append(
                f"{system}: {point.violations} exactly-once violations"
            )
        if safe and point.consistency_anomalies:
            failures.append(
                f"{system}: {len(point.consistency_anomalies)} "
                "consistency anomalies"
            )
        if point.result.extras.get("aborted"):
            failures.append(
                f"{system}: run aborted "
                f"({point.result.extras['aborted']})"
            )
    unsafe = points.get("unsafe")
    if unsafe is not None and unsafe.kills_delivered > 0:
        if unsafe.violations == 0:
            failures.append(
                "unsafe control survived the kill schedule — the kills "
                "were not adversarial (audit is vacuous)"
            )
    return failures


__all__ = [
    "DEFAULT_SYSTEMS",
    "LivePoint",
    "audit_live_points",
    "per_worker_notes",
    "run_live",
    "run_live_point",
]
