"""Result tables: a tiny structured container plus text rendering.

Every experiment in the harness returns an :class:`ExperimentTable`, so
benchmarks can both assert on the numbers and print the same rows the
paper reports, and ``examples/reproduce_paper.py`` can assemble
EXPERIMENTS.md from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentTable:
    name: str                      # e.g. "Figure 10(a): read latency"
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row width {len(values)} != header width "
                f"{len(self.headers)}"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, header: str) -> List[Any]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def lookup(self, match: Dict[str, Any], header: str) -> Any:
        """Value of ``header`` in the first row matching all of ``match``."""
        target = self.headers.index(header)
        for row in self.rows:
            if all(row[self.headers.index(h)] == v
                   for h, v in match.items()):
                return row[target]
        raise KeyError(f"no row matching {match!r}")

    def render(self, float_fmt: str = "{:.2f}") -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_fmt.format(value)
            return str(value)

        cells = [self.headers] + [
            [fmt(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells)
            for i in range(len(self.headers))
        ]
        lines = [f"## {self.name}"]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_markdown(self, float_fmt: str = "{:.2f}") -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_fmt.format(value)
            return str(value)

        lines = [f"### {self.name}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"*{note}*")
        return "\n".join(lines)
