"""Recovery-cost experiment (Section 7).

Sweeps the per-round crash probability ``f`` and compares mean request
latency of Halfmoon (with the protocol matched to the workload) against
Boki.  Per the Bernoulli analysis, Halfmoon's failure-free advantage ``x``
(~30% in Figure 10) means it keeps winning until ``f`` approaches ``x`` —
far beyond real-world failure rates; the paper's technical report
validates a win even at f = 40% because symmetric replay is not actually
free.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..config import SystemConfig
from ..runtime.failures import BernoulliCrashes
from ..runtime.local import LocalRuntime
from ..simulation.metrics import LatencyRecorder
from ..workloads.synthetic import MixedRatioWorkload
from .report import ExperimentTable


def run_recovery_point(
    protocol: str,
    f: float,
    read_ratio: float = 0.5,
    config: Optional[SystemConfig] = None,
    requests: int = 400,
    num_keys: int = 500,
) -> LatencyRecorder:
    """Mean latency of one system at crash rate ``f`` (direct mode)."""
    config = (config if config is not None else SystemConfig()).validate()
    runtime = LocalRuntime(config, protocol=protocol)
    runtime.crash_policy = BernoulliCrashes(
        f, runtime.backend.rng.stream("crashes"), horizon=24
    )
    workload = MixedRatioWorkload(read_ratio, num_keys=num_keys)
    workload.register(runtime)
    workload.populate(runtime)
    rng = runtime.backend.rng.stream("recovery-requests")

    recorder = LatencyRecorder(f"{protocol}@f={f}")
    for _ in range(requests):
        request = workload.next_request(rng)
        result = runtime.invoke(request.func_name, request.input)
        recorder.record(result.latency_ms)
    return recorder


def run_recovery_sweep(
    f_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    read_ratio: float = 0.5,
    systems: Sequence[str] = ("boki", "halfmoon-write"),
    config: Optional[SystemConfig] = None,
    requests: int = 400,
) -> ExperimentTable:
    """Section 7: mean latency vs per-round failure rate."""
    table = ExperimentTable(
        f"Section 7: recovery cost (read ratio {read_ratio})",
        ["system", "f", "mean (ms)", "median (ms)", "p99 (ms)"],
    )
    for system in systems:
        for f in f_values:
            recorder = run_recovery_point(
                system, f, read_ratio, config, requests
            )
            table.add_row(
                system, f, recorder.mean(), recorder.median(),
                recorder.p99(),
            )
    table.add_note(
        "expected shape: Halfmoon below Boki across realistic f; the gap "
        "narrows as f grows because Halfmoon replays log-free operations"
    )
    return table
