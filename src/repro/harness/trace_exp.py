"""One fully traced DES run: the ``python -m repro trace`` command.

Runs a single (protocol, rate, read-ratio) operating point of the
synthetic mixed workload with a :class:`~repro.observe.tracing.Tracer`
attached, optionally crashing a node mid-run so the trace shows the
whole recovery pipeline (orphaning, lease expiry, takeover
re-dispatch).  The caller gets the :class:`RunResult` — including the
per-request latency breakdown and the metrics-registry snapshot — plus
the tracer for Chrome trace-event export.

With ``tracing=False`` the identical run executes with ``tracer=None``;
the regression-tested guarantee is that every number in the result is
bit-identical either way (tracing never perturbs the simulation).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import SystemConfig
from ..observe import Tracer, breakdown_table
from ..workloads.synthetic import MixedRatioWorkload
from .platform import RunResult, SimPlatform
from .report import ExperimentTable


def run_trace(
    protocol: str = "halfmoon-read",
    rate_per_s: float = 150.0,
    duration_ms: float = 5_000.0,
    read_ratio: float = 0.5,
    warmup_ms: float = 0.0,
    crash_node: Optional[int] = None,
    crash_at_ms: Optional[float] = None,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    num_keys: int = 1_000,
    tracing: bool = True,
) -> Tuple[RunResult, Optional[Tracer]]:
    """Run one DES operating point, returning the result and the tracer
    (``None`` when ``tracing=False``)."""
    base = config if config is not None else SystemConfig()
    if seed is not None:
        base = base.with_seed(seed)
    if crash_at_ms is not None:
        # A crash without recovery would strand its orphans forever;
        # enable lease-based detection so the trace shows the takeover.
        base = base.with_node_recovery(
            lease_ms=500.0,
            heartbeat_interval_ms=100.0,
            detector_poll_ms=25.0,
        )
    cfg = base.validate()
    tracer = Tracer() if tracing else None
    workload = MixedRatioWorkload(read_ratio, num_keys=num_keys)
    platform = SimPlatform(workload, protocol, cfg, tracer=tracer)
    if crash_at_ms is not None:
        platform.schedule_node_crash(
            crash_at_ms, crash_node if crash_node is not None else 0
        )
    result = platform.run(rate_per_s, duration_ms, warmup_ms=warmup_ms)
    return result, tracer


def trace_summary_table(result: RunResult) -> ExperimentTable:
    """Headline numbers of a traced run (identical tracing on or off)."""
    table = ExperimentTable(
        f"Trace run: {result.protocol} / {result.workload}",
        ["metric", "value"],
    )
    table.add_row("offered (req/s)", result.offered_rate_per_s)
    table.add_row("completed", result.completed)
    table.add_row("median (ms)", result.median_ms)
    table.add_row("p99 (ms)", result.p99_ms)
    table.add_row("crashed attempts", result.crashed_attempts)
    table.add_row("faulted attempts", result.faulted_attempts)
    table.add_row("node crashes", result.node_crashes)
    table.add_row("orphaned", result.orphaned_invocations)
    table.add_row("recovered orphans", result.recovered_orphans)
    return table


def trace_breakdown_table(result: RunResult) -> ExperimentTable:
    """The run's per-stage latency decomposition as a report table."""
    return breakdown_table(
        {result.protocol: result.breakdown},
        "Latency breakdown (stages sum to end-to-end latency)",
    )
