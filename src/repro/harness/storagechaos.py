"""Storage-chaos experiment: kill storage components under load.

The failover experiment kills *function nodes*; this one kills the
storage plane itself — the metalog sequencer, individual log-shard
replicas, and KV partitions — and severs worker↔shard / metalog↔shard
links on a seeded schedule, while instance crashes (Bernoulli, as in
the chaos experiment) run underneath.  Each cell of the grid

    component killed × protocol × replication factor

drives the failover counter workload through the DES platform, fires
the component's crash/recovery events mid-run via
:class:`~repro.recovery.StorageChaosController`, heals the plane, and
then runs two audits:

* **exactly-once** — every completed ``bump`` increments a computable
  ground truth; after healing, every key is probed through the
  protocol.  The logged protocols must report **zero** violations in
  every cell; the unsafe baseline is the control that proves the
  counter can fire.
* **storage consistency** — :func:`storage_consistency_report` checks
  stream integrity, refcounts, trim directories, replica agreement and
  liveness, and partition rebuilds are diffed key-by-key against a
  pre-crash snapshot.  ``anomalies`` must come back empty.

Replication=1 is the paper-faithful default (Halfmoon delegates
storage-tier durability to Boki's log / DynamoDB); R=3 shows the same
protocols riding through replica loss without even a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..observe import Tracer
from ..recovery import StorageChaosController
from ..runtime.failures import BernoulliCrashes, NoCrashes
from ..storageplane import storage_consistency_report
from .failover import CounterWorkload
from .parallel import SweepCell, pop_crash_notes, run_cells, seed_for
from .platform import RunResult, SimPlatform
from .report import ExperimentTable

#: Grid axes.  ``netsplit`` cells arm the seeded link-partition
#: schedule instead of killing a component.
DEFAULT_COMPONENTS = ("metalog", "shard-replica", "partition", "netsplit")
DEFAULT_SYSTEMS = ("unsafe", "boki", "halfmoon-read", "halfmoon-write")
EXACTLY_ONCE_SYSTEMS = ("boki", "halfmoon-read", "halfmoon-write")
DEFAULT_REPLICATIONS = (1, 3)
#: Sequencing strategies to chaos-test.  ``("monolith",)`` keeps the
#: default grid (and its per-cell seeds) bit-identical to the
#: pre-sequencer-axis sweep; ``--sequencers monolith batched
#: leased-ranges`` proves the group-commit and leased-range paths keep
#: exactly-once through metalog failover too.
DEFAULT_SEQUENCERS = ("monolith",)


@dataclass
class StorageChaosPoint:
    """Outcome of one (system, component, replication) chaos cell."""

    protocol: str
    component: str
    replication: int
    result: RunResult
    #: Keys whose audited value disagrees with the ground truth.
    violations: int
    expected_bumps: int
    #: Plane invariant violations found after healing (must be empty).
    anomalies: List[str]
    #: Key-level partition rebuild diffs (must be empty).
    rebuild_diffs: List[str]
    #: Controller event log + failover/rebuild counts.
    chaos: Dict[str, Any]
    #: Storage-side injected fault counts, by component label.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Sequencing strategy the cell's metalog ran under.
    sequencer: str = "monolith"

    @property
    def fenced_appends(self) -> int:
        return self.chaos.get("fenced_appends", 0)

    @property
    def rediscoveries(self) -> int:
        return self.result.counters.get("epoch_rediscoveries", 0)

    @property
    def unavailable_ops(self) -> int:
        return self.result.counters.get("storage_unavailable_ops", 0)

    @property
    def rebuilds(self) -> int:
        return (self.chaos.get("shard_rebuilds", 0)
                + self.chaos.get("partition_rebuilds", 0))


def _chaos_config(
    base: SystemConfig,
    component: str,
    replication: int,
    log_shards: int,
    kv_partitions: int,
    duration_ms: float,
    storage_fault_rate: float,
    netsplit_windows: int,
    sequencer: str = "monolith",
) -> SystemConfig:
    chaos: Dict[str, Any] = dict(
        shard_error_rate=storage_fault_rate * 0.5,
        shard_timeout_rate=storage_fault_rate * 0.5,
        partition_error_rate=storage_fault_rate * 0.5,
        partition_timeout_rate=storage_fault_rate * 0.5,
    )
    if component == "netsplit":
        chaos.update(
            partition_windows=netsplit_windows,
            partition_horizon_ms=duration_ms,
        )
    cfg = (
        base.with_storage_plane(
            backend="sharded",
            log_shards=log_shards,
            kv_partitions=kv_partitions,
            replication=replication,
            sequencer=sequencer,
        )
        .with_storage_chaos(**chaos)
    )
    # A whole-component outage lasts hundreds of milliseconds while the
    # circuit breaker fails attempts fast; with the default 1ms
    # re-dispatch delay an invocation can burn its entire attempt
    # budget inside the outage window.  Space attempt-level retries so
    # the budget spans any recovery in this experiment's schedule.
    cfg = replace(
        cfg, failures=replace(cfg.failures, detection_delay_ms=25.0)
    )
    return cfg.validate()


def run_storagechaos_point(
    protocol: str,
    component: str,
    replication: int = 1,
    crash_at_ms: float = 1_000.0,
    recover_after_ms: float = 400.0,
    rate_per_s: float = 400.0,
    duration_ms: float = 3_000.0,
    drain_ms: float = 8_000.0,
    log_shards: int = 2,
    kv_partitions: int = 2,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    crash_f: float = 0.1,
    crash_horizon: int = 6,
    storage_fault_rate: float = 0.01,
    netsplit_windows: int = 4,
    compute_ms: float = 6.0,
    sequencer: str = "monolith",
    tracer: Optional[Tracer] = None,
) -> StorageChaosPoint:
    """One cell: kill ``component`` at ``crash_at_ms``, recover, audit.

    Instance crashes run underneath at ``crash_f`` (the unsafe control
    needs an effect-duplicating fault class — storage faults alone are
    omission-only and can never double-apply), and every cell keeps the
    storage-side injection points warm at ``storage_fault_rate``.
    """
    if component not in DEFAULT_COMPONENTS:
        raise ValueError(f"unknown storage component {component!r}")
    base = config if config is not None else SystemConfig()
    if seed is not None:
        base = base.with_seed(seed)
    cfg = _chaos_config(
        base, component, replication, log_shards, kv_partitions,
        duration_ms, storage_fault_rate, netsplit_windows,
        sequencer=sequencer,
    )

    num_keys = int(rate_per_s * duration_ms / 1000.0) * 2 + 64
    workload = CounterWorkload(num_keys=num_keys, compute_ms=compute_ms)
    platform = SimPlatform(workload, protocol, config=cfg, tracer=tracer)
    if crash_f > 0.0:
        platform.runtime.crash_policy = BernoulliCrashes(
            crash_f,
            platform.runtime.backend.rng.stream("storage-chaos-crashes"),
            horizon=crash_horizon,
        )

    expected: Dict[str, int] = {key: 0 for key in workload.keys}

    def on_complete(request, latency_ms: float) -> None:
        if request.func_name == "bump":
            expected[request.input] += 1

    platform.on_request_complete = on_complete

    controller = StorageChaosController(platform)
    if component == "metalog":
        controller.schedule_sequencer_crash(crash_at_ms, recover_after_ms)
    elif component == "shard-replica":
        controller.schedule_shard_crash(
            crash_at_ms, shard_id=0, recover_after_ms=recover_after_ms
        )
    elif component == "partition":
        controller.schedule_partition_crash(
            crash_at_ms, index=0, rebuild_after_ms=recover_after_ms
        )
    # "netsplit": the link windows are armed in the config; nothing to
    # kill — the schedule itself is the chaos.

    result = platform.run(rate_per_s, duration_ms, drain_ms=drain_ms)

    # Heal whatever is still down, then audit the plane's invariants.
    controller.heal()
    consistency = storage_consistency_report(
        platform.runtime.backend.plane
    )
    anomalies = list(consistency["anomalies"])

    # Quiesce chaos for the exactly-once audit: probes observe committed
    # state, so faulting the auditor tests nothing — and a direct-mode
    # probe starts at t≈0, where it could sit pinned inside a link
    # window and burn its whole attempt budget.  Grab the injected
    # counts first; the run's chaos is what the point reports.
    injector = platform.runtime.backend.storage_faults
    platform.runtime.backend.storage_faults = None
    platform.runtime.crash_policy = NoCrashes()

    # Exactly-once audit: probe every key through the protocol.
    violations = 0
    for key in workload.keys:
        observed = platform.runtime.invoke("probe", key).output
        if observed != expected[key]:
            violations += 1
    return StorageChaosPoint(
        protocol=protocol,
        component=component,
        replication=replication,
        result=result,
        violations=violations,
        expected_bumps=sum(expected.values()),
        anomalies=anomalies,
        rebuild_diffs=list(controller.rebuild_diffs),
        chaos=controller.report(),
        injected=dict(injector.injected) if injector is not None else {},
        sequencer=sequencer,
    )


def run_storagechaos_sweep(
    components: Sequence[str] = DEFAULT_COMPONENTS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    replications: Sequence[int] = DEFAULT_REPLICATIONS,
    sequencers: Sequence[str] = DEFAULT_SEQUENCERS,
    crash_at_ms: float = 1_000.0,
    recover_after_ms: float = 400.0,
    rate_per_s: float = 400.0,
    duration_ms: float = 3_000.0,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    crash_f: float = 0.1,
    storage_fault_rate: float = 0.01,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """Component × system × replication (× sequencer) grid under
    storage chaos.

    Per-cell seeds derive through :func:`seed_for` from the sweep seed
    and the cell key, so the grid is decorrelated and — like every
    sweep — bit-identical at any ``--jobs`` count.  ``monolith`` cells
    keep the historical key (no sequencer element), so the default grid
    is byte-identical to the pre-sequencer-axis sweep; non-monolith
    cells append the strategy name to the key and draw fresh seeds.
    """
    base_seed = seed if seed is not None else (
        config.seed if config is not None else SystemConfig().seed
    )
    table = ExperimentTable(
        "Storage chaos: component killed at "
        f"t={crash_at_ms:.0f}ms, recovered +{recover_after_ms:.0f}ms "
        f"(instance crash f={crash_f})",
        ["system", "component", "R", "seq", "completed", "fenced",
         "rediscover", "unavail ops", "rebuilds", "anomalies",
         "violations"],
    )
    grid = [
        (sequencer, replication, system, component)
        for sequencer in sequencers
        for replication in replications
        for system in systems
        for component in components
    ]
    cells = []
    for sequencer, replication, system, component in grid:
        key = ("storagechaos", system, component, replication)
        if sequencer != "monolith":
            key = key + (sequencer,)
        cells.append(SweepCell(
            key=key,
            fn=run_storagechaos_point,
            kwargs=dict(
                protocol=system, component=component,
                replication=replication,
                crash_at_ms=crash_at_ms,
                recover_after_ms=recover_after_ms,
                rate_per_s=rate_per_s, duration_ms=duration_ms,
                config=config, seed=seed_for(base_seed, key),
                crash_f=crash_f,
                storage_fault_rate=storage_fault_rate,
                sequencer=sequencer,
            ),
        ))
    points = run_cells(cells, jobs=jobs, tracer=tracer)
    for (sequencer, replication, system, component), point in zip(
            grid, points):
        table.add_row(
            system, component, replication, sequencer,
            point.result.completed, point.fenced_appends,
            point.rediscoveries, point.unavailable_ops,
            point.rebuilds,
            len(point.anomalies) + len(point.rebuild_diffs),
            point.violations,
        )
    table.add_note(
        "expected: zero violations and zero anomalies for every logged "
        "protocol in every cell; the unsafe baseline violates under the "
        "composed instance crashes"
    )
    if tuple(sequencers) != ("monolith",):
        table.add_note(
            "seq = metalog sequencing strategy; batched flushes its "
            "group-commit buffer before every failover and leased-"
            "ranges discards epoch-stale blocks, so the exactly-once "
            "audit must stay clean under all strategies"
        )
    table.add_note(
        "fenced = appends rejected by epoch fencing after metalog "
        "failover; rediscover = leader rediscoveries those triggered; "
        "unavail ops = operations rejected before effect while a "
        "component was down"
    )
    for note in pop_crash_notes():
        table.add_note(note)
    return table
