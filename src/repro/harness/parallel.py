"""Parallel sweep executor: independent cells over a process pool.

Every sweep in the harness (Figures 10-13, the chaos, failover, and
shard-scaling experiments) is a grid of *independent* cells: each cell
builds its own runtime/platform from a :class:`~repro.config.SystemConfig`
and consumes only its own RNG streams.  That independence is what makes
the sweeps parallelisable without touching determinism — this module
exploits it.

Contract (regression-tested byte-for-byte):

* **Bit-identity across job counts.**  ``run_cells(cells, jobs=N)``
  returns exactly the payloads ``jobs=1`` returns, in cell order.
  Workers receive pickled cells, execute them in isolated processes,
  and the parent reassembles results in submission order
  (``ProcessPoolExecutor.map`` preserves it).  Nothing about a cell's
  inputs depends on which worker runs it or when.

* **Tracing composes.**  When a parent tracer is supplied, every cell
  — serial or parallel — runs against a *fresh* child
  :class:`~repro.observe.Tracer` which the parent absorbs in cell
  order.  :meth:`Tracer.absorb` renumbers span ids as if the spans had
  been recorded directly on the parent, so the merged trace is
  identical to the one a single shared tracer would have produced.

* **Seed derivation.**  :func:`seed_for` derives a per-cell seed from
  the sweep's base seed and the cell key by hashing, so cells are
  decorrelated without any ordering dependence: the derived seed is a
  pure function of ``(base_seed, key)``, never of cell position or
  worker id.
"""

from __future__ import annotations

import hashlib
import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..observe import Tracer

#: Crash notes from the most recent :func:`run_cells` call (a worker
#: process died and its cells were re-run serially).  Sweeps surface
#: these in their report tables via :func:`pop_crash_notes`.
_LAST_CRASH_NOTES: List[str] = []


def pop_crash_notes() -> List[str]:
    """Return and clear the crash notes from the last sweep."""
    notes = list(_LAST_CRASH_NOTES)
    _LAST_CRASH_NOTES.clear()
    return notes


class SweepInterrupted(SimulationError):
    """A sweep was cut short by SIGINT/SIGTERM mid-run.

    Carries how far the sweep got so the CLI can print a partial-result
    summary instead of a stacked traceback.
    """

    def __init__(self, completed: int, total: int):
        super().__init__(
            f"sweep interrupted: {completed}/{total} cells completed"
        )
        self.completed = completed
        self.total = total


def default_jobs() -> int:
    """Default worker count: all cores but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def seed_for(base_seed: int, cell_key: Any) -> int:
    """Deterministic per-cell seed: a pure function of base seed + key.

    Uses blake2b over the repr of the key, so any hashable/reprable
    key (tuples of shard counts, rates, system names...) works and the
    derivation is stable across processes and Python runs (unlike
    ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(
        f"{base_seed}|{cell_key!r}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % (2**31 - 1)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work.

    ``fn`` must be a module-level callable (workers import it by
    reference) and ``kwargs`` must pickle.  If the sweep is traced,
    ``fn`` must accept a ``tracer`` keyword — the executor injects a
    fresh child tracer per cell.
    """

    key: Any
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)


def _execute_cell(task: Tuple[SweepCell, bool]) -> Tuple[Any, Any]:
    """Worker entry point: run one cell, returning (result, tracer).

    Module-level so it pickles into pool workers; the child tracer is
    created *inside* the worker and shipped back whole.
    """
    cell, traced = task
    if traced:
        child = Tracer()
        return cell.fn(**dict(cell.kwargs, tracer=child)), child
    return cell.fn(**cell.kwargs), None


def run_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> List[Any]:
    """Execute ``cells`` and return their results in cell order.

    ``jobs=None`` or ``jobs=1`` runs inline (no pool, no pickling);
    ``jobs=N`` fans out over a :class:`ProcessPoolExecutor` with
    ``min(N, len(cells))`` workers.  Either way the returned list is
    ordered like ``cells`` and — given cells that only consume their
    own inputs — bit-identical across job counts.
    """
    jobs = 1 if jobs is None else int(jobs)
    if jobs < 1:
        raise SimulationError(f"jobs must be >= 1, got {jobs}")
    _LAST_CRASH_NOTES.clear()
    traced = tracer is not None
    tasks = [(cell, traced) for cell in cells]
    if jobs == 1 or len(cells) <= 1:
        outputs = [_execute_cell(task) for task in tasks]
    else:
        outputs = _run_pool(tasks, min(jobs, len(cells)))
    results: List[Any] = []
    for result, child in outputs:
        if traced and child is not None:
            tracer.absorb(child)
        results.append(result)
    return results


def _run_pool(
    tasks: List[Tuple[SweepCell, bool]], workers: int
) -> List[Tuple[Any, Any]]:
    """Fan tasks over a process pool, surviving worker death.

    Cells are submitted individually (not ``pool.map``) so a child
    process dying — OOM kill, segfault, stray ``SIGKILL`` — breaks only
    the pool, not the sweep: every cell without a result is re-run
    serially once and the incident is recorded for the sweep report.
    Results are reassembled in submission order, so output stays
    bit-identical to the serial path.  ``KeyboardInterrupt`` drains
    in-flight cells and raises :class:`SweepInterrupted` with progress.
    """
    outputs: List[Optional[Tuple[Any, Any]]] = [None] * len(tasks)
    done = [False] * len(tasks)
    broken: Optional[str] = None
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {
            pool.submit(_execute_cell, task): index
            for index, task in enumerate(tasks)
        }
        try:
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outputs[index] = future.result()
                    done[index] = True
                except BrokenProcessPool as exc:
                    broken = str(exc) or "a sweep worker process died"
                    break
        except BrokenProcessPool as exc:  # raised by as_completed itself
            broken = str(exc) or "a sweep worker process died"
    except KeyboardInterrupt:
        pool.shutdown(wait=False, cancel_futures=True)
        raise SweepInterrupted(sum(done), len(tasks)) from None
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    if broken is not None:
        lost = [index for index, ok in enumerate(done) if not ok]
        note = (
            f"sweep worker pool broke ({broken}); re-ran "
            f"{len(lost)} lost cell(s) serially"
        )
        print(f"warning: {note}", file=sys.stderr)
        _LAST_CRASH_NOTES.append(note)
        for index in lost:
            outputs[index] = _execute_cell(tasks[index])
    return outputs
