"""Discrete-event simulation platform for the end-to-end experiments.

Wraps a :class:`~repro.runtime.local.LocalRuntime` in a DES: requests
arrive open-loop (Poisson), each invocation occupies one function-node
worker slot for its lifetime, and every protocol-level operation advances
simulated time by the latency its service calls accumulated.  This yields
the latency-vs-throughput, storage-over-time, and switching-delay
behaviour of the paper's testbed (Sections 6.2-6.4) from the same protocol
implementations the unit tests exercise.

Fidelity notes (documented substitutions):

* a child SSF invoked via ``ctx.invoke`` executes synchronously at its
  parent's current simulation instant; its latency then advances the
  parent's clock.  Parent-blocking time is modelled exactly; the child's
  *internal* interleaving with other invocations is not.
* queueing happens at the worker pool; log/store latencies are sampled
  i.i.d. from their calibrated distributions (an open-service model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..config import SystemConfig
from ..errors import (
    CrashError,
    RetriesExhaustedError,
    ServiceFaultError,
)
from ..runtime.env import Env
from ..runtime.local import Context, LocalRuntime
from ..runtime.registry import FunctionRegistry
from ..runtime.services import InstanceServices
from ..simulation.kernel import Simulator
from ..simulation.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)
from ..simulation.resources import Resource
from ..workloads.base import Request, Workload


@dataclass
class RunResult:
    """Metrics from one simulated run."""

    protocol: str
    workload: str
    offered_rate_per_s: float
    duration_ms: float
    completed: int
    crashed_attempts: int
    #: Attempts abandoned because a substrate blew its retry budget.
    faulted_attempts: int
    median_ms: float
    p99_ms: float
    mean_ms: float
    throughput_per_s: float
    avg_log_bytes: float
    avg_db_bytes: float
    avg_total_bytes: float
    latency_series: TimeSeries = field(repr=False, default=None)
    counters: Dict[str, int] = field(repr=False, default_factory=dict)
    #: Total simulated milliseconds spent per cost kind (log appends,
    #: store reads, ...), for overhead breakdowns.
    time_by_kind: Dict[str, float] = field(repr=False,
                                           default_factory=dict)
    extras: Dict[str, Any] = field(repr=False, default_factory=dict)

    @property
    def avg_total_mb(self) -> float:
        return self.avg_total_bytes / (1024.0 * 1024.0)


class SimPlatform:
    """One simulated deployment running one workload under one protocol."""

    def __init__(
        self,
        workload: Workload,
        protocol: str,
        config: Optional[SystemConfig] = None,
        enable_switching: bool = False,
    ):
        self.config = (config if config is not None
                       else SystemConfig()).validate()
        self.sim = Simulator()
        self.runtime = LocalRuntime(
            self.config, protocol=protocol,
            enable_switching=enable_switching,
        )
        if enable_switching and self.runtime.switch_manager is not None:
            self.runtime.switch_manager.now_fn = lambda: self.sim.now
        self.workload = workload
        workload.register(self.runtime)
        workload.populate(self.runtime)

        backend = self.runtime.backend
        self.workers = Resource(
            self.sim, self.config.cluster.total_workers, "workers"
        )
        self._request_rng = backend.rng.stream("requests")
        self._arrival_rng = backend.rng.stream("arrivals")

        self.latencies = LatencyRecorder("request-latency")
        self.latency_series = TimeSeries("latency-over-time")
        self.throughput = ThroughputMeter()
        self.crashed_attempts = 0
        self.faulted_attempts = 0
        self._warmup_ms = 0.0
        self.time_by_kind: Dict[str, float] = {}
        # Logging-layer contention model (optional): analytic FIFO
        # bookkeeping for the sequencer and the storage shards.  Works
        # because invocations drain their traces in nondecreasing
        # simulation-time order.
        self._seq_next_free = 0.0
        self._shard_next_free = [0.0] * self.config.cluster.storage_nodes
        self._shard_cursor = 0
        self.log_wait_ms_total = 0.0

        self.log_gauge = TimeWeightedGauge(
            "log-bytes", 0.0, backend.log.storage_bytes()
        )
        self.db_gauge = TimeWeightedGauge(
            "db-bytes", 0.0, backend.kv.storage_bytes()
        )
        backend.log.add_storage_listener(
            lambda b: self.log_gauge.set(b, self.sim.now)
        )
        backend.kv.add_storage_listener(
            lambda b: self.db_gauge.set(b, self.sim.now)
        )

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def _arrival_process(self, rate_per_s: float, duration_ms: float):
        mean_gap_ms = 1000.0 / rate_per_s
        while True:
            gap = float(self._arrival_rng.exponential(mean_gap_ms))
            yield self.sim.timeout(gap)
            if self.sim.now >= duration_ms:
                return
            request = self.workload.next_request(self._request_rng)
            self.sim.process(
                self._invocation_process(request, self.sim.now),
                name=f"inv-{request.func_name}",
            )

    def _invocation_process(self, request: Request, arrival_ms: float):
        runtime = self.runtime
        # The invocation exists (and is tracked) from arrival: the switch
        # manager and the GC must conservatively wait for requests that
        # were dispatched before a BEGIN record even if they are still
        # queued for a worker — this is what makes switching away from a
        # backlogged phase slower (Figure 14).
        instance_id = runtime.new_instance_id()
        runtime.tracker.start(
            instance_id, runtime.backend.log.next_seqnum
        )
        yield self.workers.request()
        try:
            max_attempts = self.config.failures.max_retries + 1
            fn = runtime.functions.get(request.func_name)
            done = False
            for attempt in range(1, max_attempts + 1):
                hook = runtime.crash_policy.hook_for(instance_id, attempt)
                svc = InstanceServices(runtime.backend, fault_hook=hook)
                env = Env(
                    instance_id=instance_id,
                    input=request.input,
                    func_name=request.func_name,
                    attempt=attempt,
                )
                ctx = Context(runtime, svc, env)
                try:
                    protocol = runtime.router.control_protocol()
                    protocol.init(svc, env)
                    runtime.tracker.set_init_ts(
                        instance_id, env.init_cursor_ts
                    )
                    yield self.sim.timeout(self._drain(svc))
                    svc.charge_compute()
                    if FunctionRegistry.is_generator_style(fn):
                        gen = fn(request.input)
                        try:
                            op = next(gen)
                            while True:
                                result = ctx.apply(op)
                                yield self.sim.timeout(self._drain(svc))
                                op = gen.send(result)
                        except StopIteration:
                            pass
                    else:
                        fn(ctx, request.input)
                    yield self.sim.timeout(self._drain(svc))
                    done = True
                except CrashError:
                    self.crashed_attempts += 1
                    yield self.sim.timeout(
                        self._drain(svc)
                        + self.config.failures.detection_delay_ms
                    )
                    continue
                except ServiceFaultError as fault:
                    if not fault.retryable:
                        raise
                    self.faulted_attempts += 1
                    yield self.sim.timeout(
                        self._drain(svc)
                        + self.config.failures.detection_delay_ms
                    )
                    continue
                break
            if not done:
                raise RetriesExhaustedError(
                    f"{request.func_name!r} exhausted {max_attempts} "
                    "attempts in simulation"
                )
            runtime.tracker.finish(instance_id)
            latency = self.sim.now - arrival_ms
            if arrival_ms >= self._warmup_ms:
                self.latencies.record(latency)
                self.throughput.record(self.sim.now)
            self.latency_series.record(self.sim.now, latency)
        finally:
            self.workers.release()

    def _drain(self, svc: InstanceServices) -> float:
        """Account the trace per cost kind, then drain it.

        With ``model_log_contention`` enabled, every append also queues
        at the sequencer and a storage shard; the waits extend the
        invocation's simulated time and are tallied separately."""
        from ..runtime.services import Cost

        cluster = self.config.cluster
        # Appends of one drained operation are treated as arriving at the
        # current instant; drains happen in global nondecreasing time
        # order, which keeps the FIFO bookkeeping exact at op granularity.
        now = self.sim.now
        extra_wait = 0.0
        for kind, ms in svc.trace.entries:
            self.time_by_kind[kind] = (
                self.time_by_kind.get(kind, 0.0) + ms
            )
            if (cluster.model_log_contention
                    and kind in Cost.LOGGING_KINDS):
                wait = max(0.0, self._seq_next_free - now)
                self._seq_next_free = (
                    now + wait + cluster.sequencer_service_ms
                )
                shard = self._shard_cursor % len(self._shard_next_free)
                self._shard_cursor += 1
                shard_start = now + wait
                shard_wait = max(
                    0.0, self._shard_next_free[shard] - shard_start
                )
                self._shard_next_free[shard] = (
                    shard_start + shard_wait
                    + cluster.log_shard_service_ms
                )
                extra_wait += wait + shard_wait
                self.log_wait_ms_total += wait + shard_wait
        return svc.trace.drain() + extra_wait

    def _gc_process(self):
        interval = self.config.gc.interval_ms
        while True:
            yield self.sim.timeout(interval)
            self.runtime.run_gc()

    def at(self, time_ms: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` at an absolute simulation time."""

        def process():
            delay = time_ms - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            action()

        self.sim.process(process(), name="scheduled-action")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        rate_per_s: float,
        duration_ms: float,
        warmup_ms: float = 0.0,
        drain_ms: float = 5_000.0,
    ) -> RunResult:
        """Drive the workload at ``rate_per_s`` for ``duration_ms``.

        ``warmup_ms`` of leading completions are excluded from latency
        statistics; the simulation runs ``drain_ms`` past the last arrival
        so queued requests finish.
        """
        self._warmup_ms = warmup_ms
        self.sim.process(
            self._arrival_process(rate_per_s, duration_ms), name="arrivals"
        )
        if self.config.gc.enabled:
            self.sim.process(self._gc_process(), name="gc")
        self.sim.run(until=duration_ms + drain_ms)

        backend = self.runtime.backend
        have_samples = self.latencies.count > 0
        measured_ms = duration_ms - warmup_ms
        return RunResult(
            protocol=self.runtime.router.default_name,
            workload=self.workload.name,
            offered_rate_per_s=rate_per_s,
            duration_ms=duration_ms,
            completed=self.latencies.count,
            crashed_attempts=self.crashed_attempts,
            faulted_attempts=self.faulted_attempts,
            median_ms=self.latencies.median() if have_samples else 0.0,
            p99_ms=self.latencies.p99() if have_samples else 0.0,
            mean_ms=self.latencies.mean() if have_samples else 0.0,
            throughput_per_s=(
                self.latencies.count * 1000.0 / measured_ms
                if measured_ms > 0 else 0.0
            ),
            avg_log_bytes=self.log_gauge.time_average(self.sim.now),
            avg_db_bytes=self.db_gauge.time_average(self.sim.now),
            avg_total_bytes=(
                self.log_gauge.time_average(self.sim.now)
                + self.db_gauge.time_average(self.sim.now)
            ),
            latency_series=self.latency_series,
            counters=backend.counters.as_dict(),
            time_by_kind=dict(self.time_by_kind),
        )
