"""Discrete-event simulation platform for the end-to-end experiments.

Wraps a :class:`~repro.runtime.local.LocalRuntime` in a DES: requests
arrive open-loop (Poisson), each invocation occupies one function-node
worker slot for its lifetime, and every protocol-level operation advances
simulated time by the latency its service calls accumulated.  This yields
the latency-vs-throughput, storage-over-time, and switching-delay
behaviour of the paper's testbed (Sections 6.2-6.4) from the same protocol
implementations the unit tests exercise.

Fidelity notes (documented substitutions):

* a child SSF invoked via ``ctx.invoke`` executes synchronously at its
  parent's current simulation instant; its latency then advances the
  parent's clock.  Parent-blocking time is modelled exactly; the child's
  *internal* interleaving with other invocations is not.
* queueing happens at the worker pool; log/store latencies are sampled
  i.i.d. from their calibrated distributions (an open-service model).

Node failures (``config.recovery``): invocations are dispatched to
per-node worker slots; :meth:`SimPlatform.crash_node` kills a node —
interrupting every in-flight invocation process on it (they become
*orphans*), dropping the node's slice of the record cache, and wiping
its worker slots.  A :class:`~repro.recovery.lease.LeaseManager` turns
the crash into a detection event after the configured lease expires, and
the :class:`~repro.recovery.coordinator.RecoveryCoordinator` re-dispatches
orphans to surviving nodes, where protocol replay finishes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..config import SystemConfig
from ..errors import (
    CrashError,
    RetriesExhaustedError,
    ServiceFaultError,
)
from ..observe import (
    CAT_ATTEMPT,
    CAT_INVOCATION,
    CAT_QUEUE,
    LatencyBreakdown,
    Span,
    Tracer,
)
from ..recovery import LeaseManager, Orphan, RecoveryCoordinator
from ..runtime.env import Env
from ..runtime.local import Context, LocalRuntime
from ..runtime.registry import FunctionRegistry
from ..runtime.services import Cost, InstanceServices
from ..simulation import select as _kernel_select
from ..simulation.kernel import Interrupt
from ..simulation.metrics import (
    LatencyRecorder,
    ThroughputMeter,
    TimeSeries,
    TimeWeightedGauge,
)
from ..simulation.resources import (
    NodeWorkerPool,
    SequencerBatchStation,
    SequencerLeaseStation,
)
from ..workloads.base import Request, Workload


@dataclass
class RunResult:
    """Metrics from one simulated run."""

    protocol: str
    workload: str
    offered_rate_per_s: float
    duration_ms: float
    completed: int
    crashed_attempts: int
    #: Attempts abandoned because a substrate blew its retry budget.
    faulted_attempts: int
    median_ms: float
    p99_ms: float
    mean_ms: float
    throughput_per_s: float
    avg_log_bytes: float
    avg_db_bytes: float
    avg_total_bytes: float
    latency_series: TimeSeries = field(repr=False, default=None)
    counters: Dict[str, int] = field(repr=False, default_factory=dict)
    #: Total simulated milliseconds spent per cost kind (log appends,
    #: store reads, ...), for overhead breakdowns.
    time_by_kind: Dict[str, float] = field(repr=False,
                                           default_factory=dict)
    extras: Dict[str, Any] = field(repr=False, default_factory=dict)
    #: Node-failure accounting (zero unless the run crashed nodes).
    node_crashes: int = 0
    orphaned_invocations: int = 0
    recovered_orphans: int = 0
    detection_ms: LatencyRecorder = field(repr=False, default=None)
    takeover_ms: LatencyRecorder = field(repr=False, default=None)
    #: Per-request latency decomposition (post-warmup completions);
    #: stage vectors sum exactly to end-to-end latency.
    breakdown: LatencyBreakdown = field(repr=False, default=None)
    #: ``MetricsRegistry.snapshot()`` of the backend registry at the
    #: end of the run — every component's metrics in one namespace.
    metrics: Dict[str, Dict[str, Any]] = field(repr=False,
                                               default_factory=dict)

    @property
    def avg_total_mb(self) -> float:
        return self.avg_total_bytes / (1024.0 * 1024.0)


class SimPlatform:
    """One simulated deployment running one workload under one protocol."""

    def __init__(
        self,
        workload: Workload,
        protocol: str,
        config: Optional[SystemConfig] = None,
        enable_switching: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        self.config = (config if config is not None
                       else SystemConfig()).validate()
        # Construct through the kernel selector: pure or compiled DES
        # loop per REPRO_SIM_KERNEL / select_kernel() (bit-identical).
        self.sim = _kernel_select.active_module().Simulator()
        self.sim_kernel = _kernel_select.active_kernel()
        self.runtime = LocalRuntime(
            self.config, protocol=protocol,
            enable_switching=enable_switching,
        )
        if enable_switching and self.runtime.switch_manager is not None:
            self.runtime.switch_manager.now_fn = lambda: self.sim.now
        self.workload = workload
        workload.register(self.runtime)
        workload.populate(self.runtime)

        backend = self.runtime.backend
        self.tracer = tracer
        backend.tracer = tracer
        # Child invocations (ctx.invoke) run synchronously through the
        # direct-mode runtime; anchor their trace timestamps at the
        # parent's simulated instant.
        self.runtime.now_fn = lambda: self.sim.now
        self.workers = NodeWorkerPool(
            self.sim,
            self.config.cluster.function_nodes,
            self.config.cluster.workers_per_node,
            "workers",
        )
        self._request_rng = backend.rng.stream("requests")
        self._arrival_rng = backend.rng.stream("arrivals")

        metrics = backend.metrics
        self.latencies = metrics.register(
            "request_latency", LatencyRecorder("request-latency")
        )
        self.latency_series = metrics.register(
            "latency_over_time", TimeSeries("latency-over-time")
        )
        self.throughput = metrics.register(
            "completions", ThroughputMeter()
        )
        self.breakdown = LatencyBreakdown(protocol)
        self.crashed_attempts = 0
        self.faulted_attempts = 0
        self._warmup_ms = 0.0

        # -- node-failure machinery ------------------------------------
        #: Per node: instance_id -> in-flight invocation Process, i.e.
        #: the gateway's dispatch table (mirrors init records without a
        #: matching finish).
        self._inflight: List[Dict[str, Any]] = [
            {} for _ in range(self.workers.num_nodes)
        ]
        self._crashed_at: Dict[int, float] = {}
        self.node_crashes = 0
        self.orphaned_invocations = 0
        self.detection_latency = metrics.register(
            "failure_detection_latency",
            LatencyRecorder("failure-detection"),
        )
        #: Optional ``callback(request, latency_ms)`` fired at each
        #: completion — failover audits use it to build ground truth.
        self.on_request_complete: Optional[
            Callable[[Request, float], None]
        ] = None
        self.lease: Optional[LeaseManager] = None
        self.coordinator: Optional[RecoveryCoordinator] = None
        if self.config.recovery.enabled:
            self.lease = LeaseManager(
                self.sim,
                self.workers.num_nodes,
                self.config.recovery,
                self.workers.is_alive,
            )
            self.coordinator = RecoveryCoordinator(
                self.sim, self.runtime.tracker, self._redispatch_orphan,
                tracer=tracer,
            )
            metrics.register(
                "takeover_latency", self.coordinator.takeover_latency
            )
            self.lease.on_failure(self._node_declared_dead)
        self.time_by_kind: Dict[str, float] = {}
        # Logging-layer contention model (optional): analytic FIFO
        # bookkeeping for the sequencer and the storage shards.  Works
        # because invocations drain their traces in nondecreasing
        # simulation-time order.  With a labelled (sharded) plane each
        # append queues at *its record's* shard station, so hot shards
        # saturate individually; the unlabelled plane keeps the seed's
        # round-robin spread over ``cluster.storage_nodes``.
        plane = backend.plane
        self._plane_labelled = plane.labelled
        self._seq_next_free = 0.0
        # Sequencing strategy (config.storage.sequencer): the monolith
        # arithmetic stays inlined in ``_drain``; batched / leased
        # strategies visit a stateful station instead.
        storage_cfg = self.config.storage
        cluster_cfg = self.config.cluster
        self._seq_station = None
        if storage_cfg.sequencer == "batched":
            self._seq_station = SequencerBatchStation(
                cluster_cfg.sequencer_service_ms,
                storage_cfg.sequencer_hold_ms,
                storage_cfg.sequencer_batch,
            )
        elif storage_cfg.sequencer == "leased-ranges":
            self._seq_station = SequencerLeaseStation(
                cluster_cfg.sequencer_service_ms,
                storage_cfg.sequencer_block,
            )
        self._seq_visits = 0
        if cluster_cfg.model_log_contention:
            metrics.probe(
                "sequencer_occupancy", lambda: self.sequencer_stats()
            )
        num_stations = (plane.num_log_shards if plane.labelled
                        else self.config.cluster.storage_nodes)
        self._shard_next_free = [0.0] * num_stations
        self._shard_cursor = 0
        self.log_wait_ms_total = 0.0
        # Store-partition stations (optional, labelled planes only).
        num_store_stations = (plane.num_kv_partitions if plane.labelled
                              else 1)
        self._store_next_free = [0.0] * num_store_stations
        self.store_wait_ms_total = 0.0

        self.log_gauge = metrics.register(
            "storage_bytes",
            TimeWeightedGauge("log-bytes", 0.0,
                              backend.log.storage_bytes()),
            store="log",
        )
        self.db_gauge = metrics.register(
            "storage_bytes",
            TimeWeightedGauge("db-bytes", 0.0,
                              backend.kv.storage_bytes()),
            store="db",
        )
        backend.log.add_storage_listener(
            lambda b: self.log_gauge.feed(b, self.sim.now)
        )
        backend.kv.add_storage_listener(
            lambda b: self.db_gauge.feed(b, self.sim.now)
        )
        if plane.labelled:
            self._register_placement_gauges(metrics, backend, plane)

    def _register_placement_gauges(self, metrics, backend, plane) -> None:
        """Per-shard / per-partition ``storage_bytes`` gauges (sharded
        planes only, so the default topology's metric set is unchanged)."""
        shard_gauges = [
            metrics.register(
                "storage_bytes",
                TimeWeightedGauge(f"log-shard-{i}-bytes", 0.0,
                                  backend.log.shard_bytes(i)),
                store="log", shard=i,
            )
            for i in range(plane.num_log_shards)
        ]
        backend.log.add_shard_storage_listener(
            lambda shard, b: shard_gauges[shard].feed(b, self.sim.now)
        )
        partition_gauges = [
            metrics.register(
                "storage_bytes",
                TimeWeightedGauge(f"db-partition-{i}-bytes", 0.0,
                                  backend.kv.partition_bytes(i)),
                store="db", partition=i,
            )
            for i in range(plane.num_kv_partitions)
        ]
        backend.kv.add_partition_storage_listener(
            lambda part, b: partition_gauges[part].feed(b, self.sim.now)
        )

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def _arrival_process(self, rate_per_s: float, duration_ms: float):
        mean_gap_ms = 1000.0 / rate_per_s
        while True:
            gap = float(self._arrival_rng.exponential(mean_gap_ms))
            yield gap
            if self.sim.now >= duration_ms:
                return
            request = self.workload.next_request(self._request_rng)
            self._spawn_invocation(request, self.sim.now)

    def _spawn_invocation(
        self,
        request: Request,
        arrival_ms: float,
        instance_id: Optional[str] = None,
        first_attempt: int = 1,
    ):
        # The generator needs a handle on its own Process so it can file
        # itself in the dispatch table; the box is filled before the
        # body's first step runs (processes start on the next tick).
        box: Dict[str, Any] = {}
        gen = self._invocation_process(
            request, arrival_ms, box, instance_id, first_attempt
        )
        box["process"] = self.sim.process(
            gen, name=f"inv-{request.func_name}"
        )
        return box["process"]

    def _invocation_process(
        self,
        request: Request,
        arrival_ms: float,
        box: Dict[str, Any],
        instance_id: Optional[str] = None,
        first_attempt: int = 1,
    ):
        runtime = self.runtime
        redispatched = instance_id is not None
        if instance_id is None:
            # The invocation exists (and is tracked) from arrival: the
            # switch manager and the GC must conservatively wait for
            # requests that were dispatched before a BEGIN record even
            # if they are still queued for a worker — this is what makes
            # switching away from a backlogged phase slower (Figure 14).
            instance_id = runtime.new_instance_id()
            runtime.tracker.start(
                instance_id, runtime.backend.log.next_seqnum
            )
        # Per-request stage vector ({kind_or_segment: ms}); by
        # construction every simulated millisecond between arrival and
        # completion lands in exactly one entry, so the vector sums to
        # the end-to-end latency.
        stages: Dict[str, float] = {}
        takeover_gap = self.sim.now - arrival_ms
        if takeover_gap > 0:
            # Orphan re-dispatch: time since the original arrival (the
            # lost dispatch, detection, and coordination) is recovery.
            stages["takeover_gap"] = takeover_gap
        tracer = self.tracer
        root: Optional[Span] = None
        queue_span: Optional[Span] = None
        if tracer is not None:
            root = tracer.start_span(
                f"invoke:{request.func_name}", CAT_INVOCATION,
                arrival_ms if not redispatched else self.sim.now,
                trace_id=instance_id, func=request.func_name,
                redispatched=redispatched,
            )
            queue_span = root.child(
                "worker-queue", CAT_QUEUE, self.sim.now,
            )
        queued_at = self.sim.now
        grant = yield self.workers.request()
        stages["queue_wait"] = (
            stages.get("queue_wait", 0.0) + self.sim.now - queued_at
        )
        if queue_span is not None:
            queue_span.finish(self.sim.now)
        if root is not None:
            root.annotate("worker-granted", self.sim.now,
                          node=grant.node_id)
        self._inflight[grant.node_id][instance_id] = box["process"]
        attempt_span: Optional[Span] = None
        try:
            max_attempts = self.config.failures.max_retries + 1
            fn = runtime.functions.get(request.func_name)
            done = False
            attempt = first_attempt
            while attempt <= max_attempts:
                hook = runtime.crash_policy.hook_for(instance_id, attempt)
                svc = InstanceServices(runtime.backend, fault_hook=hook)
                if root is not None:
                    attempt_span = root.child(
                        f"attempt-{attempt}", CAT_ATTEMPT, self.sim.now,
                        attempt=attempt, node=grant.node_id,
                    )
                    svc.attach_span(attempt_span, self.sim.now)
                env = Env(
                    instance_id=instance_id,
                    input=request.input,
                    func_name=request.func_name,
                    attempt=attempt,
                )
                ctx = Context(runtime, svc, env)
                try:
                    protocol = runtime.router.control_protocol()
                    protocol.init(svc, env)
                    runtime.tracker.set_init_ts(
                        instance_id, env.init_cursor_ts
                    )
                    yield self._drain(svc, stages)
                    svc.span_base_ms = self.sim.now
                    svc.charge_compute()
                    if FunctionRegistry.is_generator_style(fn):
                        gen = fn(request.input)
                        # The op loop runs once per protocol-level op;
                        # bind the per-step callees once per attempt.
                        sim = self.sim
                        drain = self._drain
                        apply_op = ctx.apply
                        try:
                            op = next(gen)
                            send = gen.send
                            while True:
                                result = apply_op(op)
                                yield drain(svc, stages)
                                svc.span_base_ms = sim.now
                                op = send(result)
                        except StopIteration:
                            pass
                    else:
                        fn(ctx, request.input)
                    yield self._drain(svc, stages)
                    svc.span_base_ms = self.sim.now
                    done = True
                except CrashError:
                    self.crashed_attempts += 1
                    attempt += 1
                    detection = self.config.failures.detection_delay_ms
                    stages["failure_detection"] = (
                        stages.get("failure_detection", 0.0) + detection
                    )
                    yield self._drain(svc, stages) + detection
                    if attempt_span is not None:
                        attempt_span.annotate("crash", self.sim.now)
                        attempt_span.finish(self.sim.now)
                        attempt_span = None
                    continue
                except ServiceFaultError as fault:
                    if not fault.retryable:
                        raise
                    self.faulted_attempts += 1
                    attempt += 1
                    detection = self.config.failures.detection_delay_ms
                    stages["failure_detection"] = (
                        stages.get("failure_detection", 0.0) + detection
                    )
                    yield self._drain(svc, stages) + detection
                    if attempt_span is not None:
                        attempt_span.annotate(
                            "service-fault", self.sim.now
                        )
                        attempt_span.finish(self.sim.now)
                        attempt_span = None
                    continue
                break
            if not done:
                raise RetriesExhaustedError(
                    f"{request.func_name!r} exhausted {max_attempts} "
                    "attempts in simulation"
                )
            runtime.tracker.finish(instance_id)
            latency = self.sim.now - arrival_ms
            if attempt_span is not None:
                attempt_span.finish(self.sim.now)
            if root is not None:
                root.finish(self.sim.now)
            if arrival_ms >= self._warmup_ms:
                self.latencies.record(latency)
                self.throughput.record(self.sim.now)
                self.breakdown.record(stages)
            self.latency_series.record(self.sim.now, latency)
            if self.on_request_complete is not None:
                self.on_request_complete(request, latency)
        except Interrupt:
            # Node crash while executing: the invocation is stranded on
            # the dead node.  The interrupted attempt counts as lost
            # (like an instance crash); takeover resumes at the next.
            self.orphaned_invocations += 1
            if attempt_span is not None and not attempt_span.finished:
                attempt_span.annotate("node-crash", self.sim.now,
                                      node=grant.node_id)
                attempt_span.finish(self.sim.now)
            if root is not None:
                root.annotate("orphaned", self.sim.now,
                              node=grant.node_id)
                root.finish(self.sim.now)
            orphan = Orphan(
                instance_id=instance_id,
                request=request,
                arrival_ms=arrival_ms,
                next_attempt=attempt + 1,
                node_id=grant.node_id,
                orphaned_at_ms=self.sim.now,
            )
            if self.coordinator is not None:
                self.coordinator.add_orphan(orphan)
            else:
                # No recovery configured: the orphan is still pinned in
                # the tracker so GC stays conservative, but nobody will
                # re-dispatch it.
                runtime.tracker.mark_orphaned(instance_id)
            return
        finally:
            self._inflight[grant.node_id].pop(instance_id, None)
            self.workers.release(grant)

    def _redispatch_orphan(self, orphan: Orphan) -> None:
        self._spawn_invocation(
            orphan.request,
            orphan.arrival_ms,
            instance_id=orphan.instance_id,
            first_attempt=orphan.next_attempt,
        )

    # ------------------------------------------------------------------
    # Node failures
    # ------------------------------------------------------------------

    def crash_node(
        self,
        node_id: int,
        restart_after_ms: Optional[float] = None,
    ) -> None:
        """Kill function node ``node_id`` at the current instant.

        Every in-flight invocation process on the node is interrupted
        (→ orphaned), the node's slice of the record cache is dropped,
        and its worker slots are wiped.  If restarts are enabled the
        node comes back after ``restart_after_ms`` (default: the
        configured ``restart_delay_ms``).
        """
        if not self.workers.is_alive(node_id):
            return
        self.node_crashes += 1
        self._crashed_at[node_id] = self.sim.now
        if self.tracer is not None:
            self.tracer.instant(
                "node-crash", self.sim.now, node=node_id,
                in_flight=len(self._inflight[node_id]),
            )
        # Interrupt handlers pop themselves from the table via their
        # ``finally``; iterate over a snapshot.
        for process in list(self._inflight[node_id].values()):
            process.interrupt(cause=f"node-{node_id}-crash")
        self.workers.crash(node_id)
        self.runtime.backend.drop_node_cache(
            node_id, self.workers.num_nodes
        )
        recovery = self.config.recovery
        if recovery.restart_enabled:
            delay = (restart_after_ms if restart_after_ms is not None
                     else recovery.restart_delay_ms)
            self.at(self.sim.now + delay,
                    lambda: self.restart_node(node_id))

    def restart_node(self, node_id: int) -> None:
        """Bring a crashed node back with empty workers and a cold cache."""
        if self.workers.is_alive(node_id):
            return
        self._crashed_at.pop(node_id, None)
        if self.tracer is not None:
            self.tracer.instant("node-restart", self.sim.now,
                                node=node_id)
        self.workers.restart(node_id)
        if self.coordinator is not None:
            # A node restarting before its lease expired recovers its
            # own orphans by scanning the log (Section 4.5).
            self.coordinator.node_restarted(node_id)

    def schedule_node_crash(
        self,
        at_ms: float,
        node_id: int = 0,
        restart_after_ms: Optional[float] = None,
    ) -> None:
        """Arrange for ``node_id`` to crash at simulated time ``at_ms``."""
        self.at(at_ms, lambda: self.crash_node(node_id, restart_after_ms))

    def _node_declared_dead(self, node_id: int, detected_at_ms: float
                            ) -> None:
        crashed_at = self._crashed_at.get(node_id)
        if crashed_at is not None:
            self.detection_latency.record(detected_at_ms - crashed_at)
        if self.tracer is not None:
            self.tracer.instant(
                "node-declared-dead", detected_at_ms, node=node_id,
                detection_ms=(detected_at_ms - crashed_at
                              if crashed_at is not None else None),
            )
        if self.coordinator is not None:
            self.coordinator.node_failed(node_id, detected_at_ms)

    def _drain(self, svc: InstanceServices,
               stages: Optional[Dict[str, float]] = None) -> float:
        """Account the trace per cost kind, then drain it.

        With ``model_log_contention`` enabled, every append also queues
        at the sequencer and a storage shard; the waits extend the
        invocation's simulated time and are tallied separately.
        ``stages`` (the per-request breakdown vector) receives the same
        per-kind milliseconds plus the contention wait."""
        cluster = self.config.cluster
        # Appends of one drained operation are treated as arriving at the
        # current instant; drains happen in global nondecreasing time
        # order, which keeps the FIFO bookkeeping exact at op granularity.
        now = self.sim.now
        extra_wait = 0.0
        store_wait_total = 0.0
        time_by_kind = self.time_by_kind
        model_log = cluster.model_log_contention
        model_store = cluster.model_store_contention
        logging_kinds = Cost.LOGGING_KINDS
        store_kinds = Cost.STORE_KINDS
        # The FIFO bookkeeping below is the hottest loop in the harness;
        # every station cursor lives in a local for the duration of the
        # drain and is written back once at the end.
        seq_next_free = self._seq_next_free
        seq_service = cluster.sequencer_service_ms
        seq_station = self._seq_station
        seq_visits = self._seq_visits
        shard_next_free = self._shard_next_free
        num_shards = len(shard_next_free)
        shard_cursor = self._shard_cursor
        shard_service = cluster.log_shard_service_ms
        store_next_free = self._store_next_free
        store_service = cluster.store_partition_service_ms
        log_wait_ms_total = self.log_wait_ms_total
        store_wait_ms_total = self.store_wait_ms_total
        for kind, ms, placement in svc.trace.entries:
            # try/except beats .get here: the miss happens once per kind
            # per run, and 3.11 makes the non-raising path free.
            try:
                time_by_kind[kind] += ms
            except KeyError:
                time_by_kind[kind] = ms
            if stages is not None:
                stages[kind] = stages.get(kind, 0.0) + ms
            if model_log and kind in logging_kinds:
                if seq_station is None:
                    wait = seq_next_free - now
                    if wait < 0.0:
                        wait = 0.0
                    seq_next_free = now + wait + seq_service
                else:
                    wait = seq_station.visit(now)
                seq_visits += 1
                if placement is not None and placement[0] == "shard":
                    # Sharded plane: queue where the record lives, so a
                    # hot shard saturates while its peers stay idle.
                    shard = placement[1]
                else:
                    # Unlabelled plane: the seed's round-robin spread
                    # over the storage nodes.
                    shard = shard_cursor % num_shards
                    shard_cursor += 1
                shard_start = now + wait
                shard_wait = shard_next_free[shard] - shard_start
                if shard_wait < 0.0:
                    shard_wait = 0.0
                shard_next_free[shard] = (
                    shard_start + shard_wait + shard_service
                )
                extra_wait += wait + shard_wait
                log_wait_ms_total += wait + shard_wait
            elif model_store and kind in store_kinds:
                partition = (
                    placement[1]
                    if placement is not None and placement[0] == "partition"
                    else 0
                )
                store_wait = store_next_free[partition] - now
                if store_wait < 0.0:
                    store_wait = 0.0
                store_next_free[partition] = (
                    now + store_wait + store_service
                )
                extra_wait += store_wait
                store_wait_total += store_wait
                store_wait_ms_total += store_wait
        self._seq_next_free = seq_next_free
        self._seq_visits = seq_visits
        self._shard_cursor = shard_cursor
        self.log_wait_ms_total = log_wait_ms_total
        self.store_wait_ms_total = store_wait_ms_total
        if stages is not None and extra_wait > 0:
            log_wait = extra_wait - store_wait_total
            if log_wait > 0:
                stages["log_queue_wait"] = (
                    stages.get("log_queue_wait", 0.0) + log_wait
                )
            if store_wait_total > 0:
                stages["store_queue_wait"] = (
                    stages.get("store_queue_wait", 0.0) + store_wait_total
                )
        return svc.trace.drain() + extra_wait

    def sequencer_stats(self, now_ms: Optional[float] = None
                        ) -> Dict[str, Any]:
        """Sequencer-station occupancy and batching statistics.

        ``occupancy`` is service-busy time over elapsed simulated time —
        the fraction of the run the sequencer's replicated state machine
        spent appending.  Monolith pays one service quantum per append;
        batched pays one per flushed batch; leased pays one per block
        refill.
        """
        now = self.sim.now if now_ms is None else float(now_ms)
        service = self.config.cluster.sequencer_service_ms
        station = self._seq_station
        stats: Dict[str, Any] = {
            "strategy": self.config.storage.sequencer,
            "visits": self._seq_visits,
        }
        if station is None:
            busy_ms = self._seq_visits * service
        elif isinstance(station, SequencerBatchStation):
            busy_ms = station.busy_ms
            stats["batches"] = station.batches
            stats["mean_batch_size"] = station.mean_batch_size
        else:
            busy_ms = station.busy_ms
            stats["refills"] = station.refills
        stats["busy_ms"] = busy_ms
        stats["occupancy"] = busy_ms / now if now > 0 else 0.0
        return stats

    def _gc_process(self):
        interval = self.config.gc.interval_ms
        while True:
            yield interval
            self.runtime.run_gc()

    def at(self, time_ms: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` at an absolute simulation time."""

        def process():
            delay = time_ms - self.sim.now
            if delay > 0:
                yield delay
            action()

        self.sim.process(process(), name="scheduled-action")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        rate_per_s: float,
        duration_ms: float,
        warmup_ms: float = 0.0,
        drain_ms: float = 5_000.0,
    ) -> RunResult:
        """Drive the workload at ``rate_per_s`` for ``duration_ms``.

        ``warmup_ms`` of leading completions are excluded from latency
        statistics; the simulation runs ``drain_ms`` past the last arrival
        so queued requests finish.
        """
        self._warmup_ms = warmup_ms
        self.sim.process(
            self._arrival_process(rate_per_s, duration_ms), name="arrivals"
        )
        if self.config.gc.enabled:
            self.sim.process(self._gc_process(), name="gc")
        if self.lease is not None:
            self.lease.start()
        self.sim.run(until=duration_ms + drain_ms)

        backend = self.runtime.backend
        have_samples = self.latencies.count > 0
        measured_ms = duration_ms - warmup_ms
        extras: Dict[str, Any] = {
            "events_processed": self.sim.events_processed,
            # Which DES kernel executed this run; excluded from
            # bit-identity diffs (it is the one legitimate difference).
            "sim_kernel": self.sim_kernel,
        }
        if self.config.cluster.model_log_contention:
            extras["sequencer"] = self.sequencer_stats()
        return RunResult(
            protocol=self.runtime.router.default_name,
            workload=self.workload.name,
            offered_rate_per_s=rate_per_s,
            duration_ms=duration_ms,
            completed=self.latencies.count,
            crashed_attempts=self.crashed_attempts,
            faulted_attempts=self.faulted_attempts,
            median_ms=self.latencies.median() if have_samples else 0.0,
            p99_ms=self.latencies.p99() if have_samples else 0.0,
            mean_ms=self.latencies.mean() if have_samples else 0.0,
            throughput_per_s=(
                self.latencies.count * 1000.0 / measured_ms
                if measured_ms > 0 else 0.0
            ),
            avg_log_bytes=self.log_gauge.time_average(self.sim.now),
            avg_db_bytes=self.db_gauge.time_average(self.sim.now),
            avg_total_bytes=(
                self.log_gauge.time_average(self.sim.now)
                + self.db_gauge.time_average(self.sim.now)
            ),
            latency_series=self.latency_series,
            counters=backend.counters.as_dict(),
            time_by_kind=dict(self.time_by_kind),
            extras=extras,
            node_crashes=self.node_crashes,
            orphaned_invocations=self.orphaned_invocations,
            recovered_orphans=(
                self.coordinator.recovered
                if self.coordinator is not None else 0
            ),
            detection_ms=self.detection_latency,
            takeover_ms=(
                self.coordinator.takeover_latency
                if self.coordinator is not None else None
            ),
            breakdown=self.breakdown,
            metrics=backend.metrics.snapshot(now_ms=self.sim.now),
        )
