"""End-to-end application experiments (Figure 11).

Sweeps offered load for each application workload and each system,
reporting median and p99 latency versus achieved throughput — the three
panels of Figure 11.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..observe import Tracer
from ..workloads import (
    MovieReviewWorkload,
    RetwisWorkload,
    TravelReservationWorkload,
    Workload,
)
from .parallel import SweepCell, pop_crash_notes, run_cells
from .platform import RunResult, SimPlatform
from .report import ExperimentTable

SYSTEMS = ("unsafe", "boki", "halfmoon-read", "halfmoon-write")

APP_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "travel-reservation": TravelReservationWorkload,
    "movie-review": MovieReviewWorkload,
    "retwis": RetwisWorkload,
}

#: Rate sweeps roughly matching the x-axes of Figure 11 (requests/s).
DEFAULT_RATES: Dict[str, Sequence[int]] = {
    "travel-reservation": (100, 300, 500, 700, 900),
    "movie-review": (50, 150, 250, 350, 450),
    "retwis": (100, 300, 500, 700, 900),
}


def run_app_point(
    app: str,
    protocol: str,
    rate_per_s: float,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 6_000.0,
    warmup_ms: float = 1_000.0,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """One (app, system, rate) cell of Figure 11."""
    workload = APP_FACTORIES[app]()
    platform = SimPlatform(
        workload, protocol,
        config if config is not None else SystemConfig(),
        tracer=tracer,
    )
    return platform.run(rate_per_s, duration_ms, warmup_ms=warmup_ms)


def run_fig11(
    apps: Sequence[str] = tuple(APP_FACTORIES),
    systems: Sequence[str] = SYSTEMS,
    rates: Optional[Dict[str, Sequence[int]]] = None,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 6_000.0,
    warmup_ms: float = 1_000.0,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentTable]:
    """Figure 11: latency vs throughput for the three applications.

    ``jobs`` spreads the whole (app, system, rate) grid across a
    process pool; every panel is assembled from results in grid order,
    so output is identical at any job count.
    """
    rates = rates if rates is not None else DEFAULT_RATES
    cells = [
        SweepCell(
            key=("fig11", app, system, rate),
            fn=run_app_point,
            kwargs=dict(
                app=app, protocol=system, rate_per_s=rate,
                config=config, duration_ms=duration_ms,
                warmup_ms=warmup_ms,
            ),
        )
        for app in apps
        for system in systems
        for rate in rates[app]
    ]
    results = iter(run_cells(cells, jobs=jobs, tracer=tracer))
    tables: Dict[str, ExperimentTable] = {}
    for app in apps:
        table = ExperimentTable(
            f"Figure 11: {app} latency vs throughput",
            ["system", "offered (req/s)", "achieved (req/s)",
             "median (ms)", "p99 (ms)"],
        )
        for system in systems:
            for rate in rates[app]:
                result = next(results)
                table.add_row(
                    system, rate, round(result.throughput_per_s, 1),
                    result.median_ms, result.p99_ms,
                )
        table.add_note(
            "expected shape: the matching Halfmoon protocol 20-40% below "
            "Boki; HM-read wins on travel/retwis, HM-write on movie; "
            "both Halfmoon variants beat Boki even when mis-chosen"
        )
        tables[app] = table
    for note in pop_crash_notes():
        for table in tables.values():
            table.add_note(note)
    return tables
