"""Hotspot profiling: ``python -m repro profile``.

Runs one canonical workload cell under :mod:`cProfile` and prints the
top-N hotspots (via :mod:`pstats`).  This is the tool that drove the
kernel fast-path work — the heap loop, ``Timeout`` construction, and
the sampler/charge path dominate, and regressions in any of them show
up immediately at the top of this report.

Targets are the same fixed-seed cells the wall-clock perf baseline
(:mod:`benchmarks.test_perf_baseline`) times, so a profile can always
be matched to a timing regression.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Dict, Optional

from ..config import SystemConfig
from ..errors import SimulationError
from .chaos import run_chaos_point
from .micro import measure_op_latencies
from .shards_exp import run_shard_point

#: pstats sort keys the CLI accepts.
SORT_KEYS = ("cumulative", "tottime", "ncalls")


def _shards_cell(config: Optional[SystemConfig]) -> None:
    base = config if config is not None else SystemConfig(seed=7)
    run_shard_point(
        shards=4, rate_per_s=600.0, protocol="boki", config=base,
        duration_ms=3_000.0,
    )


def _fig10_cell(config: Optional[SystemConfig]) -> None:
    base = config if config is not None else SystemConfig(seed=11)
    measure_op_latencies("halfmoon-read", base, requests=400)


def _chaos_cell(config: Optional[SystemConfig]) -> None:
    run_chaos_point(
        "boki", 0.05, config=config, requests=200,
        seed=None if config is not None else 5,
    )


#: Canonical profiling targets: name -> cell runner.
PROFILE_TARGETS: Dict[str, Callable[[Optional[SystemConfig]], None]] = {
    "shards": _shards_cell,
    "fig10": _fig10_cell,
    "chaos": _chaos_cell,
}


def profile_report(
    target: str = "shards",
    top: int = 25,
    sort: str = "cumulative",
    config: Optional[SystemConfig] = None,
) -> str:
    """Profile one canonical cell and return the pstats report text."""
    if target not in PROFILE_TARGETS:
        raise SimulationError(
            f"unknown profile target {target!r}; "
            f"available: {sorted(PROFILE_TARGETS)}"
        )
    if sort not in SORT_KEYS:
        raise SimulationError(
            f"unknown sort key {sort!r}; available: {list(SORT_KEYS)}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        PROFILE_TARGETS[target](config)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    from ..simulation import active_kernel, requested_kernel

    header = (
        f"profile target={target!r} sort={sort} top={top}\n"
        f"sim kernel: {active_kernel()} "
        f"(REPRO_SIM_KERNEL={requested_kernel()}; the compiled kernel "
        "moves the event loop out of the profile entirely)\n"
        "(cProfile inflates absolute times ~2-3x; compare shapes, "
        "not wall-clock — timings live in benchmarks/BENCH_sweep.json)\n"
    )
    return header + buffer.getvalue()
