"""Experiment harness: the DES platform plus one module per table/figure.

* :mod:`repro.harness.micro` — Table 1 and Figure 10
* :mod:`repro.harness.apps` — Figure 11
* :mod:`repro.harness.overhead` — Figures 12 and 13
* :mod:`repro.harness.switching_exp` — Figure 14
* :mod:`repro.harness.recovery_exp` — Section 7 recovery cost
* :mod:`repro.harness.chaos` — fault rate × resilience policy sweep
  (crashes composed with infrastructure faults) and the log brown-out
  degraded-read ablation
* :mod:`repro.harness.failover` — node crash under load: lease-based
  detection, orphan takeover, exactly-once audit
* :mod:`repro.harness.storagechaos` — storage-plane components killed
  under load: metalog failover behind epoch fencing, shard-replica
  loss, partition rebuild, link partitions; exactly-once plus
  plane-consistency audits per cell
* :mod:`repro.harness.trace_exp` — one fully traced DES run for
  Chrome trace-event export and latency-breakdown reports
* :mod:`repro.harness.shards_exp` — storage-plane scaling: p99 vs load
  as the log splits across 1/2/4/8 shards
* :mod:`repro.harness.scale_exp` — sequencer scaling: p99 + sequencer
  occupancy vs offered load per sequencing strategy (monolith /
  batched / leased-ranges) under Zipf-skewed 10⁵–10⁶-user traffic
* :mod:`repro.harness.live_exp` — the live compute-plane audit:
  real worker processes, seeded SIGKILLs, wall-clock leases
  (``python -m repro live``)
* :mod:`repro.harness.parallel` — the sweep executor: independent,
  deterministically-seeded cells over a process pool (``--jobs``),
  bit-identical to serial execution
* :mod:`repro.harness.profile_exp` — cProfile hotspot reports for the
  canonical cells (``python -m repro profile``)
"""

from .apps import APP_FACTORIES, run_app_point, run_fig11
from .chaos import (
    ChaosPoint,
    run_brownout_comparison,
    run_chaos_point,
    run_chaos_sweep,
)
from .failover import (
    CounterWorkload,
    FailoverPoint,
    run_failover_point,
    run_failover_sweep,
)
from .micro import measure_op_latencies, run_fig10, run_table1
from .live_exp import (
    LivePoint,
    audit_live_points,
    run_live,
    run_live_point,
)
from .parallel import (
    SweepCell,
    SweepInterrupted,
    default_jobs,
    pop_crash_notes,
    run_cells,
    seed_for,
)
from .overhead import (
    crossover_ratio,
    run_fig12,
    run_fig13,
    run_latency_breakdown,
    run_overhead_point,
)
from .platform import RunResult, SimPlatform
from .profile_exp import PROFILE_TARGETS, profile_report
from .recovery_exp import run_recovery_point, run_recovery_sweep
from .scale_exp import (
    run_scale_point,
    run_scale_sweep,
    scale_sweep_config,
)
from .shards_exp import (
    run_shard_point,
    run_shard_sweep,
    shard_sweep_config,
)
from .report import ExperimentTable
from .storagechaos import (
    StorageChaosPoint,
    run_storagechaos_point,
    run_storagechaos_sweep,
)
from .trace_exp import (
    run_trace,
    trace_breakdown_table,
    trace_summary_table,
)
from .switching_exp import (
    SwitchingResult,
    run_fig14,
    run_fig14_point,
)

__all__ = [
    "APP_FACTORIES",
    "ChaosPoint",
    "PROFILE_TARGETS",
    "CounterWorkload",
    "ExperimentTable",
    "FailoverPoint",
    "RunResult",
    "SimPlatform",
    "LivePoint",
    "StorageChaosPoint",
    "SweepCell",
    "SweepInterrupted",
    "SwitchingResult",
    "crossover_ratio",
    "default_jobs",
    "profile_report",
    "measure_op_latencies",
    "run_app_point",
    "run_brownout_comparison",
    "run_cells",
    "run_chaos_point",
    "run_chaos_sweep",
    "run_failover_point",
    "run_failover_sweep",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig14_point",
    "audit_live_points",
    "pop_crash_notes",
    "run_latency_breakdown",
    "run_live",
    "run_live_point",
    "run_overhead_point",
    "run_recovery_point",
    "run_recovery_sweep",
    "run_scale_point",
    "run_scale_sweep",
    "run_shard_point",
    "run_shard_sweep",
    "scale_sweep_config",
    "run_storagechaos_point",
    "run_storagechaos_sweep",
    "run_table1",
    "seed_for",
    "shard_sweep_config",
    "run_trace",
    "trace_breakdown_table",
    "trace_summary_table",
]
