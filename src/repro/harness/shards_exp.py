"""Storage-plane scaling experiment: p99 latency vs offered load as the
log is split across 1/2/4/8 shards.

The paper's testbed treats the logging layer as a fixed three-node
service because, at its request rates, "logging is typically not the
bottleneck" (Section 6.2).  This experiment asks the follow-up question
the sharded storage plane exists to answer: *when* logging does become
the bottleneck, how far does splitting the metalog's record placement
across N shards push the saturation knee?

Method: the fig10-13 mixed-ratio workload runs against the ``sharded``
backend at N ∈ {1, 2, 4, 8} log shards with the DES per-shard queueing
model enabled (every append queues at *its record's* shard station, so
hot shards saturate individually).  The sequencer stays a single
station at every N — that is the metalog: ordering is centralized,
capacity is horizontal, which is exactly the Boki decomposition.

Expected shape: at low load all shard counts agree to within noise (the
plane adds no per-operation cost, only placement); at high load p99
improves monotonically 1 → 4 shards as per-shard utilisation drops,
with diminishing returns once the sequencer or the workers dominate.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..config import SystemConfig
from ..observe import Tracer
from ..workloads.synthetic import MixedRatioWorkload
from .parallel import SweepCell, pop_crash_notes, run_cells
from .platform import RunResult, SimPlatform
from .report import ExperimentTable

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
DEFAULT_RATES = (150.0, 300.0, 600.0)


def shard_sweep_config(
    shards: int,
    base: Optional[SystemConfig] = None,
    kv_partitions: Optional[int] = None,
    log_shard_service_ms: float = 0.1,
    store_partition_service_ms: float = 0.05,
    placement: str = "hash",
) -> SystemConfig:
    """The sweep's operating point for one shard count.

    Always selects the ``sharded`` backend — including at N=1, so every
    point queues at exactly N stations and the comparison is
    station-for-station fair (the ``single`` backend would spread
    appends round-robin over ``cluster.storage_nodes`` stations).  The
    per-append shard service time is raised above the default so the
    single-shard station saturates inside the sweep's rate range.
    """
    base = base if base is not None else SystemConfig()
    config = base.with_storage_plane(
        log_shards=shards,
        kv_partitions=kv_partitions if kv_partitions is not None else shards,
        backend="sharded",
        placement=placement,
    )
    return replace(
        config,
        cluster=replace(
            config.cluster,
            model_log_contention=True,
            model_store_contention=True,
            log_shard_service_ms=log_shard_service_ms,
            store_partition_service_ms=store_partition_service_ms,
        ),
    )


def run_shard_point(
    shards: int,
    rate_per_s: float,
    protocol: str = "boki",
    read_ratio: float = 0.5,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 8_000.0,
    warmup_ms: float = 1_000.0,
    num_keys: int = 2_000,
    ops_per_request: int = 10,
    kv_partitions: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """One (shard count, offered rate) cell of the sweep."""
    workload = MixedRatioWorkload(
        read_ratio, num_keys=num_keys, ops_per_request=ops_per_request
    )
    platform = SimPlatform(
        workload, protocol,
        shard_sweep_config(shards, config, kv_partitions=kv_partitions),
        tracer=tracer,
    )
    result = platform.run(rate_per_s, duration_ms, warmup_ms=warmup_ms)
    # Stash the queueing totals the table reports (RunResult carries
    # latency stats; the waits live on the platform).
    result.extras["log_wait_ms_total"] = platform.log_wait_ms_total
    result.extras["store_wait_ms_total"] = platform.store_wait_ms_total
    return result


def run_shard_sweep(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    rates: Sequence[float] = DEFAULT_RATES,
    protocol: str = "boki",
    read_ratio: float = 0.5,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 8_000.0,
    warmup_ms: float = 1_000.0,
    num_keys: int = 2_000,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """p50/p99 vs offered load for each log-shard count.

    ``jobs`` fans the grid's cells out over a process pool; the table
    is bit-identical at every job count (each cell is self-contained).
    """
    table = ExperimentTable(
        f"Storage-plane scaling: {protocol} latency vs load by log shards "
        f"(read ratio {read_ratio})",
        ["log shards", "rate (req/s)", "median (ms)", "p99 (ms)",
         "log wait (ms/req)", "seq occupancy"],
    )
    grid = [(shards, rate) for shards in shard_counts for rate in rates]
    cells = [
        SweepCell(
            key=("shards", shards, "rate", rate),
            fn=run_shard_point,
            kwargs=dict(
                shards=shards, rate_per_s=rate, protocol=protocol,
                read_ratio=read_ratio, config=config,
                duration_ms=duration_ms, warmup_ms=warmup_ms,
                num_keys=num_keys,
            ),
        )
        for shards, rate in grid
    ]
    results = run_cells(cells, jobs=jobs, tracer=tracer)
    for (shards, rate), result in zip(grid, results):
        per_request_wait = result.extras["log_wait_ms_total"] / max(
            result.completed, 1
        )
        table.add_row(
            shards, rate, result.median_ms, result.p99_ms,
            per_request_wait,
            result.extras["sequencer"]["occupancy"],
        )
    table.add_note(
        "expected shape: low-load medians within noise across shard "
        "counts (placement is free); at the highest rate p99 and per-"
        "request log wait drop monotonically 1 -> 4 shards as per-shard "
        "utilisation falls; the single sequencer (the metalog) is shared "
        "by every point"
    )
    for note in pop_crash_notes():
        table.add_note(note)
    return table
