"""Switching-delay experiment (Section 6.4, Figure 14).

A two-phase workload alternates between write-intensive (read ratio 0.2,
run under Halfmoon-write) and read-intensive (read ratio 0.8, under
Halfmoon-read) every few seconds.  At each phase boundary the runtime
starts a pauseless switch; the measured delay is the window between the
BEGIN and END transition records — dominated by waiting for in-flight
SSFs using the old protocol to finish, which is why switching *away from*
the write-heavy phase takes longer under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ClusterConfig, SystemConfig
from ..simulation.metrics import TimeSeries
from ..workloads.generator import Phase, PhasedSchedule
from ..workloads.synthetic import MixedRatioWorkload
from .platform import SimPlatform
from .report import ExperimentTable

#: Figure 14 sizes the cluster so the synthetic workload saturates near
#: 800 requests/s, as in the paper (600 req/s is then a high-load point).
FIG14_CONFIG = SystemConfig(
    cluster=ClusterConfig(function_nodes=8, workers_per_node=3)
)

WRITE_PHASE = Phase(5_000.0, read_ratio=0.2, protocol="halfmoon-write")
READ_PHASE = Phase(5_000.0, read_ratio=0.8, protocol="halfmoon-read")


@dataclass
class SwitchingResult:
    rate_per_s: float
    switch_delays: List[Dict]
    latency_series: TimeSeries = field(repr=False, default=None)
    completed: int = 0

    def delays_ms(self) -> List[float]:
        return [
            entry["delay_ms"] for entry in self.switch_delays
            if entry["delay_ms"] is not None
        ]

    def delay_for(self, target: str) -> List[float]:
        return [
            entry["delay_ms"] for entry in self.switch_delays
            if entry["to"] == target and entry["delay_ms"] is not None
        ]


def run_fig14_point(
    rate_per_s: float,
    config: Optional[SystemConfig] = None,
    phases: Optional[Sequence[Phase]] = None,
    num_keys: int = 2_000,
) -> SwitchingResult:
    """One panel of Figure 14: phased run with switches at boundaries."""
    schedule = PhasedSchedule(
        list(phases) if phases is not None
        else [WRITE_PHASE, READ_PHASE, WRITE_PHASE, READ_PHASE]
    )
    first = schedule.phases[0]
    workload = MixedRatioWorkload(first.read_ratio, num_keys=num_keys)
    platform = SimPlatform(
        workload,
        first.protocol or "halfmoon-write",
        config if config is not None else FIG14_CONFIG,
        enable_switching=True,
    )

    for start_ms, phase in zip(
        schedule.boundaries_ms()[1:], schedule.phases[1:]
    ):
        def change(phase=phase):
            workload.read_ratio_value = phase.read_ratio
            if (phase.protocol is not None
                    and platform.runtime.switch_manager is not None
                    and platform.runtime.switch_manager.current_protocol
                    != phase.protocol
                    and not platform.runtime.switch_manager.in_progress):
                platform.runtime.begin_switch(phase.protocol)

        platform.at(start_ms, change)

    result = platform.run(
        rate_per_s, schedule.total_duration_ms(), warmup_ms=0.0
    )
    manager = platform.runtime.switch_manager
    return SwitchingResult(
        rate_per_s=rate_per_s,
        switch_delays=list(manager.switch_history) if manager else [],
        latency_series=result.latency_series,
        completed=result.completed,
    )


def run_fig14(
    rates: Sequence[float] = (300.0, 600.0),
    config: Optional[SystemConfig] = None,
) -> ExperimentTable:
    """Figure 14: switching delay at moderate and high load."""
    table = ExperimentTable(
        "Figure 14: protocol switching delay",
        ["rate (req/s)", "direction", "delay (ms)"],
    )
    for rate in rates:
        result = run_fig14_point(rate, config)
        for entry in result.switch_delays:
            table.add_row(
                rate,
                f"{entry['from']} -> {entry['to']}",
                entry["delay_ms"],
            )
    table.add_note(
        "expected shape: sub-second switches; HM-write -> HM-read slower "
        "than the reverse at high load (longer-running write-phase SSFs "
        "must drain first)"
    )
    return table
