"""Failover experiment: node crashes under load, per protocol.

Drives an increment workload through the DES platform, kills one or
more function nodes mid-run, and measures the full recovery pipeline:
lease-expiry detection, orphan takeover, and log-guided replay on the
surviving nodes.  Because detection latency is a simulated cost, the
sweep shows takeover time scaling with the configured lease duration —
and because every system replays through its own protocol, the
Section 7 recovery-cost asymmetry (Boki's symmetric replay vs.
Halfmoon's log-free re-execution) shows up in the tail latency of the
recovered requests.

The audit is the same ground-truth construction the chaos harness uses:
every completed ``bump`` increments a computable expected count, and
after the run each key is probed through the protocol.  The logged
protocols must report **zero** violations even when node crashes are
composed with infrastructure faults.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..config import SystemConfig
from ..observe import LatencyBreakdown, Tracer
from ..protocols.registry import PROTOCOL_CLASSES
from ..runtime.ops import ComputeOp, ReadOp, WriteOp
from ..workloads.base import Request, Workload
from .parallel import SweepCell, pop_crash_notes, run_cells
from .platform import RunResult, SimPlatform
from .report import ExperimentTable

#: Systems in the default sweep — the three that promise exactly-once.
DEFAULT_SYSTEMS = ("boki", "halfmoon-read", "halfmoon-write")


class CounterWorkload(Workload):
    """Read-modify-write counters with a computable correct final state.

    ``bump`` is written op-style with a compute step between the read
    and the write, so invocations are in flight long enough for a node
    crash to strand some of them mid-execution.

    Every ``bump`` targets a *fresh* key, so the ground truth is free of
    concurrent read-modify-write races between distinct requests (which
    lose updates regardless of protocol — exactly-once is per
    invocation, not serializability across them).  The audit still
    catches the recovery anomalies that matter: a lost orphan leaves its
    key at 0, and a takeover that blindly re-applies a bump whose write
    already landed reads 1 and writes 2.
    """

    name = "failover-counters"

    def __init__(self, num_keys: int = 4_096, read_ratio: float = 0.3,
                 compute_ms: float = 8.0):
        self.keys = [f"c{i}" for i in range(num_keys)]
        self.read_ratio = read_ratio
        self.compute_ms = compute_ms
        self._next_key = 0

    def register(self, runtime) -> None:
        compute_ms = self.compute_ms

        def bump(key):
            value = yield ReadOp(key)
            yield ComputeOp(compute_ms)
            yield WriteOp(key, value + 1)
            return value + 1

        def peek(key):
            value = yield ReadOp(key)
            return value

        def probe(ctx, key):
            return ctx.read(key)

        runtime.register("bump", bump)
        runtime.register("peek", peek)
        runtime.register("probe", probe)

    def populate(self, runtime) -> None:
        for key in self.keys:
            runtime.populate(key, 0)

    def next_request(self, rng: np.random.Generator) -> Request:
        if (self._next_key > 0
                and float(rng.random()) < self.read_ratio):
            key = self.keys[int(rng.integers(0, self._next_key))]
            return Request("peek", key)
        if self._next_key >= len(self.keys):
            raise RuntimeError(
                f"CounterWorkload key pool ({len(self.keys)}) "
                "exhausted; size num_keys above the expected bump count"
            )
        key = self.keys[self._next_key]
        self._next_key += 1
        return Request("bump", key)

    def read_write_profile(self) -> Tuple[float, float]:
        return (1.0, 1.0 - self.read_ratio)


@dataclass
class FailoverPoint:
    """Outcome of one (system, lease) failover run."""

    protocol: str
    lease_ms: float
    recovery_mode: str
    result: RunResult
    #: Keys whose audited value disagrees with the ground truth.
    violations: int
    expected_bumps: int


def run_failover_point(
    protocol: str,
    lease_ms: float,
    crash_at_ms: float = 1_500.0,
    crash_nodes: Sequence[int] = (0,),
    rate_per_s: float = 600.0,
    duration_ms: float = 4_000.0,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    fault_rate: float = 0.0,
    num_keys: Optional[int] = None,
    compute_ms: float = 8.0,
    drain_ms: float = 12_000.0,
    tracer: Optional[Tracer] = None,
) -> FailoverPoint:
    """One failover cell: crash ``crash_nodes`` at ``crash_at_ms``.

    The heartbeat interval and detector poll scale with the lease so
    detection latency stays a fixed multiple of it (the detector fires
    within ``lease + lease/5 + lease/20`` of the crash); ``drain_ms``
    must cover detection plus replay of the takeover backlog.
    """
    base = config if config is not None else SystemConfig()
    if seed is not None:
        base = base.with_seed(seed)
    if fault_rate > 0.0:
        base = base.with_fault_rate(fault_rate)
    cfg = replace(
        base.with_node_recovery(
            lease_ms=lease_ms,
            heartbeat_interval_ms=lease_ms / 5.0,
            detector_poll_ms=lease_ms / 20.0,
        ),
        cluster=replace(base.cluster, function_nodes=4,
                        workers_per_node=4),
    ).validate()

    if num_keys is None:
        # Fresh key per bump: size the pool at twice the offered load
        # (a >2x Poisson excursion is effectively impossible).
        num_keys = int(rate_per_s * duration_ms / 1000.0) * 2 + 64
    workload = CounterWorkload(num_keys=num_keys,
                               compute_ms=compute_ms)
    platform = SimPlatform(workload, protocol, config=cfg,
                           tracer=tracer)

    expected: Dict[str, int] = {key: 0 for key in workload.keys}

    def on_complete(request: Request, latency_ms: float) -> None:
        if request.func_name == "bump":
            expected[request.input] += 1

    platform.on_request_complete = on_complete
    for node_id in crash_nodes:
        platform.schedule_node_crash(crash_at_ms, node_id)

    result = platform.run(rate_per_s, duration_ms, drain_ms=drain_ms)

    # Audit: probe every key through the protocol (a fresh direct-mode
    # invocation observes committed state) against the ground truth.
    violations = 0
    for key in workload.keys:
        observed = platform.runtime.invoke("probe", key).output
        if observed != expected[key]:
            violations += 1

    return FailoverPoint(
        protocol=protocol,
        lease_ms=lease_ms,
        recovery_mode=PROTOCOL_CLASSES[protocol].recovery_mode,
        result=result,
        violations=violations,
        expected_bumps=sum(expected.values()),
    )


def run_failover_sweep(
    lease_values: Sequence[float] = (250.0, 1_000.0, 4_000.0),
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    crash_at_ms: float = 1_500.0,
    crash_nodes: Sequence[int] = (0,),
    rate_per_s: float = 600.0,
    duration_ms: float = 4_000.0,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    fault_rate: float = 0.05,
    num_keys: Optional[int] = None,
    compute_ms: float = 8.0,
    tracer: Optional[Tracer] = None,
    breakdowns: Optional[Dict[str, LatencyBreakdown]] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """Lease duration × system sweep with one node crash under load.

    Node crashes are composed with infrastructure faults at
    ``fault_rate`` so recovery is exercised against the same substrate
    misbehaviour the chaos experiment injects.

    ``breakdowns``, if supplied, is filled with each system's
    per-request latency decomposition at the *first* (shortest) lease —
    where takeover-gap and detection stages are easiest to compare.

    ``jobs`` fans the (system, lease) cells out over a process pool;
    results are reassembled in grid order, so the table and the
    ``breakdowns`` selection are identical at every job count.
    """
    table = ExperimentTable(
        "Failover: node crash at "
        f"t={crash_at_ms:.0f}ms (nodes {list(crash_nodes)}, "
        f"infra fault rate {fault_rate})",
        ["system", "lease (ms)", "recovery", "completed", "orphans",
         "recovered", "detect (ms)", "takeover p50 (ms)",
         "takeover p99 (ms)", "faulted", "violations"],
    )
    cells = [
        SweepCell(
            key=("failover", system, lease_ms),
            fn=run_failover_point,
            kwargs=dict(
                protocol=system, lease_ms=lease_ms,
                crash_at_ms=crash_at_ms, crash_nodes=crash_nodes,
                rate_per_s=rate_per_s, duration_ms=duration_ms,
                config=config, seed=seed, fault_rate=fault_rate,
                num_keys=num_keys, compute_ms=compute_ms,
            ),
        )
        for system in systems
        for lease_ms in lease_values
    ]
    points = iter(run_cells(cells, jobs=jobs, tracer=tracer))
    for system in systems:
        for lease_ms in lease_values:
            point = next(points)
            result = point.result
            if breakdowns is not None:
                breakdowns.setdefault(system, result.breakdown)
            detect = result.detection_ms
            takeover = result.takeover_ms
            table.add_row(
                system, lease_ms, point.recovery_mode,
                result.completed, result.orphaned_invocations,
                result.recovered_orphans,
                detect.mean() if detect and detect.count else 0.0,
                takeover.median() if takeover and takeover.count else 0.0,
                takeover.p99() if takeover and takeover.count else 0.0,
                result.faulted_attempts, point.violations,
            )
    table.add_note(
        "detect = mean lease-expiry detection latency; takeover = time "
        "from crash to an orphan's re-dispatch on a survivor."
    )
    table.add_note(
        "violations = keys whose audited value diverges from the "
        "ground-truth increment count (must be 0 for logged protocols)."
    )
    for note in pop_crash_notes():
        table.add_note(note)
    return table
