"""System-overhead experiments (Section 6.3, Figures 12 and 13).

Both figures use the synthetic SSF that issues ten operations per request
against uniformly random objects, sweeping the read ratio:

* :func:`run_fig12` measures *time-averaged storage* (log + database)
  under different object sizes and GC intervals; the crossover between
  Halfmoon-read and Halfmoon-write should sit slightly above read ratio
  0.5 and be insensitive to the GC interval.

* :func:`run_fig13` measures *median request latency* at several request
  rates; the crossover should sit near read ratio 2/3 (slightly above,
  because C_w exceeds 2 C_r in practice) and be insensitive to load.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..observe import LatencyBreakdown, Tracer, breakdown_table
from ..workloads.synthetic import MixedRatioWorkload
from .parallel import SweepCell, pop_crash_notes, run_cells
from .platform import RunResult, SimPlatform
from .report import ExperimentTable

SYSTEMS = ("boki", "halfmoon-read", "halfmoon-write")
DEFAULT_RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_overhead_point(
    protocol: str,
    read_ratio: float,
    config: Optional[SystemConfig] = None,
    rate_per_s: float = 60.0,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 2_000.0,
    num_keys: int = 600,
    ops_per_request: int = 10,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """One (system, read-ratio) cell shared by Figures 12 and 13."""
    workload = MixedRatioWorkload(
        read_ratio, num_keys=num_keys, ops_per_request=ops_per_request
    )
    platform = SimPlatform(
        workload, protocol,
        config if config is not None else SystemConfig(),
        tracer=tracer,
    )
    return platform.run(rate_per_s, duration_ms, warmup_ms=warmup_ms)


def run_fig12(
    value_bytes: int = 256,
    gc_interval_ms: float = 10_000.0,
    read_ratios: Sequence[float] = DEFAULT_RATIOS,
    systems: Sequence[str] = SYSTEMS,
    config: Optional[SystemConfig] = None,
    rate_per_s: float = 60.0,
    duration_ms: float = 30_000.0,
    num_keys: int = 600,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """One panel of Figure 12: storage vs read ratio."""
    base = config if config is not None else SystemConfig()
    base = base.with_value_bytes(value_bytes).with_gc_interval(
        gc_interval_ms
    )
    table = ExperimentTable(
        f"Figure 12: storage overhead "
        f"(size={value_bytes}B, GC={gc_interval_ms / 1000:.0f}s)",
        ["system", "read ratio", "avg log (KB)", "avg db (KB)",
         "avg total (KB)"],
    )
    grid = [(s, r) for s in systems for r in read_ratios]
    cells = [
        SweepCell(
            key=("fig12", value_bytes, gc_interval_ms, system, ratio),
            fn=run_overhead_point,
            kwargs=dict(
                protocol=system, read_ratio=ratio, config=base,
                rate_per_s=rate_per_s, duration_ms=duration_ms,
                num_keys=num_keys,
            ),
        )
        for system, ratio in grid
    ]
    results = run_cells(cells, jobs=jobs, tracer=tracer)
    for (system, ratio), result in zip(grid, results):
        table.add_row(
            system, ratio,
            result.avg_log_bytes / 1024.0,
            result.avg_db_bytes / 1024.0,
            result.avg_total_bytes / 1024.0,
        )
    table.add_note(
        "expected shape: HM-write storage grows with read ratio (read "
        "log), HM-read shrinks (fewer versions); crossover slightly above "
        "0.5; Boki above the best protocol everywhere; crossover "
        "insensitive to GC interval"
    )
    for note in pop_crash_notes():
        table.add_note(note)
    return table


def run_fig13(
    rates: Sequence[float] = (100.0, 200.0, 300.0, 400.0),
    read_ratios: Sequence[float] = DEFAULT_RATIOS,
    systems: Sequence[str] = SYSTEMS,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 8_000.0,
    num_keys: int = 2_000,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> Dict[float, ExperimentTable]:
    """Figure 13: median latency vs read ratio at several request rates.

    The full (rate, system, ratio) grid is one cell set, so ``jobs``
    parallelises across every panel at once.
    """
    cells = [
        SweepCell(
            key=("fig13", rate, system, ratio),
            fn=run_overhead_point,
            kwargs=dict(
                protocol=system, read_ratio=ratio, config=config,
                rate_per_s=rate, duration_ms=duration_ms,
                warmup_ms=1_000.0, num_keys=num_keys,
            ),
        )
        for rate in rates
        for system in systems
        for ratio in read_ratios
    ]
    results = iter(run_cells(cells, jobs=jobs, tracer=tracer))
    tables: Dict[float, ExperimentTable] = {}
    for rate in rates:
        table = ExperimentTable(
            f"Figure 13: runtime overhead at {rate:.0f} requests/s",
            ["system", "read ratio", "median (ms)", "p99 (ms)"],
        )
        for system in systems:
            for ratio in read_ratios:
                result = next(results)
                table.add_row(
                    system, ratio, result.median_ms, result.p99_ms
                )
        table.add_note(
            "expected shape: HM-read latency falls with read ratio, "
            "HM-write rises; crossover near 2/3 regardless of rate; both "
            "below Boki (1.2-1.5x)"
        )
        tables[rate] = table
    for note in pop_crash_notes():
        for table in tables.values():
            table.add_note(note)
    return tables


def run_latency_breakdown(
    read_ratio: float = 0.5,
    systems: Sequence[str] = SYSTEMS,
    config: Optional[SystemConfig] = None,
    rate_per_s: float = 150.0,
    duration_ms: float = 8_000.0,
    warmup_ms: float = 1_000.0,
    num_keys: int = 2_000,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """Per-protocol latency breakdown at one overhead operating point.

    Shows *where* each system's request milliseconds go — queueing vs
    logAppend vs logReadPrev vs store operations vs retries — which is
    the mechanism behind the Figure 13 crossover: Halfmoon-read removes
    the read log from the critical path, Halfmoon-write the write log.
    Stage components sum exactly to the end-to-end latency (see
    :mod:`repro.observe.breakdown`).
    """
    cells = [
        SweepCell(
            key=("breakdown", system, read_ratio),
            fn=run_overhead_point,
            kwargs=dict(
                protocol=system, read_ratio=read_ratio, config=config,
                rate_per_s=rate_per_s, duration_ms=duration_ms,
                warmup_ms=warmup_ms, num_keys=num_keys,
            ),
        )
        for system in systems
    ]
    results = run_cells(cells, jobs=jobs, tracer=tracer)
    breakdowns: Dict[str, LatencyBreakdown] = {
        system: result.breakdown
        for system, result in zip(systems, results)
    }
    table = breakdown_table(
        breakdowns,
        f"Latency breakdown (read ratio {read_ratio}, "
        f"{rate_per_s:.0f} req/s)",
    )
    for note in pop_crash_notes():
        table.add_note(note)
    return table


def crossover_ratio(
    table: ExperimentTable,
    metric: str,
    read_ratios: Sequence[float] = DEFAULT_RATIOS,
) -> float:
    """Estimate the read ratio where HM-read's metric first drops below
    HM-write's (linear interpolation between sampled ratios)."""
    reads = [
        table.lookup({"system": "halfmoon-read", "read ratio": r}, metric)
        for r in read_ratios
    ]
    writes = [
        table.lookup({"system": "halfmoon-write", "read ratio": r}, metric)
        for r in read_ratios
    ]
    previous_delta = None
    for i, ratio in enumerate(read_ratios):
        delta = reads[i] - writes[i]
        if delta <= 0:
            if previous_delta is None or previous_delta <= 0:
                return ratio
            # Interpolate the zero crossing.
            r0, r1 = read_ratios[i - 1], ratio
            return r0 + (r1 - r0) * previous_delta / (
                previous_delta - delta
            )
        previous_delta = delta
    return 1.0
