"""Chaos experiment: fault rate × resilience policy sweep.

Drives an increment-style workload — whose correct final state is
computable by construction — while **both** fault dimensions are active:
instance crashes (Bernoulli, as in the Section 7 recovery experiment)
and infrastructure faults (transient log/store errors, timeouts, gray
failure; :mod:`repro.faults`).  For every point the harness reports

* goodput (requests per simulated second),
* latency (median / p99) and the p99 *amplification* over the
  failure-free point of the same system,
* how hard the resilience layer worked (substrate retries, degraded
  cache-served log reads, dropped background appends, breaker trips),
* exactly-once violations: after the run, every key is probed through
  the protocol and compared against the ground-truth increment count.
  The logged protocols must report **zero**; the unsafe baseline is the
  demonstration that the number is not trivially zero.

A second experiment, :func:`run_brownout_comparison`, brows out the
logging layer only (gray/timeout faults at high rate, ``scope="log"``)
and compares log-read p99 with the circuit-breaker's degraded cache
path enabled vs disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..config import SystemConfig
from ..observe import LatencyBreakdown, Tracer
from ..runtime.failures import BernoulliCrashes
from ..runtime.local import LocalRuntime
from ..simulation.metrics import LatencyRecorder
from .parallel import SweepCell, pop_crash_notes, run_cells
from .report import ExperimentTable

#: Systems included in the default sweep; ``unsafe`` is the control that
#: proves the violation counter can fire.
DEFAULT_SYSTEMS = ("unsafe", "boki", "halfmoon-read", "halfmoon-write")

#: Systems that must uphold exactly-once under chaos.
EXACTLY_ONCE_SYSTEMS = ("boki", "halfmoon-read", "halfmoon-write")


@dataclass
class ChaosPoint:
    """Outcome of one (system, fault rate) chaos run."""

    protocol: str
    fault_rate: float
    crash_f: float
    requests: int
    latency: LatencyRecorder
    violations: int
    retries: int
    degraded_reads: int
    dropped_appends: int
    breaker_trips: int
    crashes_fired: int
    counters: Dict[str, int] = field(default_factory=dict)
    #: Per-request latency decomposition built from each invocation's
    #: ``cost_by_kind`` (stages sum exactly to the request latency).
    breakdown: Optional[LatencyBreakdown] = None

    @property
    def faulted_attempts(self) -> int:
        """Attempts abandoned because a substrate blew its retry budget."""
        return self.counters.get("attempts_lost_to_service_faults", 0)

    @property
    def goodput_per_s(self) -> float:
        """Requests completed per simulated second (direct mode runs
        requests back-to-back, so total simulated time is the latency
        sum)."""
        total_ms = sum(self.latency.samples)
        if total_ms <= 0:
            return 0.0
        return self.requests * 1000.0 / total_ms


def _increment_workload(runtime: LocalRuntime, num_keys: int):
    """Register the chaos workload: counters whose correct final value
    is the number of increment requests routed to each key."""
    keys = [f"c{i}" for i in range(num_keys)]
    for key in keys:
        runtime.populate(key, 0)

    def bump(ctx, key):
        value = ctx.read(key)
        ctx.write(key, value + 1)
        return value + 1

    def peek(ctx, key):
        return ctx.read(key)

    def probe(ctx, key):
        return ctx.read(key)

    runtime.register("bump", bump)
    runtime.register("peek", peek)
    runtime.register("probe", probe)
    return keys


def run_chaos_point(
    protocol: str,
    fault_rate: float,
    config: Optional[SystemConfig] = None,
    requests: int = 200,
    num_keys: int = 40,
    read_ratio: float = 0.4,
    crash_f: float = 0.15,
    crash_horizon: int = 6,
    seed: Optional[int] = None,
    tracer: Optional[Tracer] = None,
) -> ChaosPoint:
    """One chaos cell: drive the workload, then audit the final state.

    ``crash_horizon`` is small because the workload's invocations are
    short (a handful of checkpoints each); a crash draw beyond the last
    checkpoint is a no-op, so a tight horizon keeps the *effective*
    crash rate close to ``crash_f``.
    """
    base = config if config is not None else SystemConfig()
    if seed is not None:
        base = base.with_seed(seed)
    cfg = base.with_fault_rate(fault_rate).validate()
    runtime = LocalRuntime(cfg, protocol=protocol)
    runtime.backend.tracer = tracer
    if crash_f > 0.0:
        runtime.crash_policy = BernoulliCrashes(
            crash_f, runtime.backend.rng.stream("chaos-crashes"),
            horizon=crash_horizon,
        )
    keys = _increment_workload(runtime, num_keys)
    rng = runtime.backend.rng.stream("chaos-requests")

    latency = LatencyRecorder(f"{protocol}@fault={fault_rate}")
    breakdown = LatencyBreakdown(f"{protocol}@fault={fault_rate}")
    expected: Dict[str, int] = {key: 0 for key in keys}
    for _ in range(requests):
        key = keys[int(rng.integers(0, len(keys)))]
        if float(rng.random()) < read_ratio:
            result = runtime.invoke("peek", key)
        else:
            result = runtime.invoke("bump", key)
            expected[key] += 1
        latency.record(result.latency_ms)
        breakdown.record(result.cost_by_kind)

    # Audit: read every key through the protocol (a fresh invocation, so
    # the value observed is the committed state) and compare against the
    # ground truth.  Any mismatch is an exactly-once violation.
    violations = 0
    for key in keys:
        observed = runtime.invoke("probe", key).output
        if observed != expected[key]:
            violations += 1

    counters = runtime.backend.counters.as_dict()
    policy = runtime.crash_policy
    return ChaosPoint(
        protocol=protocol,
        fault_rate=fault_rate,
        crash_f=crash_f,
        requests=requests,
        latency=latency,
        violations=violations,
        retries=counters.get("service_retries", 0),
        degraded_reads=counters.get("degraded_log_reads", 0),
        dropped_appends=counters.get("background_appends_dropped", 0),
        breaker_trips=runtime.backend.breaker_trips(),
        crashes_fired=getattr(policy, "crashes_fired", 0),
        counters=counters,
        breakdown=breakdown,
    )


def run_chaos_sweep(
    fault_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    config: Optional[SystemConfig] = None,
    requests: int = 200,
    num_keys: int = 40,
    read_ratio: float = 0.4,
    crash_f: float = 0.15,
    crash_horizon: int = 6,
    seed: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    breakdowns: Optional[Dict[str, LatencyBreakdown]] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """Fault rate × system sweep under composed crashes + infra faults.

    ``breakdowns``, if supplied, is filled with each system's
    per-request latency decomposition at the *highest* fault rate —
    the point where retry/detection stages matter most.

    ``jobs`` runs the (system, rate) cells over a process pool; rows,
    amplification baselines, and breakdowns come out identical because
    the cells are reassembled in grid order before any of that logic.
    """
    table = ExperimentTable(
        "Chaos: goodput and latency under crashes + infrastructure "
        f"faults (crash f={crash_f})",
        ["system", "fault rate", "goodput (req/s)", "median (ms)",
         "p99 (ms)", "p99 amp", "retries", "degraded", "faulted",
         "violations"],
    )
    cells = [
        SweepCell(
            key=("chaos", system, rate),
            fn=run_chaos_point,
            kwargs=dict(
                protocol=system, fault_rate=rate, config=config,
                requests=requests, num_keys=num_keys,
                read_ratio=read_ratio, crash_f=crash_f,
                crash_horizon=crash_horizon, seed=seed,
            ),
        )
        for system in systems
        for rate in fault_rates
    ]
    points = iter(run_cells(cells, jobs=jobs, tracer=tracer))
    for system in systems:
        baseline_p99 = None
        for rate in fault_rates:
            point = next(points)
            if breakdowns is not None:
                # Fault rates sweep in ascending order; keep the last.
                breakdowns[system] = point.breakdown
            p99 = point.latency.p99()
            if baseline_p99 is None:
                baseline_p99 = p99
            table.add_row(
                system, rate, point.goodput_per_s,
                point.latency.median(), p99,
                p99 / baseline_p99 if baseline_p99 > 0 else 1.0,
                point.retries, point.degraded_reads,
                point.faulted_attempts, point.violations,
            )
    table.add_note(
        "expected: zero violations for every logged protocol at every "
        "fault rate; the unsafe baseline violates under crashes"
    )
    table.add_note(
        "p99 amp is each system's p99 over its own fault-free p99 — "
        "retry/backoff time charged by the resilience layer"
    )
    for note in pop_crash_notes():
        table.add_note(note)
    return table


def run_brownout_comparison(
    config: Optional[SystemConfig] = None,
    requests: int = 250,
    num_keys: int = 30,
    brownout_rate: float = 0.35,
    seed: Optional[int] = None,
) -> ExperimentTable:
    """Log brown-out: circuit-breaker cache fallback on vs off.

    Faults target the log only (``scope="log"``); the workload is
    read-heavy under ``halfmoon-read``, so ``logReadPrev`` dominates.
    With the fallback enabled, the breaker opens and cache-resident
    reads are served node-locally; with it disabled every read rides
    out the brown-out through retries.
    """
    table = ExperimentTable(
        f"Log brown-out (rate {brownout_rate}, scope=log): "
        "degraded-read fallback ablation",
        ["fallback", "log-read median (ms)", "log-read p99 (ms)",
         "degraded reads", "breaker trips", "request p99 (ms)"],
    )
    for fallback in (True, False):
        base = config if config is not None else SystemConfig()
        if seed is not None:
            base = base.with_seed(seed)
        # A tight breaker (both arms) so a short run reaches the open
        # state: 3 consecutive log failures at rate 0.35 are common.
        cfg = (
            base.with_fault_rate(brownout_rate, scope="log")
            .with_resilience(degraded_log_reads=fallback,
                             breaker_failure_threshold=3,
                             breaker_cooldown_ops=30)
            .validate()
        )
        runtime = LocalRuntime(cfg, protocol="halfmoon-read")
        keys = _increment_workload(runtime, num_keys)
        rng = runtime.backend.rng.stream("brownout-requests")
        latency = LatencyRecorder(f"brownout fallback={fallback}")
        for i in range(requests):
            key = keys[int(rng.integers(0, len(keys)))]
            # Read-heavy: 1 write per 10 requests keeps versions moving.
            if i % 10 == 0:
                result = runtime.invoke("bump", key)
            else:
                result = runtime.invoke("peek", key)
            latency.record(result.latency_ms)
        log_read = runtime.backend.op_latency["log_read"]
        counters = runtime.backend.counters.as_dict()
        table.add_row(
            "on" if fallback else "off",
            log_read.median(), log_read.p99(),
            counters.get("degraded_log_reads", 0),
            runtime.backend.breaker_trips(),
            latency.p99(),
        )
    table.add_note(
        "expected: the cache fallback keeps log-read p99 near the "
        "cached-read latency while the no-fallback run pays timeout + "
        "backoff on every faulted read"
    )
    return table
