"""Sequencer scaling experiment: p99 + sequencer occupancy vs offered
load at 10⁵–10⁶ skewed users (``python -m repro scale``).

The shard sweep showed that record *placement* scales horizontally; the
remaining vertical choke point is the metalog sequencer — every append
in the system visits one station for its seqnum.  This experiment puts
the three sequencing strategies head to head under the
:class:`~repro.workloads.skew.SkewedWorkload` (Zipf-hot users drawn
from a 10⁵–10⁶ population):

* ``monolith`` — one sequencer visit per append.  Saturates when
  offered appends/s reaches ``1 / sequencer_service_ms``; past the
  knee, occupancy pins at 1.0 and p99 grows without bound.
* ``batched`` — group commit: up to ``sequencer_batch`` appends share
  one service quantum (each also pays the ``sequencer_hold_ms``
  window), multiplying the saturation rate by the achieved batch size.
* ``leased-ranges`` — epoch-leased seqnum blocks: one sequencer visit
  per ``sequencer_block`` appends; the rest draw from the local lease
  and never queue.

The per-append sequencer service time is raised well above the default
(0.2 ms vs 0.02 ms) so the monolith knee lands *inside* the swept rate
range — same methodology as the shard sweep's raised shard service
time.  Expected shape: all three agree at low load; the monolith's p99
explodes once its occupancy reaches ~1.0 while batched and leased
sustain ≥2× the append rate at equal-or-better p99.

``--diurnal BASE`` replaces the flat rate grid with points sampled off
a :class:`~repro.workloads.skew.DiurnalCurve` — one simulated day of
trough → peak → trough traffic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..config import SystemConfig
from ..observe import Tracer
from ..workloads.skew import DiurnalCurve, SkewedWorkload
from .parallel import SweepCell, pop_crash_notes, run_cells
from .platform import RunResult, SimPlatform
from .report import ExperimentTable

DEFAULT_SEQUENCERS = ("monolith", "batched", "leased-ranges")
DEFAULT_RATES = (400.0, 800.0, 1200.0, 1600.0)
DEFAULT_USERS = 100_000

#: Raised sequencer service time (ms/append) so the monolith knee is
#: inside the default rate grid: capacity 1/0.2ms = 5 000 appends/s.
SCALE_SEQUENCER_SERVICE_MS = 0.2


def scale_sweep_config(
    sequencer: str,
    base: Optional[SystemConfig] = None,
    log_shards: int = 4,
    sequencer_service_ms: float = SCALE_SEQUENCER_SERVICE_MS,
    log_shard_service_ms: float = 0.02,
) -> SystemConfig:
    """The sweep's operating point for one sequencing strategy.

    Always the ``sharded`` backend at a fixed shard count, so the shard
    stations are never the bottleneck and the strategies differ *only*
    in how appends visit the sequencer.  Batch/hold/block knobs are
    taken from ``base`` (set them via ``with_storage_plane``).
    """
    base = base if base is not None else SystemConfig()
    config = base.with_storage_plane(
        log_shards=log_shards,
        kv_partitions=log_shards,
        backend="sharded",
        sequencer=sequencer,
    )
    return replace(
        config,
        cluster=replace(
            config.cluster,
            model_log_contention=True,
            sequencer_service_ms=sequencer_service_ms,
            log_shard_service_ms=log_shard_service_ms,
        ),
    )


def run_scale_point(
    sequencer: str,
    rate_per_s: float,
    protocol: str = "boki",
    num_users: int = DEFAULT_USERS,
    ops_per_request: int = 4,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 3_000.0,
    warmup_ms: float = 500.0,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """One (sequencing strategy, offered rate) cell of the sweep."""
    workload = SkewedWorkload(
        num_users=num_users, ops_per_request=ops_per_request
    )
    platform = SimPlatform(
        workload, protocol,
        scale_sweep_config(sequencer, config),
        tracer=tracer,
    )
    result = platform.run(rate_per_s, duration_ms, warmup_ms=warmup_ms)
    # RunResult.extras["sequencer"] is attached by the platform (the
    # contention model is on); add the sweep-level derived rates here.
    stats = result.extras["sequencer"]
    result.extras["appends_per_s"] = stats["visits"] * 1000.0 / duration_ms
    result.extras["distinct_users"] = workload.distinct_users_touched
    return result


def _mean_batch(stats: dict) -> float:
    """Appends per sequencer visit — the amortization each strategy won."""
    if stats["strategy"] == "batched":
        return stats["mean_batch_size"]
    if stats["strategy"] == "leased-ranges":
        refills = stats["refills"]
        return stats["visits"] / refills if refills else 0.0
    return 1.0


def run_scale_sweep(
    sequencers: Sequence[str] = DEFAULT_SEQUENCERS,
    rates: Sequence[float] = DEFAULT_RATES,
    protocol: str = "boki",
    num_users: int = DEFAULT_USERS,
    ops_per_request: int = 4,
    config: Optional[SystemConfig] = None,
    duration_ms: float = 3_000.0,
    warmup_ms: float = 500.0,
    diurnal_base: Optional[float] = None,
    diurnal_points: int = 6,
    tracer: Optional[Tracer] = None,
    jobs: Optional[int] = None,
) -> ExperimentTable:
    """p99 + sequencer occupancy vs offered load per sequencing strategy.

    ``diurnal_base`` replaces ``rates`` with ``diurnal_points`` samples
    of a day-shaped load curve around that base rate.  ``jobs`` fans the
    cells over a process pool; output is bit-identical at every count.
    """
    if diurnal_base is not None:
        curve = DiurnalCurve(diurnal_base)
        rates = curve.sample_rates(diurnal_points)
    table = ExperimentTable(
        f"Sequencer scaling: {protocol} under Zipf skew, "
        f"{num_users:,} users ({ops_per_request} write+read pairs/req)",
        ["sequencer", "rate (req/s)", "completed", "median (ms)",
         "p99 (ms)", "appends/s", "seq occupancy", "appends/visit"],
    )
    grid = [(seq, rate) for seq in sequencers for rate in rates]
    cells = [
        SweepCell(
            key=("scale", seq, "rate", rate),
            fn=run_scale_point,
            kwargs=dict(
                sequencer=seq, rate_per_s=rate, protocol=protocol,
                num_users=num_users, ops_per_request=ops_per_request,
                config=config, duration_ms=duration_ms,
                warmup_ms=warmup_ms,
            ),
        )
        for seq, rate in grid
    ]
    results = run_cells(cells, jobs=jobs, tracer=tracer)
    for (seq, rate), result in zip(grid, results):
        stats = result.extras["sequencer"]
        table.add_row(
            seq, rate, result.completed, result.median_ms,
            result.p99_ms, result.extras["appends_per_s"],
            stats["occupancy"], _mean_batch(stats),
        )
    table.add_note(
        "expected shape: the monolith sequencer pins at occupancy ~1.0 "
        "and p99 explodes past its knee (~1/service_ms appends/s); "
        "batched and leased-ranges sustain >= 2x the monolith's append "
        "rate at equal-or-better p99 by amortizing visits "
        "(appends/visit > 1)"
    )
    if diurnal_base is not None:
        table.add_note(
            f"rates sampled from a diurnal curve around "
            f"{diurnal_base:.0f} req/s ({diurnal_points} points over "
            f"one simulated day)"
        )
    for note in pop_crash_notes():
        table.add_note(note)
    return table
