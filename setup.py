"""Build glue for the optional compiled DES kernel.

The C extension ``repro.simulation._corec`` is a performance twin of the
pure-Python kernel — never required for correctness.  Any build failure
(no compiler, no headers, exotic platform) downgrades to a pure-Python
install; the kernel selector falls back transparently at import time.

Build in place for development:

    python setup.py build_ext --inplace
"""

import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """build_ext that soft-fails: a broken toolchain is not an error."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 — any failure is non-fatal
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            "WARNING: building repro.simulation._corec failed "
            f"({exc!r}); falling back to the pure-Python kernel.",
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro.simulation._corec",
            sources=["src/repro/simulation/_corec.c"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
