#!/usr/bin/env python3
"""Per-object protocol deployment (Section 4.6).

A session-store scenario: a hot configuration object is read by every
request, while a metrics object is written by every request.  Pinning
the config to Halfmoon-read and the metrics to Halfmoon-write makes
*both* sides log-free — strictly less logging than either uniform
deployment — while exactly-once semantics still holds under crashes.

Run:  python examples/per_object_protocols.py
"""

from repro import BernoulliCrashes, LocalRuntime, SystemConfig
from repro.runtime import Cost


def handle_request(ctx, inp):
    config = ctx.read("site-config")        # read-hot object
    counter = ctx.read("request-count")     # occasionally read
    ctx.write("request-count", counter + 1)  # write-hot object
    return {"theme": config["theme"], "count": counter + 1}


def run(assignments, label):
    runtime = LocalRuntime(SystemConfig(seed=77), protocol="halfmoon-read")
    runtime.populate("site-config", {"theme": "dark"})
    runtime.populate("request-count", 0)
    for key, protocol in assignments.items():
        runtime.set_object_protocol(key, protocol)
    runtime.crash_policy = BernoulliCrashes(
        0.2, runtime.backend.rng.stream("crashes"), horizon=12
    )
    runtime.register("handle", handle_request)

    for _ in range(50):
        runtime.invoke("handle")
    counters = runtime.backend.counters.as_dict()
    log_ops = sum(counters.get(k, 0) for k in Cost.LOGGING_KINDS)

    probe = runtime.open_session().init()
    count = probe.read("request-count")
    probe.finish()
    assert count == 50, "exactly-once violated!"
    print(f"{label:40s} log appends={log_ops:4d} "
          f"(crashes survived: {runtime.crash_policy.crashes_fired})")
    return log_ops


def main() -> None:
    print("50 requests, each: 2 reads of hot config + 1 counter write")
    print("20% of attempts crash; the counter must end at exactly 50.\n")
    uniform_read = run({}, "uniform halfmoon-read")
    uniform_write = run(
        {"site-config": "halfmoon-write",
         "request-count": "halfmoon-write"},
        "uniform halfmoon-write",
    )
    split = run(
        {"site-config": "halfmoon-read",
         "request-count": "halfmoon-write"},
        "per-object (read->HM-R, write->HM-W)",
    )
    print(f"\nper-object assignment logs "
          f"{uniform_read - split} fewer appends than uniform HM-read "
          f"and {uniform_write - split} fewer than uniform HM-write.")
    assert split < uniform_read and split < uniform_write


if __name__ == "__main__":
    main()
