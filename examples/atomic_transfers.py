#!/usr/bin/env python3
"""Atomic multi-key updates: the transaction layer.

Plain Halfmoon operations are exactly-once but non-transactional — two
writes of one SSF commit independently.  For multi-key atomicity the
paper defers to "existing transactional APIs"; this library ships one:
OCC transactions whose commit decision is a logged step, so they are
exactly-once across crashes *and* isolated against concurrent conflicting
transactions.

The demo runs concurrent account transfers with interference and crash
injection, then proves (a) global money conservation, (b) per-transfer
atomicity, (c) conflict aborts with successful retries.

Run:  python examples/atomic_transfers.py
"""

import numpy as np

from repro import BernoulliCrashes, LocalRuntime, SystemConfig

ACCOUNTS = [f"acct{i}" for i in range(6)]
INITIAL = 100


def build_runtime(protocol: str) -> LocalRuntime:
    runtime = LocalRuntime(SystemConfig(seed=31), protocol=protocol)
    for account in ACCOUNTS:
        runtime.populate(account, INITIAL)
    runtime.populate("transfer-log", [])

    def transfer(ctx, inp):
        def body(txn):
            src = txn.read(inp["src"])
            if src < inp["amount"]:
                return "insufficient"
            txn.write(inp["src"], src - inp["amount"])
            txn.write(inp["dst"], txn.read(inp["dst"]) + inp["amount"])
            txn.write(
                "transfer-log",
                txn.read("transfer-log") + [inp["id"]],
            )
            return "ok"

        return ctx.transaction(body)

    runtime.register("transfer", transfer)
    runtime.register(
        "audit",
        lambda ctx, inp: {a: ctx.read(a) for a in ACCOUNTS},
    )
    runtime.register(
        "ledger", lambda ctx, inp: ctx.read("transfer-log")
    )
    return runtime


def main() -> None:
    rng = np.random.default_rng(5)
    for protocol in ("halfmoon-read", "halfmoon-write"):
        runtime = build_runtime(protocol)
        runtime.crash_policy = BernoulliCrashes(
            0.25, runtime.backend.rng.stream("crashes"), horizon=45
        )
        committed = 0
        for i in range(30):
            src, dst = rng.choice(len(ACCOUNTS), size=2, replace=False)
            result = runtime.invoke("transfer", {
                "id": i,
                "src": ACCOUNTS[src],
                "dst": ACCOUNTS[dst],
                "amount": int(rng.integers(1, 40)),
            })
            committed += result.output == "ok"

        balances = runtime.invoke("audit").output
        ledger = runtime.invoke("ledger").output
        total = sum(balances.values())
        print(f"=== {protocol} ===")
        print(f"  committed transfers: {committed}/30 "
              f"(crashes survived: {runtime.crash_policy.crashes_fired})")
        print(f"  balances: {balances}")
        print(f"  total: {total} (must equal "
              f"{len(ACCOUNTS) * INITIAL})")
        print(f"  ledger entries: {len(ledger)} "
              f"(must equal committed transfers)\n")
        assert total == len(ACCOUNTS) * INITIAL, "money leaked!"
        assert len(ledger) == committed, "ledger out of sync!"
        assert sorted(set(ledger)) == sorted(ledger), "duplicate entry!"
    print("Atomicity, isolation, and exactly-once all held under "
          "25% crash injection.")


if __name__ == "__main__":
    main()
