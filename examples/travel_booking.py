#!/usr/bin/env python3
"""Travel-reservation workflow under failures (Section 6.2's first app).

Runs the ten-SSF travel workflow with aggressive crash injection and
shows that reservations are exactly-once: rooms taken == reservations
made, even though roughly a quarter of all execution attempts die
mid-flight.  Then uses the protocol advisor to confirm that this
read-intensive workload belongs on Halfmoon-read, and compares measured
request latency across protocols.

Run:  python examples/travel_booking.py
"""

import numpy as np

from repro import BernoulliCrashes, LocalRuntime, SystemConfig
from repro.analysis import ProtocolAdvisor, WorkloadObserver
from repro.simulation.metrics import LatencyRecorder
from repro.workloads import TravelReservationWorkload
from repro.workloads.travel import availability_key

REQUESTS = 40
CRASH_RATE = 0.25


def run(protocol: str, crash_rate: float = CRASH_RATE):
    runtime = LocalRuntime(SystemConfig(seed=2024), protocol=protocol)
    runtime.crash_policy = BernoulliCrashes(
        crash_rate, runtime.backend.rng.stream("crashes"), horizon=30
    )
    workload = TravelReservationWorkload(
        num_hotels=12, num_users=20, num_regions=3, reserve_fraction=0.8
    )
    workload.register(runtime)
    workload.populate(runtime)

    rng = np.random.default_rng(7)
    latency = LatencyRecorder(protocol)
    reserved = 0
    for _ in range(REQUESTS):
        request = workload.next_request(rng)
        result = runtime.invoke(request.func_name, request.input)
        latency.record(result.latency_ms)
        reserved += result.output["status"] == "reserved"

    probe = runtime.open_session().init()
    rooms_taken = sum(
        50 - probe.read(availability_key(i)) for i in range(12)
    )
    probe.finish()
    return {
        "latency": latency,
        "reserved": reserved,
        "rooms_taken": rooms_taken,
        "crashes": runtime.crash_policy.crashes_fired,
        "log_appends": runtime.backend.log.append_count,
    }


def main() -> None:
    print(f"Travel reservation: {REQUESTS} requests, "
          f"{CRASH_RATE:.0%} of attempts crash mid-flight\n")
    results = {}
    for protocol in ("boki", "halfmoon-read", "halfmoon-write"):
        outcome = run(protocol)
        results[protocol] = outcome
        print(f"{protocol:15s} median={outcome['latency'].median():6.1f}ms "
              f"p99={outcome['latency'].p99():6.1f}ms "
              f"crashes={outcome['crashes']:2d} "
              f"reservations={outcome['reserved']} "
              f"rooms_taken={outcome['rooms_taken']} "
              f"log_appends={outcome['log_appends']}")
        assert outcome["reserved"] == outcome["rooms_taken"], (
            "exactly-once violated!"
        )

    print("\nExactly-once held for every protocol "
          "(reservations == rooms taken).")

    # Ask the advisor which protocol fits this workload.
    workload = TravelReservationWorkload()
    reads, writes = workload.read_write_profile()
    observer = WorkloadObserver()
    observer.note_invocation()
    for _ in range(round(reads * 10)):
        observer.note_read("hotel")
    for _ in range(round(writes * 10)):
        observer.note_write("hotel")
    print(f"\nworkload read ratio: {workload.read_ratio():.2f} "
          f"(advisor boundary: 2/3)")
    from repro.analysis import WorkloadProfile

    recommendation = ProtocolAdvisor().recommend(
        WorkloadProfile(
            p_read=min(1.0, reads / (reads + writes)),
            p_write=min(1.0, writes / (reads + writes)),
            arrival_rate_per_s=300.0,
        )
    )
    print(f"advisor: {recommendation.explain()}")

    best = min(
        ("halfmoon-read", "halfmoon-write"),
        key=lambda p: results[p]["latency"].median(),
    )
    print(f"measured best protocol: {best}")
    assert best == recommendation.protocol == "halfmoon-read"
    gain = 1 - (results[best]["latency"].median()
                / results["boki"]["latency"].median())
    print(f"median latency vs Boki: {gain:.0%} lower")


if __name__ == "__main__":
    main()
