#!/usr/bin/env python3
"""Choosing the right protocol (Section 4.6) — model vs measurement.

Walks the read-ratio axis, printing the analytical model's storage and
runtime predictions (Equations 1-4) next to measured numbers from the
simulated platform, and shows the advisor's recommendation flip at the
predicted boundaries: read ratio 0.5 for storage, 2/3 for runtime.

Run:  python examples/protocol_advisor.py
"""

from repro import SystemConfig
from repro.analysis import (
    ProtocolAdvisor,
    WorkloadProfile,
    runtime_boundary_read_ratio,
    storage_halfmoon_read,
    storage_halfmoon_write,
)
from repro.config import ClusterConfig
from repro.harness import run_overhead_point

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
CONFIG = SystemConfig(
    seed=5, cluster=ClusterConfig(function_nodes=4, workers_per_node=8)
)


def main() -> None:
    advisor = ProtocolAdvisor()
    print("Analytical model (Section 4.6): per-object storage "
          "predictions and recommendation")
    print(f"{'ratio':>6} {'S_hm-read':>12} {'S_hm-write':>12} "
          f"{'recommendation':>16}")
    for ratio in RATIOS:
        profile = WorkloadProfile(
            p_read=ratio, p_write=1.0 - ratio,
            arrival_rate_per_s=100.0, lifetime_s=0.04, gc_delay_s=5.0,
        )
        s_read = storage_halfmoon_read(profile) / 1024.0
        s_write = storage_halfmoon_write(profile) / 1024.0
        rec = advisor.recommend(profile)
        print(f"{ratio:6.1f} {s_read:10.1f}KB {s_write:10.1f}KB "
              f"{rec.protocol:>16}")
    print(f"\nruntime boundary (C_w = 2 C_r): read ratio = "
          f"{runtime_boundary_read_ratio(2.0):.3f}")

    print("\nMeasured on the simulated platform (150 req/s, 10-op SSF):")
    print(f"{'ratio':>6} {'hm-read':>10} {'hm-write':>10} "
          f"{'measured winner':>16}")
    for ratio in RATIOS:
        read_result = run_overhead_point(
            "halfmoon-read", ratio, CONFIG, rate_per_s=150.0,
            duration_ms=4_000.0, num_keys=500,
        )
        write_result = run_overhead_point(
            "halfmoon-write", ratio, CONFIG, rate_per_s=150.0,
            duration_ms=4_000.0, num_keys=500,
        )
        winner = (
            "halfmoon-read"
            if read_result.median_ms < write_result.median_ms
            else "halfmoon-write"
        )
        print(f"{ratio:6.1f} {read_result.median_ms:8.1f}ms "
              f"{write_result.median_ms:8.1f}ms {winner:>16}")
    print("\nThe measured crossover sits near the analytical 2/3 "
          "boundary, slightly above — as the paper reports.")


if __name__ == "__main__":
    main()
