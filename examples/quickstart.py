#!/usr/bin/env python3
"""Quickstart: exactly-once stateful serverless functions in five minutes.

Builds a tiny bank-transfer application on the Halfmoon runtime and
demonstrates the core guarantee: no matter where an SSF crashes, retrying
it never duplicates or loses an update — under either of Halfmoon's
log-optimal protocols, at a fraction of the symmetric baseline's logging.

Run:  python examples/quickstart.py
"""

from repro import CrashOnceAtEvery, LocalRuntime, SystemConfig


def transfer(ctx, inp):
    """Move `amount` between two accounts (a classic non-idempotent SSF)."""
    source = ctx.read(inp["from"])
    target = ctx.read(inp["to"])
    amount = inp["amount"]
    if source < amount:
        return {"ok": False, "reason": "insufficient funds"}
    ctx.write(inp["from"], source - amount)
    ctx.write(inp["to"], target + amount)
    return {"ok": True, "from_balance": source - amount}


def balances(ctx, inp):
    return {account: ctx.read(account) for account in ("alice", "bob")}


def run_with_protocol(protocol: str) -> None:
    print(f"\n=== {protocol} ===")
    runtime = LocalRuntime(SystemConfig(seed=42), protocol=protocol)
    runtime.populate("alice", 100)
    runtime.populate("bob", 0)
    runtime.register("transfer", transfer)
    runtime.register("balances", balances)

    # A clean transfer.
    result = runtime.invoke("transfer",
                            {"from": "alice", "to": "bob", "amount": 30})
    print(f"clean transfer: {result.output}  "
          f"(latency {result.latency_ms:.2f} ms, "
          f"{result.attempts} attempt)")

    # Now crash the function at every possible point mid-flight; the
    # runtime retries, and the state stays exactly-once correct.
    for crash_point in (2, 5, 8, 11):
        runtime.crash_policy = CrashOnceAtEvery(crash_point)
        result = runtime.invoke(
            "transfer", {"from": "alice", "to": "bob", "amount": 10}
        )
        print(f"crash@{crash_point:>2}: attempts={result.attempts} "
              f"output={result.output}")
    runtime.crash_policy = CrashOnceAtEvery(999)  # no more crashes

    final = runtime.invoke("balances").output
    print(f"final balances: {final}")
    assert final == {"alice": 30, "bob": 70}, "money must be conserved!"
    print(f"log records appended: {runtime.backend.log.append_count}, "
          f"storage: {runtime.storage_bytes()['total']} bytes")


def main() -> None:
    print("Halfmoon quickstart: exactly-once bank transfers")
    print("(four crashes injected per protocol; balances must total 100)")
    for protocol in ("halfmoon-read", "halfmoon-write", "boki"):
        run_with_protocol(protocol)
    print("\nAll protocols preserved exactly-once semantics.")
    print("Note how the Halfmoon protocols append fewer log records "
          "than the symmetric baseline.")


if __name__ == "__main__":
    main()
