#!/usr/bin/env python3
"""Retwis (Twitter clone) on Halfmoon — Section 6.2's third workload.

Drives a realistic social feed: users post tweets, follow each other, and
read timelines, with crashes injected throughout.  Shows the garbage
collector reclaiming log records and object versions while the feed stays
consistent, and reports per-function latency under the recommended
protocol (Halfmoon-read — the mix is ~85% reads) vs the baseline.

Run:  python examples/retwis_feed.py
"""

import numpy as np

from repro import BernoulliCrashes, LocalRuntime, SystemConfig
from repro.simulation.metrics import LatencyRecorder
from repro.workloads import RetwisWorkload
from repro.workloads.retwis import timeline_key

REQUESTS = 120


def run(protocol: str):
    runtime = LocalRuntime(SystemConfig(seed=1337), protocol=protocol)
    runtime.crash_policy = BernoulliCrashes(
        0.15, runtime.backend.rng.stream("crashes"), horizon=25
    )
    workload = RetwisWorkload(num_users=25)
    workload.register(runtime)
    workload.populate(runtime)
    rng = np.random.default_rng(4)

    recorders = {}
    posts = 0
    for i in range(REQUESTS):
        request = workload.next_request(rng)
        result = runtime.invoke(request.func_name, request.input)
        recorders.setdefault(
            request.func_name, LatencyRecorder(request.func_name)
        ).record(result.latency_ms)
        posts += request.func_name == "retwis.post"
        if i % 30 == 29:
            stats = runtime.run_gc()
    stats = runtime.run_gc()
    return runtime, recorders, posts, stats


def main() -> None:
    print(f"Retwis feed: {REQUESTS} requests, 15% crash rate, "
          "GC every 30 requests\n")
    for protocol in ("boki", "halfmoon-read"):
        runtime, recorders, posts, gc_stats = run(protocol)
        print(f"=== {protocol} ===")
        for name in sorted(recorders):
            r = recorders[name]
            print(f"  {name:18s} n={r.count:3d} "
                  f"median={r.median():6.2f}ms p99={r.p99():6.2f}ms")

        probe = runtime.open_session().init()
        timeline = probe.read(timeline_key())
        counter = probe.read("rpost-counter")
        probe.finish()
        assert counter == posts, "duplicate or lost posts!"
        print(f"  posts made={posts}, counter={counter} -> exactly-once")
        print(f"  timeline length={len(timeline)} (capped at 100)")
        print(f"  GC: trimmed {gc_stats.total_trimmed()} log records, "
              f"deleted {gc_stats.versions_deleted} object versions")
        usage = runtime.storage_bytes()
        print(f"  storage after GC: log={usage['log']}B "
              f"db={usage['db']}B\n")


if __name__ == "__main__":
    main()
