#!/usr/bin/env python3
"""Pauseless protocol switching for a dynamic workload (Section 4.7).

Simulates a diurnal pattern: a write-heavy ingest phase alternates with a
read-heavy serving phase every five (simulated) seconds.  The runtime
switches between Halfmoon-write and Halfmoon-read at each boundary while
requests keep flowing — no pause, no lost updates, sub-second switch
delay.

Run:  python examples/dynamic_switching.py
"""

from repro import SystemConfig
from repro.config import ClusterConfig
from repro.harness.switching_exp import run_fig14_point
from repro.workloads.generator import Phase


def main() -> None:
    phases = [
        Phase(5_000.0, read_ratio=0.2, protocol="halfmoon-write"),
        Phase(5_000.0, read_ratio=0.8, protocol="halfmoon-read"),
        Phase(5_000.0, read_ratio=0.2, protocol="halfmoon-write"),
        Phase(5_000.0, read_ratio=0.8, protocol="halfmoon-read"),
    ]
    config = SystemConfig(
        seed=9, cluster=ClusterConfig(function_nodes=8, workers_per_node=3)
    )
    print("Dynamic workload: ingest (80% writes) <-> serving (80% reads),"
          "\nswitching protocols at every 5 s phase boundary.\n")

    for rate in (300.0, 600.0):
        result = run_fig14_point(rate, config=config, phases=phases,
                                 num_keys=1_000)
        print(f"--- {rate:.0f} requests/s "
              f"({result.completed} completed) ---")
        for entry in result.switch_delays:
            begin = entry["begin_time_ms"]
            print(f"  t={begin / 1000.0:5.2f}s  "
                  f"{entry['from']:15s} -> {entry['to']:15s}  "
                  f"switch took {entry['delay_ms']:6.1f} ms")
        # Requests completed during every switching window: pauseless.
        for entry in result.switch_delays:
            window = result.latency_series.window(
                entry["begin_time_ms"], entry["end_time_ms"] + 200.0
            )
            assert window, "service gap detected during switch!"
        print("  (requests kept completing during every switch)\n")

    print("Note the asymmetry at high load: draining the write-heavy")
    print("phase (HM-write -> HM-read) takes longer, as in Figure 14.")


if __name__ == "__main__":
    main()
