"""Unit tests for orphan takeover coordination."""

from repro.recovery import Orphan, RecoveryCoordinator
from repro.runtime import InvocationTracker
from repro.simulation import Simulator


def make_orphan(instance_id, node_id=0, orphaned_at_ms=100.0):
    return Orphan(
        instance_id=instance_id, request=None, arrival_ms=0.0,
        next_attempt=2, node_id=node_id, orphaned_at_ms=orphaned_at_ms,
    )


def test_orphans_redispatched_on_node_failure():
    sim = Simulator()
    tracker = InvocationTracker()
    redispatched = []
    coord = RecoveryCoordinator(sim, tracker, redispatched.append)
    tracker.start("a", 1)
    tracker.start("b", 2)
    coord.add_orphan(make_orphan("a"))
    coord.add_orphan(make_orphan("b"))
    assert tracker.orphan_count == 2
    assert coord.pending_count == 2

    sim._now = 400.0  # advance the clock without running processes
    coord.node_failed(0, detected_at_ms=400.0)
    assert [o.instance_id for o in redispatched] == ["a", "b"]
    assert coord.recovered == 2
    assert coord.pending_count == 0
    assert tracker.is_running("a") and tracker.is_running("b")
    assert coord.takeover_latency.count == 2
    assert coord.takeover_latency.mean() == 300.0


def test_recovery_only_touches_the_failed_node():
    sim = Simulator()
    tracker = InvocationTracker()
    redispatched = []
    coord = RecoveryCoordinator(sim, tracker, redispatched.append)
    tracker.start("a", 1)
    tracker.start("b", 2)
    coord.add_orphan(make_orphan("a", node_id=0, orphaned_at_ms=0.0))
    coord.add_orphan(make_orphan("b", node_id=1, orphaned_at_ms=0.0))
    coord.node_failed(0, detected_at_ms=200.0)
    assert [o.instance_id for o in redispatched] == ["a"]
    assert coord.pending_for(1)[0].instance_id == "b"


def test_finished_orphan_not_redispatched():
    sim = Simulator()
    tracker = InvocationTracker()
    redispatched = []
    coord = RecoveryCoordinator(sim, tracker, redispatched.append)
    tracker.start("a", 1)
    coord.add_orphan(make_orphan("a"))
    # The invocation finished before takeover (e.g. its node restarted
    # and completed it): nothing is owed.
    tracker.finish("a")
    coord.node_failed(0, detected_at_ms=200.0)
    assert redispatched == []
    assert coord.recovered == 0


def test_node_restart_recovers_own_orphans():
    sim = Simulator()
    tracker = InvocationTracker()
    redispatched = []
    coord = RecoveryCoordinator(sim, tracker, redispatched.append)
    tracker.start("a", 1)
    coord.add_orphan(make_orphan("a", orphaned_at_ms=0.0))
    # Restart lands before the lease expires: self-recovery.
    coord.node_restarted(0)
    assert [o.instance_id for o in redispatched] == ["a"]
    # A later detector verdict finds nothing left to do.
    coord.node_failed(0, detected_at_ms=500.0)
    assert len(redispatched) == 1
