"""LeaseTable and RecoveryCoordinator driven by an injected wall clock.

The DES lease tests (``test_lease.py``) drive these components from the
simulator.  Here the driver is a plain float timeline — the live compute
plane's situation, where ``now`` is ``time.monotonic()`` milliseconds and
nothing about the timestamps is aligned or integral.  The declare/renew/
revive semantics must be identical on both clocks.
"""

from repro.recovery.coordinator import Orphan, RecoveryCoordinator
from repro.recovery.lease import LeaseTable
from repro.runtime.registry import InvocationTracker

# An arbitrary epoch-like origin: wall clocks do not start at zero.
T0 = 1_723_000_000_123.456


def make_table(nodes=2, lease_ms=400.0):
    return LeaseTable(range(nodes), lease_ms, start_ms=T0)


def test_silent_node_declared_after_lease_expiry():
    table = make_table()
    table.renew(0, T0 + 100.0)
    # Node 1 never heartbeats; node 0 did at +100.
    assert table.check(T0 + 400.0) == []          # 1's silence == lease
    assert table.check(T0 + 400.5) == [1]         # strictly past it
    assert table.is_declared_dead(1)
    assert not table.is_declared_dead(0)


def test_declared_at_most_once_per_life():
    table = make_table(nodes=1)
    assert table.check(T0 + 1_000.0) == [0]
    assert table.check(T0 + 2_000.0) == []
    assert table.detections == 1


def test_renewal_revives_and_fresh_crash_is_redetected():
    table = make_table(nodes=1)
    assert table.check(T0 + 500.0) == [0]
    # Restarted node heartbeats: revived.
    table.renew(0, T0 + 600.0)
    assert not table.is_declared_dead(0)
    # ...then goes silent again: a second, separate detection.
    assert table.check(T0 + 1_100.0) == [0]
    assert table.detections == 2


def test_add_node_registers_fresh_lease():
    table = make_table(nodes=1)
    table.check(T0 + 500.0)
    # The live gateway respawns a replacement under a new id.
    table.add_node(7, T0 + 500.0)
    assert table.check(T0 + 800.0) == []
    assert table.check(T0 + 901.0) == [7]
    assert table.last_renewal(7) == T0 + 500.0


def test_failure_listener_gets_wall_timestamps():
    table = make_table(nodes=1)
    seen = []
    table.on_failure(lambda node, now: seen.append((node, now)))
    table.check(T0 + 450.0)
    assert seen == [(0, T0 + 450.0)]


def test_fractional_wall_times_do_not_confuse_the_table():
    # Wall-clock renewals land at irregular fractional instants; the
    # lease math is pure subtraction, never bucketed.
    table = LeaseTable([0], 400.0, start_ms=T0)
    now = T0
    for _ in range(5):
        now += 399.999
        table.renew(0, now)
        assert table.check(now) == []
    assert table.check(now + 400.001) == [0]


def test_coordinator_with_callable_wall_clock():
    clock = [T0]
    tracker = InvocationTracker()
    redispatched = []
    coordinator = RecoveryCoordinator(
        lambda: clock[0], tracker, redispatched.append
    )
    tracker.start("inv-1", 0)
    coordinator.add_orphan(Orphan(
        instance_id="inv-1", request=None, arrival_ms=T0,
        next_attempt=2, node_id=3, orphaned_at_ms=T0 + 100.0,
    ))
    assert tracker.is_orphaned("inv-1")

    clock[0] = T0 + 550.0
    coordinator.node_failed(3, detected_at_ms=T0 + 550.0)
    assert [o.instance_id for o in redispatched] == ["inv-1"]
    assert coordinator.recovered == 1
    # Takeover latency is measured on the injected clock.
    assert coordinator.takeover_latency.samples == [450.0]
    # Idempotent: a second verdict for the same node finds no orphans.
    coordinator.node_failed(3, detected_at_ms=T0 + 900.0)
    assert coordinator.recovered == 1


def test_coordinator_skips_orphans_that_already_finished():
    clock = [T0]
    tracker = InvocationTracker()
    redispatched = []
    coordinator = RecoveryCoordinator(
        lambda: clock[0], tracker, redispatched.append
    )
    tracker.start("inv-2", 0)
    coordinator.add_orphan(Orphan(
        instance_id="inv-2", request=None, arrival_ms=T0,
        next_attempt=1, node_id=0, orphaned_at_ms=T0,
    ))
    # The invocation completes elsewhere before the detector verdict
    # (late lease expiry after a graceful finish): nothing is owed.
    tracker.finish("inv-2")
    coordinator.node_failed(0, detected_at_ms=T0 + 500.0)
    assert redispatched == []
    assert coordinator.recovered == 0
