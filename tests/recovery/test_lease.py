"""Unit tests for lease-based failure detection."""

from repro.config import RecoveryConfig
from repro.recovery import LeaseManager
from repro.simulation import Simulator


def make_lease(sim, alive, lease_ms=100.0, heartbeat_ms=20.0,
               poll_ms=5.0, num_nodes=2):
    config = RecoveryConfig(
        enabled=True, lease_ms=lease_ms,
        heartbeat_interval_ms=heartbeat_ms, detector_poll_ms=poll_ms,
    )
    config.validate()
    return LeaseManager(sim, num_nodes, config,
                        lambda node_id: alive[node_id])


def test_healthy_nodes_never_declared_dead():
    sim = Simulator()
    alive = {0: True, 1: True}
    lease = make_lease(sim, alive)
    deaths = []
    lease.on_failure(lambda node, at: deaths.append((node, at)))
    lease.start()
    sim.run(until=1_000.0)
    assert deaths == []
    assert lease.detections == 0


def test_dead_node_detected_within_lease_window():
    sim = Simulator()
    alive = {0: True, 1: True}
    lease = make_lease(sim, alive, lease_ms=100.0, heartbeat_ms=20.0,
                       poll_ms=5.0)
    deaths = []
    lease.on_failure(lambda node, at: deaths.append((node, at)))
    lease.start()

    def crash():
        yield sim.timeout(250.0)
        alive[0] = False

    sim.process(crash())
    sim.run(until=1_000.0)
    assert [node for node, _ in deaths] == [0]
    detected_at = deaths[0][1]
    # Last renewal was at most one heartbeat before the crash; the
    # detector fires within one poll of lease expiry.
    assert 250.0 + 100.0 - 20.0 <= detected_at <= 250.0 + 100.0 + 5.0
    assert lease.is_declared_dead(0)
    assert not lease.is_declared_dead(1)


def test_detection_fires_once_per_death():
    sim = Simulator()
    alive = {0: False, 1: True}
    lease = make_lease(sim, alive)
    deaths = []
    lease.on_failure(lambda node, at: deaths.append(node))
    lease.start()
    sim.run(until=2_000.0)
    assert deaths == [0]


def test_restarted_node_revives_lease_and_can_die_again():
    sim = Simulator()
    alive = {0: True, 1: True}
    lease = make_lease(sim, alive, lease_ms=100.0, heartbeat_ms=20.0,
                       poll_ms=5.0)
    deaths = []
    lease.on_failure(lambda node, at: deaths.append((node, at)))
    lease.start()

    def chaos():
        yield sim.timeout(200.0)
        alive[0] = False          # first death
        yield sim.timeout(400.0)
        alive[0] = True           # restart: next heartbeat renews
        yield sim.timeout(400.0)
        alive[0] = False          # second death

    sim.process(chaos())
    sim.run(until=2_000.0)
    assert [node for node, _ in deaths] == [0, 0]
    assert lease.detections == 2


def test_start_is_idempotent():
    sim = Simulator()
    alive = {0: False}
    lease = make_lease(sim, alive, num_nodes=1)
    lease.start()
    lease.start()
    deaths = []
    lease.on_failure(lambda node, at: deaths.append(node))
    sim.run(until=500.0)
    # One detector, one declaration — not doubled.
    assert deaths == [0]
