"""Same-instant ordering regressions for the DES kernel.

The kernel's determinism contract: events scheduled for the same
simulated instant fire in *schedule order* (the monotone ``eid``
counter breaks ties, never object identity or hash order).  Every
optimisation of the hot path — tuple heap entries, deferred-callback
tuples replacing wrapper events, the inlined ``Timeout`` constructor —
must conserve one eid per scheduled occurrence, or same-instant
ordering (and with it every seeded experiment) silently shifts.
These tests pin that contract directly.
"""

from repro.simulation import Simulator
from repro.simulation.kernel import Event, Interrupt


def test_same_instant_timeouts_fire_in_schedule_order():
    sim = Simulator()
    fired = []

    def waiter(tag):
        yield sim.timeout(5.0)
        fired.append(tag)

    for tag in range(8):
        sim.process(waiter(tag))
    sim.run()
    assert fired == list(range(8))


def test_same_instant_mixed_delays_fire_in_schedule_order():
    # Two paths reach t=6: a direct 6ms timeout scheduled first, and a
    # 3+3ms chain scheduled second.  The chain's second timeout is
    # scheduled *later* (at t=3), so it must fire second at t=6.
    sim = Simulator()
    fired = []

    def direct():
        yield sim.timeout(6.0)
        fired.append("direct")

    def chained():
        yield sim.timeout(3.0)
        yield sim.timeout(3.0)
        fired.append("chained")

    sim.process(direct())
    sim.process(chained())
    sim.run()
    assert fired == ["direct", "chained"]


def test_succeed_order_decides_same_instant_resume_order():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    fired = []

    def waiter(event, tag):
        yield event
        fired.append(tag)

    def trigger():
        yield sim.timeout(1.0)
        # b succeeds before a: resume order must follow succeed order,
        # not process-creation order.
        b.succeed("b")
        a.succeed("a")

    sim.process(waiter(a, "a"))
    sim.process(waiter(b, "b"))
    sim.process(trigger())
    sim.run()
    assert fired == ["b", "a"]


def test_already_fired_event_resumes_after_earlier_schedules():
    # Yielding an already-triggered event goes through the deferred
    # tuple path; it must still respect eid order against a timeout(0)
    # scheduled first at the same instant.
    sim = Simulator()
    fired = []
    done = Event(sim)
    done.succeed("ready")

    def zero_timeout():
        yield sim.timeout(0.0)
        fired.append("timeout0")

    def eager():
        value = yield done
        fired.append(value)

    sim.process(zero_timeout())
    sim.process(eager())
    sim.run()
    assert fired == ["timeout0", "ready"]


def test_interleaved_schedule_order_is_stable_across_runs():
    def run_once():
        sim = Simulator()
        fired = []

        def worker(tag, delay):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        # Deliberate eid collisions: several workers share each delay.
        for tag in range(6):
            sim.process(worker(tag, 2.0 + (tag % 2)))
        sim.run()
        return fired

    first = run_once()
    assert run_once() == first
    # Within one instant, workers fire in creation order.
    by_time = {}
    for now, tag in first:
        by_time.setdefault(now, []).append(tag)
    for tags in by_time.values():
        assert tags == sorted(tags)


def test_interrupt_invalidates_pending_same_instant_resume():
    # A process that yields an already-fired event has a deferred
    # resume tuple sitting on the heap.  An interrupt issued at the
    # same instant must invalidate that pending resume (the wait-token
    # regression): the process sees only the Interrupt, never the
    # stale resume.
    sim = Simulator()
    outcome = []
    done = Event(sim)
    done.succeed("early")

    def victim():
        try:
            value = yield done  # already fired: deferred resume queued
            outcome.append(("resumed", value))
        except Interrupt as exc:
            outcome.append(("interrupted", exc.cause))

    proc = sim.process(victim())

    def attacker():
        # Starts after victim queued its deferred resume, still at t=0;
        # the interrupt's deferred throw lands *behind* the stale
        # resume in eid order, so only token invalidation saves us.
        proc.interrupt("bang")
        yield sim.timeout(0.0)

    sim.process(attacker())
    sim.run()
    assert outcome == [("interrupted", "bang")]


def test_events_processed_counts_every_pop():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    # Deferred start, two timeouts, and the process-completion event.
    assert sim.events_processed == 4
